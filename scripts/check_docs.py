#!/usr/bin/env python
"""Compatibility shim: the docs checks moved into ``repro.lint`` rule R201.

R201 keeps the original two invariants (relative markdown links resolve,
every registered scenario is documented in docs/scenarios.md) and adds
the registry-completeness checks (topology families declare moves or an
exemption, fidelity tolerance tables cover the registries).  Run the
full checker with ``python -m repro.lint``; this shim runs just R201 so
existing ``scripts/check_docs.py`` invocations keep working.

Needs ``PYTHONPATH=src`` (or an installed package), same as before.
"""

from __future__ import annotations

import sys
from pathlib import Path


def main() -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.lint.cli import main as lint_main

    return lint_main(["--rules", "R201", *sys.argv[1:]])


if __name__ == "__main__":
    sys.exit(main())
