#!/usr/bin/env python
"""Docs integrity check, run by the CI docs job.

Two invariants:

1. every relative markdown link in README.md and docs/*.md points at a
   file that exists (anchors are stripped; external URLs are skipped), and
2. every scenario registered in ``repro.experiments.scenarios`` appears --
   as `` `name` `` -- in docs/scenarios.md, so the catalog page cannot
   silently drift from the registry.

Exits non-zero with one line per violation.  Needs ``PYTHONPATH=src`` (or
an installed package) for the registry import.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
#: [text](target) -- deliberately simple; code spans do not contain links.
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def check_links(errors: list) -> None:
    pages = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    for page in pages:
        for target in LINK.findall(page.read_text()):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            path = target.split("#", 1)[0]
            if not path:  # same-page anchor
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{page.relative_to(REPO)}: broken link {target!r}"
                )


def check_scenarios(errors: list) -> None:
    from repro.experiments.scenarios import scenario_names

    catalog = (REPO / "docs" / "scenarios.md").read_text()
    for name in scenario_names():
        if f"`{name}`" not in catalog:
            errors.append(f"docs/scenarios.md: scenario {name!r} undocumented")


def main() -> int:
    errors: list = []
    check_links(errors)
    check_scenarios(errors)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        print("docs OK: links resolve, every registered scenario documented")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
