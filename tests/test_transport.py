"""Tests for the packetising flow transport and the packet backend."""

import pytest

from repro.analysis.validation import validate_against_analytical, validation_summary
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.packetsim import PacketBackend
from repro.fabric.switch import SwitchModel
from repro.fabric.topology import TopologyBuilder
from repro.sim.flow import Flow, FlowState
from repro.sim.transport import TransportConfig
from repro.sim.units import bits_from_bytes

MTU_BITS = bits_from_bytes(1500)


def line_fabric(nodes=4, lanes=4, buffer_bytes=None):
    config = FabricConfig()
    if buffer_bytes is not None:
        config = FabricConfig(
            switch_model=SwitchModel(buffer_bits=bits_from_bytes(buffer_bytes))
        )
    return Fabric(TopologyBuilder(lanes_per_link=lanes).line(nodes), config)


# --------------------------------------------------------------------------- #
# Configuration and segmentation
# --------------------------------------------------------------------------- #
def test_transport_config_validation():
    with pytest.raises(ValueError):
        TransportConfig(mtu_bytes=0)
    with pytest.raises(ValueError):
        TransportConfig(window_packets=0)
    with pytest.raises(ValueError):
        TransportConfig(retransmit_delay=0)
    with pytest.raises(ValueError):
        TransportConfig(max_attempts=0)


def test_flow_is_segmented_into_mtu_packets_with_exact_remainder():
    fabric = line_fabric()
    flow = Flow("n0", "n3", size_bits=3.5 * MTU_BITS)
    backend = PacketBackend(fabric, [flow], retain_packets=True)
    backend.run()
    assert flow.completed
    state = backend.transport.state_of(flow.flow_id)
    assert state.total_segments == 4
    assert backend.network.packets_injected == 4
    sizes = sorted(p.size_bits for p in backend.network.delivered)
    assert sizes == [0.5 * MTU_BITS, MTU_BITS, MTU_BITS, MTU_BITS]
    assert backend.network.bits_delivered == pytest.approx(flow.size_bits)


def test_tiny_flow_is_one_packet():
    fabric = line_fabric()
    flow = Flow("n0", "n1", size_bits=100.0)
    backend = PacketBackend(fabric, [flow])
    backend.run()
    assert flow.completed
    assert backend.network.packets_injected == 1


def test_window_limits_packets_in_flight():
    fabric = line_fabric(nodes=2)
    flow = Flow("n0", "n1", size_bits=6 * MTU_BITS)
    backend = PacketBackend(
        fabric, [flow], transport=TransportConfig(window_packets=1), retain_packets=True
    )
    backend.run()
    assert flow.completed
    # With a window of one, segment k is only injected once segment k-1 was
    # delivered, so creation times interleave with delivery times strictly.
    delivered = sorted(backend.network.delivered, key=lambda p: p.packet_id)
    for previous, packet in zip(delivered, delivered[1:]):
        assert packet.created_at == pytest.approx(previous.delivered_at)


# --------------------------------------------------------------------------- #
# Idle-fabric closed-form parity (the E6 invariant, packetised)
# --------------------------------------------------------------------------- #
def test_single_segment_flow_matches_closed_form_latency():
    """A packetised flow's first packet on an idle fabric reproduces
    Fabric.path_latency exactly -- the buffer-occupancy rewrite must not
    move the zero-queueing path by even a rounding step."""
    fabric = line_fabric()
    flow = Flow("n0", "n3", size_bits=MTU_BITS)
    backend = PacketBackend(fabric, [flow], retain_packets=True, record_hops=True)
    backend.run()
    packet = backend.network.delivered[0]
    expected = fabric.path_latency(["n0", "n1", "n2", "n3"], MTU_BITS)["total"]
    assert packet.latency == pytest.approx(expected, rel=1e-12)
    assert flow.fct == pytest.approx(expected, rel=1e-12)
    breakdown = packet.delay_breakdown()
    assert breakdown["queueing"] == 0.0
    assert sum(breakdown.values()) == pytest.approx(packet.latency, rel=1e-12)


def test_first_packet_of_a_long_flow_matches_closed_form_latency():
    fabric = line_fabric()
    flow = Flow("n0", "n3", size_bits=40 * MTU_BITS)
    backend = PacketBackend(fabric, [flow], retain_packets=True)
    backend.run()
    first = min(backend.network.delivered, key=lambda p: p.packet_id)
    expected = fabric.path_latency(["n0", "n1", "n2", "n3"], MTU_BITS)["total"]
    assert first.latency == pytest.approx(expected, rel=1e-12)


def test_packet_simulator_still_matches_analytical_model():
    """The standing E6 validation, promoted into tier-1: simulated single
    packets agree with the closed form across chain lengths and sizes."""
    summary = validation_summary(validate_against_analytical())
    assert summary["max_relative_error"] < 1e-9


# --------------------------------------------------------------------------- #
# Retransmission
# --------------------------------------------------------------------------- #
def test_drops_are_retransmitted_until_the_flow_completes():
    fabric = line_fabric(nodes=2, lanes=1, buffer_bytes=4500)
    flows = [Flow("n0", "n1", size_bits=20 * MTU_BITS) for _ in range(4)]
    backend = PacketBackend(fabric, flows)
    backend.run()
    assert all(flow.completed for flow in flows)
    assert backend.network.dropped_count > 0
    assert backend.transport.retransmissions > 0
    assert backend.transport.retransmitted_bits > 0
    assert backend.network.bits_delivered == pytest.approx(
        sum(flow.size_bits for flow in flows)
    )
    metrics = backend.packet_metrics()
    assert metrics["drop_fraction"] > 0.0
    assert metrics["retransmissions"] == backend.transport.retransmissions


def test_abandoned_flow_cancels_pending_retransmits():
    # A retry already sitting on the calendar when a sibling segment
    # exhausts max_attempts must fire as a no-op: no injection, no
    # retransmission counters -- the transport has given the flow up.
    fabric = line_fabric(nodes=2)
    flow = Flow("n0", "n1", size_bits=2 * MTU_BITS)
    backend = PacketBackend(fabric, [flow], transport=TransportConfig(window_packets=2))
    transport = backend.transport
    state = transport.state_of(flow.flow_id)
    state.abandoned = True
    state.pending_retransmits = 1
    injected_before = backend.network.packets_injected
    transport._retransmit(state, 0)
    assert state.pending_retransmits == 0
    assert transport.retransmissions == 0
    assert transport.retransmitted_bits == 0.0
    assert backend.network.packets_injected == injected_before
    assert state.finished


def test_dead_link_abandons_the_flow_after_max_attempts():
    fabric = line_fabric(nodes=2)
    fabric.topology.link_between("n0", "n1").disable()
    flow = Flow("n0", "n1", size_bits=MTU_BITS)
    backend = PacketBackend(
        fabric,
        [flow],
        transport=TransportConfig(max_attempts=3, retransmit_delay=1e-6),
    )
    result = backend.run()
    assert not flow.completed
    assert flow.state is FlowState.ACTIVE
    assert backend.transport.segments_abandoned == 1
    # 1 original attempt + 2 retransmissions = max_attempts injections.
    assert backend.network.packets_injected == 3
    assert result.flows.completion_fraction() == 0.0


def test_window_is_never_exceeded_even_under_retransmission():
    # A dropped segment keeps its window slot while it waits out its
    # backoff; delivery-driven refills therefore cannot push a flow past
    # window_packets in flight even on a heavily dropping path.
    fabric = line_fabric(nodes=2, lanes=1, buffer_bytes=4500)
    flows = [Flow("n0", "n1", size_bits=30 * MTU_BITS) for _ in range(3)]
    backend = PacketBackend(
        fabric,
        flows,
        transport=TransportConfig(window_packets=2, retransmit_delay=1e-6),
    )
    transport = backend.transport
    original = transport._inject_segment
    window_peaks = []

    def tracking(state, segment):
        original(state, segment)
        window_peaks.append(state.in_window)

    transport._inject_segment = tracking
    backend.run()
    assert all(flow.completed for flow in flows)
    assert backend.network.dropped_count > 0, "test needs drops to be meaningful"
    assert max(window_peaks) <= 2


# --------------------------------------------------------------------------- #
# Rerouting and resumable runs
# --------------------------------------------------------------------------- #
def test_reroute_moves_remaining_segments_to_the_new_path():
    fabric = Fabric(TopologyBuilder(lanes_per_link=2).grid(2, 2), FabricConfig())
    flow = Flow("n0x0", "n1x1", size_bits=40 * MTU_BITS)
    backend = PacketBackend(fabric, [flow], transport=TransportConfig(window_packets=4))
    original = backend.transport.state_of(flow.flow_id).path
    assert original in (["n0x0", "n0x1", "n1x1"], ["n0x0", "n1x0", "n1x1"])
    detour = (
        [("n0x0", "n1x0"), ("n1x0", "n1x1")]
        if original[1] == "n0x1"
        else [("n0x0", "n0x1"), ("n0x1", "n1x1")]
    )
    backend.run(until=5e-6)
    backend.reroute(flow.flow_id, detour)
    backend.run()
    assert flow.completed
    stats = backend.network.port_stats()
    assert stats[detour[0]].packets_sent > 0
    assert stats[detour[1]].packets_sent > 0


def test_run_until_is_resumable():
    fabric = line_fabric()
    flow = Flow("n0", "n3", size_bits=100 * MTU_BITS)
    backend = PacketBackend(fabric, [flow])
    partial = backend.run(until=1e-5)
    assert partial.end_time == pytest.approx(1e-5)
    assert not flow.completed
    final = backend.run()
    assert flow.completed
    assert final.end_time >= partial.end_time
    assert final.allocator == "packet"


def test_max_events_budget_marks_the_run_truncated():
    fabric = line_fabric()
    flow = Flow("n0", "n3", size_bits=100 * MTU_BITS)
    backend = PacketBackend(fabric, [flow], max_events=10)
    result = backend.run()
    assert result.truncated
    assert not flow.completed


# --------------------------------------------------------------------------- #
# Controller surface
# --------------------------------------------------------------------------- #
def test_periodic_controller_observes_packet_utilisation():
    fabric = line_fabric(nodes=2)
    flow = Flow("n0", "n1", size_bits=50 * MTU_BITS)
    backend = PacketBackend(fabric, [flow])
    seen = []

    def tick(sim, now):
        seen.append((now, sim.instantaneous_link_utilisation()[("n0", "n1")]))

    backend.add_controller(2e-6, tick, start_offset=2e-6)
    backend.run()
    assert flow.completed
    assert seen, "controller never ticked"
    # The single flow saturates the line's only link between ticks.
    assert max(value for _now, value in seen) > 0.9
    # Ticks stop once the workload drains (the run terminates).
    assert seen[-1][0] <= flow.completion_time + 2e-6
