"""Tests for lane and link (bundle) models."""

import pytest

from repro.phy.fec import FEC_NONE, FEC_RS528, FEC_RS544
from repro.phy.lane import Lane, LaneState
from repro.phy.link import Link, make_bundle
from repro.phy.media import COPPER_DAC, FIBER_MMF
from repro.sim.units import GBPS


# --------------------------------------------------------------------------- #
# Lane
# --------------------------------------------------------------------------- #
def test_lane_defaults_are_active_25g():
    lane = Lane()
    assert lane.usable
    assert lane.rate_bps == 25 * GBPS
    assert lane.effective_rate_bps == 25 * GBPS


def test_lane_turn_off_and_on_cycle():
    lane = Lane()
    lane.turn_off()
    assert lane.state is LaneState.OFF
    assert lane.effective_rate_bps == 0.0
    done_at = lane.turn_on(now=1.0)
    assert lane.state is LaneState.TRAINING
    assert done_at == pytest.approx(1.0 + lane.training_time)
    lane.complete_training(done_at)
    assert lane.usable


def test_lane_turn_on_when_active_is_noop():
    lane = Lane()
    assert lane.turn_on(5.0) == 5.0
    assert lane.usable


def test_lane_training_cannot_complete_early():
    lane = Lane()
    lane.turn_off()
    done_at = lane.turn_on(0.0)
    with pytest.raises(ValueError):
        lane.complete_training(done_at / 2)


def test_failed_lane_cannot_be_reenabled():
    lane = Lane()
    lane.fail()
    assert lane.state is LaneState.FAILED
    with pytest.raises(ValueError):
        lane.turn_on(0.0)
    with pytest.raises(ValueError):
        lane.turn_off()


def test_lane_power_by_state():
    lane = Lane()
    active_power = lane.power_watts
    lane.turn_off()
    assert lane.power_watts < active_power
    lane.fail()
    assert lane.power_watts == 0.0


def test_lane_degraded_ber_monotone_in_loss():
    short = Lane(length_meters=0.5, raw_ber=1e-12)
    long = Lane(length_meters=4.0, raw_ber=1e-12)
    assert long.degraded_ber() >= short.degraded_ber()
    assert long.degraded_ber(extra_loss_db=10) > long.degraded_ber()
    assert long.degraded_ber(extra_loss_db=1000) <= 0.5


def test_lane_validation():
    with pytest.raises(ValueError):
        Lane(rate_bps=0)
    with pytest.raises(ValueError):
        Lane(raw_ber=2.0)
    with pytest.raises(ValueError):
        Lane(length_meters=-1)


# --------------------------------------------------------------------------- #
# Link
# --------------------------------------------------------------------------- #
def test_link_capacity_is_sum_of_active_lanes_after_fec():
    link = Link("a", "b", num_lanes=4, lane_rate_bps=25 * GBPS, fec=FEC_NONE)
    assert link.raw_capacity_bps == pytest.approx(100 * GBPS)
    assert link.capacity_bps == pytest.approx(100 * GBPS)
    link.set_fec(FEC_RS528)
    assert link.capacity_bps == pytest.approx(100 * GBPS * (1 - 0.0265))


def test_link_rejects_same_endpoints_and_zero_lanes():
    with pytest.raises(ValueError):
        Link("a", "a")
    with pytest.raises(ValueError):
        Link("a", "b", lanes=[])
    with pytest.raises(ValueError):
        Link("a", "b", num_lanes=0)


def test_link_connects_and_other_end():
    link = Link("a", "b")
    assert link.connects("b", "a")
    assert link.other_end("a") == "b"
    with pytest.raises(ValueError):
        link.other_end("c")


def test_link_remove_lanes_prefers_inactive():
    link = Link("a", "b", num_lanes=4, fec=FEC_NONE)
    link.set_active_lane_count(2)
    removed = link.remove_lanes(2)
    assert len(removed) == 2
    assert all(not lane.usable for lane in removed)
    assert link.num_active_lanes == 2


def test_link_cannot_remove_all_lanes():
    link = Link("a", "b", num_lanes=2)
    with pytest.raises(ValueError):
        link.remove_lanes(2)
    with pytest.raises(ValueError):
        link.remove_lanes(0)


def test_link_add_lanes_increases_capacity():
    link = Link("a", "b", num_lanes=2, fec=FEC_NONE)
    spare = [Lane(), Lane()]
    link.add_lanes(spare)
    assert link.num_lanes == 4
    assert link.raw_capacity_bps == pytest.approx(100 * GBPS)
    with pytest.raises(ValueError):
        link.add_lanes([])


def test_link_set_active_lane_count():
    link = Link("a", "b", num_lanes=4, fec=FEC_NONE)
    link.set_active_lane_count(1)
    assert link.num_active_lanes == 1
    assert link.raw_capacity_bps == pytest.approx(25 * GBPS)
    link.set_active_lane_count(3)
    assert link.num_active_lanes == 3
    with pytest.raises(ValueError):
        link.set_active_lane_count(5)


def test_link_disable_enable():
    link = Link("a", "b", num_lanes=2)
    link.disable()
    assert not link.up
    assert link.capacity_bps == 0.0
    link.enable()
    assert link.up
    assert link.num_active_lanes == 2


def test_link_latency_components():
    link = Link("a", "b", num_lanes=4, length_meters=2.0, media=COPPER_DAC, fec=FEC_RS528)
    assert link.propagation_delay == pytest.approx(COPPER_DAC.propagation_delay(2.0))
    assert link.phy_latency == pytest.approx(
        max(lane.serdes_latency for lane in link.lanes) + FEC_RS528.latency
    )
    assert link.one_way_latency == pytest.approx(link.propagation_delay + link.phy_latency)


def test_link_serialization_delay():
    link = Link("a", "b", num_lanes=4, fec=FEC_NONE)
    assert link.serialization_delay(100e9) == pytest.approx(1.0)
    link.disable()
    with pytest.raises(ValueError):
        link.serialization_delay(100)


def test_link_power_includes_fec_per_active_lane():
    link = Link("a", "b", num_lanes=4, fec=FEC_NONE)
    base = link.power_watts
    link.set_fec(FEC_RS544)
    assert link.power_watts == pytest.approx(base + 4 * FEC_RS544.power_watts)


def test_link_worst_and_post_fec_ber():
    lanes = [Lane(raw_ber=1e-12), Lane(raw_ber=1e-6)]
    link = Link("a", "b", lanes=lanes, fec=FEC_RS528, length_meters=0.5)
    assert link.worst_raw_ber >= 1e-6
    assert link.post_fec_ber < 1e-6
    link.disable()
    assert link.worst_raw_ber == 0.0


def test_make_bundle_helper():
    link = make_bundle("x", "y", num_lanes=8, lane_rate_bps=10 * GBPS, media=FIBER_MMF)
    assert link.num_lanes == 8
    assert link.raw_capacity_bps == pytest.approx(80 * GBPS)
    assert link.media is FIBER_MMF
