"""Tests for topology representation and builders."""

import pytest

from repro.fabric.node import Node, NodeType
from repro.fabric.topology import Topology, TopologyBuilder, canonical_key
from repro.phy.fec import FEC_NONE
from repro.phy.link import Link
from repro.sim.units import GBPS


# --------------------------------------------------------------------------- #
# Node
# --------------------------------------------------------------------------- #
def test_node_defaults_and_validation():
    node = Node("n0")
    assert node.is_endpoint
    assert node.power_watts > 0
    with pytest.raises(ValueError):
        Node("")
    with pytest.raises(ValueError):
        Node("x", nic_rate_bps=0)


def test_switch_node_is_not_endpoint():
    assert not Node("sw", node_type=NodeType.SWITCH).is_endpoint


def test_node_distance_manhattan():
    a = Node("a", position=(0, 0))
    b = Node("b", position=(2, 3))
    assert a.distance_to(b, spacing_meters=2.0) == pytest.approx(10.0)
    c = Node("c")
    assert a.distance_to(c, spacing_meters=2.0) == 2.0


# --------------------------------------------------------------------------- #
# Topology container
# --------------------------------------------------------------------------- #
def make_triangle():
    topo = Topology("tri")
    for name in ("a", "b", "c"):
        topo.add_node(Node(name))
    topo.add_link(Link("a", "b", num_lanes=2, fec=FEC_NONE))
    topo.add_link(Link("b", "c", num_lanes=2, fec=FEC_NONE))
    topo.add_link(Link("a", "c", num_lanes=2, fec=FEC_NONE))
    return topo


def test_canonical_key_is_order_independent():
    assert canonical_key("b", "a") == canonical_key("a", "b") == ("a", "b")


def test_topology_add_and_query():
    topo = make_triangle()
    assert topo.has_node("a")
    assert topo.has_link("c", "a")
    assert topo.link_between("c", "a").connects("a", "c")
    assert set(topo.neighbors("a")) == {"b", "c"}
    assert topo.degree("a") == 2
    assert len(topo.links()) == 3
    assert topo.is_connected()


def test_topology_rejects_unknown_endpoint_and_duplicates():
    topo = Topology()
    topo.add_node(Node("a"))
    with pytest.raises(KeyError):
        topo.add_link(Link("a", "zzz"))
    topo.add_node(Node("b"))
    topo.add_link(Link("a", "b"))
    with pytest.raises(ValueError):
        topo.add_link(Link("a", "b"))


def test_topology_remove_link():
    topo = make_triangle()
    removed = topo.remove_link("a", "b")
    assert removed.connects("a", "b")
    assert not topo.has_link("a", "b")
    with pytest.raises(KeyError):
        topo.remove_link("a", "b")


def test_topology_lane_and_power_totals():
    topo = make_triangle()
    assert topo.total_lanes() == 6
    assert topo.total_active_lanes() == 6
    topo.link_between("a", "b").set_active_lane_count(1)
    assert topo.total_active_lanes() == 5
    assert topo.total_link_power_watts() > 0


def test_topology_directed_capacities_symmetric():
    topo = make_triangle()
    capacities = topo.directed_capacities()
    assert capacities[("a", "b")] == capacities[("b", "a")]
    assert len(capacities) == 6


def test_topology_copy_is_independent():
    topo = make_triangle()
    clone = topo.copy()
    clone.link_between("a", "b").set_active_lane_count(1)
    assert topo.link_between("a", "b").num_active_lanes == 2
    assert clone.total_lanes() == topo.total_lanes()


def test_topology_endpoints_vs_switches():
    topo = Topology()
    topo.add_node(Node("h0"))
    topo.add_node(Node("sw", node_type=NodeType.SWITCH))
    assert topo.endpoints() == ["h0"]
    assert topo.switches() == ["sw"]


# --------------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------------- #
def builder(lanes=2):
    return TopologyBuilder(lanes_per_link=lanes, lane_rate_bps=25 * GBPS)


def test_line_topology_structure():
    topo = builder().line(5)
    assert len(topo.nodes()) == 5
    assert len(topo.links()) == 4
    assert topo.diameter() == 4
    with pytest.raises(ValueError):
        builder().line(1)


def test_ring_topology_structure():
    topo = builder().ring(6)
    assert len(topo.links()) == 6
    assert topo.diameter() == 3
    assert all(topo.degree(n.name) == 2 for n in topo.nodes())


def test_grid_topology_structure():
    topo = builder().grid(3, 4)
    assert len(topo.nodes()) == 12
    # 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
    assert len(topo.links()) == 17
    assert topo.diameter() == (3 - 1) + (4 - 1)
    assert topo.is_connected()


def test_torus_adds_wraparound_links():
    grid = builder().grid(4, 4)
    torus = builder().torus(4, 4)
    assert len(torus.links()) == len(grid.links()) + 8
    assert torus.diameter() < grid.diameter()
    assert torus.average_shortest_path_hops() < grid.average_shortest_path_hops()


def test_torus_wraparound_pairs_match_difference():
    pairs = TopologyBuilder.torus_wraparound_pairs(4, 4)
    grid = builder().grid(4, 4)
    torus = builder().torus(4, 4)
    for a, b in pairs:
        assert not grid.has_link(a, b)
        assert torus.has_link(a, b)
    assert len(pairs) == 8


def test_small_dimension_torus_avoids_duplicate_links():
    # A 2xN torus would duplicate the row wrap-around; the builder must not
    # attempt to add a parallel edge.
    topo = builder().torus(2, 4)
    assert topo.is_connected()
    topo2 = builder().torus(4, 2)
    assert topo2.is_connected()


def test_full_mesh_and_star():
    mesh = builder().full_mesh(5)
    assert len(mesh.links()) == 10
    assert mesh.diameter() == 1
    star = builder().star(6)
    assert len(star.links()) == 6
    assert len(star.endpoints()) == 6
    assert star.switches() == ["tor0"]
    assert star.diameter() == 2


def test_hypercube_structure():
    cube = builder().hypercube(3)
    assert len(cube.nodes()) == 8
    assert len(cube.links()) == 12
    assert all(cube.degree(n.name) == 3 for n in cube.nodes())
    assert cube.diameter() == 3


def test_fat_tree_structure():
    tree = builder().fat_tree(4)
    # k=4: 16 hosts, 4 core, 8 agg, 8 edge.
    assert len(tree.endpoints()) == 16
    assert len(tree.switches()) == 20
    assert tree.is_connected()
    with pytest.raises(ValueError):
        builder().fat_tree(3)


def test_grid_node_name_helper():
    assert TopologyBuilder.grid_node_name(2, 3) == "n2x3"


def test_by_name_registry():
    topo = builder().by_name("ring", num_nodes=5)
    assert len(topo.links()) == 5
    with pytest.raises(KeyError):
        builder().by_name("nonsense")


def test_builder_validation():
    with pytest.raises(ValueError):
        TopologyBuilder(lanes_per_link=0)
    with pytest.raises(ValueError):
        builder().grid(1, 5)


def test_bisection_bandwidth_positive_and_scales_with_lanes():
    thin = TopologyBuilder(lanes_per_link=1, fec=FEC_NONE).grid(4, 4)
    thick = TopologyBuilder(lanes_per_link=2, fec=FEC_NONE).grid(4, 4)
    assert thin.bisection_bandwidth_bps() > 0
    assert thick.bisection_bandwidth_bps() == pytest.approx(
        2 * thin.bisection_bandwidth_bps()
    )
