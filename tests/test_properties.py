"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.control import ControlLoop, ControlLoopConfig, GridToTorusCandidate
from repro.core.cost import LinkPriceTagger
from repro.core.reconfiguration import break_even_flow_size, reconfiguration_gain
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.packetsim import PacketBackend, PacketLevelNetwork
from repro.fabric.switch import SwitchModel
from repro.fabric.topology import TopologyBuilder
from repro.phy.fec import FEC_BASE_R, FEC_LDPC, FEC_RS528, FEC_RS544, STANDARD_FEC_SCHEMES
from repro.phy.link import Link
from repro.sim.engine import Simulator
from repro.sim.flow import Flow
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.packet import Packet
from repro.sim.random import RandomStreams
from repro.sim.transport import TransportConfig
from repro.sim.units import bits_from_bytes
from repro.telemetry.metrics import jain_fairness_index

# Keep hypothesis example counts modest: these run inside a large suite.
COMMON_SETTINGS = settings(max_examples=50, deadline=None)


# --------------------------------------------------------------------------- #
# Event engine ordering
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=50))
def test_engine_executes_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.drain()
    assert len(fired) == len(delays)
    assert all(b >= a for a, b in zip(fired, fired[1:]))
    assert fired == sorted(delays)


@COMMON_SETTINGS
@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False), st.integers(-5, 5)),
        min_size=1,
        max_size=40,
    )
)
def test_engine_priority_tiebreak_is_total_order(events):
    sim = Simulator()
    record = []
    for time, priority in events:
        sim.schedule_at(time, lambda t=time, p=priority: record.append((t, p)), priority=priority)
    sim.drain()
    assert record == sorted(record, key=lambda tp: (tp[0], tp[1]))


# --------------------------------------------------------------------------- #
# Max-min fairness in the fluid simulator
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=10.0, max_value=1e4, allow_nan=False),
)
def test_equal_flows_on_one_link_share_equally(num_flows, capacity):
    sim = FluidFlowSimulator()
    sim.add_link("l", capacity)
    flows = [Flow("a", "b", 1000.0) for _ in range(num_flows)]
    for flow in flows:
        sim.add_flow(flow, ["l"])
    sim.run(until=0.0)
    rates = sim.active_flow_rates()
    # All equal and summing to at most the capacity.
    values = list(rates.values())
    assert len(values) == num_flows
    assert all(math.isclose(v, values[0], rel_tol=1e-9) for v in values)
    assert sum(values) <= capacity * (1 + 1e-9)
    assert jain_fairness_index(values) > 0.999


@COMMON_SETTINGS
@given(
    st.lists(st.floats(min_value=100.0, max_value=1e6, allow_nan=False), min_size=2, max_size=6),
    st.floats(min_value=50.0, max_value=1e5, allow_nan=False),
)
def test_fluid_conservation_of_bits(sizes, capacity):
    sim = FluidFlowSimulator()
    sim.add_link("l", capacity)
    flows = [Flow("a", "b", size) for size in sizes]
    for flow in flows:
        sim.add_flow(flow, ["l"])
    result = sim.run()
    assert all(flow.completed for flow in flows)
    # Bits carried on the link equal the bits of all flows.
    assert math.isclose(result.link_bits_carried["l"], sum(sizes), rel_tol=1e-6)
    # No flow finished faster than the capacity allows.
    for flow, size in zip(flows, sizes):
        assert flow.fct >= size / capacity - 1e-9


@COMMON_SETTINGS
@given(st.integers(min_value=2, max_value=6))
def test_fluid_link_never_oversubscribed(num_flows):
    sim = FluidFlowSimulator()
    sim.add_link("shared", 1000.0)
    sim.add_link("private", 1000.0)
    for index in range(num_flows):
        path = ["shared"] if index % 2 == 0 else ["shared", "private"]
        sim.add_flow(Flow("a", f"b{index}", 500.0), path)
    sim.run(until=0.0)
    load = sim.instantaneous_link_load()
    assert load["shared"] <= 1000.0 * (1 + 1e-9)
    assert load["private"] <= 1000.0 * (1 + 1e-9)


# --------------------------------------------------------------------------- #
# Packet-level network invariants
# --------------------------------------------------------------------------- #
#: One random packet draw: (src pick, dst pick, size bytes, injection time).
_packet_draws = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=64.0, max_value=3000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=5e-5, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)

#: Random small topology: a line of 2..5 nodes or a 2x2..3x3 grid.
_topologies = st.one_of(
    st.tuples(st.just("line"), st.integers(2, 5), st.just(0)),
    st.tuples(st.just("grid"), st.integers(2, 3), st.integers(2, 3)),
)


def _build_packet_network(shape, buffer_bytes=None):
    kind, a, b = shape
    builder = TopologyBuilder(lanes_per_link=1)
    topology = builder.line(a) if kind == "line" else builder.grid(a, b)
    config = FabricConfig()
    if buffer_bytes is not None:
        config = FabricConfig(
            switch_model=SwitchModel(buffer_bits=bits_from_bytes(buffer_bytes))
        )
    fabric = Fabric(topology, config)
    simulator = Simulator()
    return simulator, PacketLevelNetwork(simulator, fabric), fabric


def _inject_draws(network, fabric, draws):
    endpoints = fabric.topology.endpoints()
    packets = []
    for src_pick, dst_pick, size_bytes, created_at in draws:
        src = endpoints[src_pick % len(endpoints)]
        dst = endpoints[dst_pick % len(endpoints)]
        if src == dst:
            dst = endpoints[(dst_pick + 1) % len(endpoints)]
            if src == dst:
                continue
        packets.append(Packet.of_bytes(src, dst, size_bytes, created_at=created_at))
    network.inject_all(packets)
    return packets


@COMMON_SETTINGS
@given(_topologies, _packet_draws, st.floats(min_value=0.0, max_value=1.0))
def test_packet_conservation_at_any_run_point(shape, draws, horizon_fraction):
    """entered == delivered + dropped + in-flight at any run(until) cut,
    and everything settles (in-flight == 0) once the calendar drains."""
    # A tight buffer so random bursts genuinely exercise the drop path.
    simulator, network, fabric = _build_packet_network(shape, buffer_bytes=4500)
    packets = _inject_draws(network, fabric, draws)
    horizon = horizon_fraction * (max(p.created_at for p in packets) + 2e-5) if packets else 0.0
    simulator.run(until=horizon)
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count + network.in_flight
    )
    assert network.packets_entered <= network.packets_injected
    simulator.drain()
    assert network.in_flight == 0
    assert network.packets_entered == network.packets_injected == len(packets)
    assert network.delivered_count + network.dropped_count == len(packets)
    # Payload conservation: delivered bits are exactly the delivered sizes.
    assert network.bits_delivered == pytest.approx(
        sum(p.size_bits for p in network.delivered)
    )


@COMMON_SETTINGS
@given(_topologies, _packet_draws)
def test_packet_hop_timestamps_are_nondecreasing(shape, draws):
    simulator, network, fabric = _build_packet_network(shape)
    _inject_draws(network, fabric, draws)
    simulator.drain()
    for packet in network.delivered:
        previous_departure = packet.created_at
        for hop in packet.hops:
            assert hop.arrival >= previous_departure - 1e-15
            assert hop.departure >= hop.arrival
            assert hop.queueing >= 0.0
            assert hop.switching >= 0.0
            previous_departure = hop.departure
        assert packet.delivered_at >= previous_departure


@COMMON_SETTINGS
@given(_topologies, _packet_draws)
def test_packet_delay_breakdown_sums_to_latency(shape, draws):
    simulator, network, fabric = _build_packet_network(shape)
    _inject_draws(network, fabric, draws)
    simulator.drain()
    assert network.delivered, "idle-buffer runs must deliver everything"
    for packet in network.delivered:
        breakdown = packet.delay_breakdown()
        assert sum(breakdown.values()) == pytest.approx(packet.latency, rel=1e-9)
        assert breakdown["queueing"] == pytest.approx(packet.queueing_seconds, rel=1e-9)


#: One random flow draw for the loop-on-packet conservation property:
#: (src pick, dst pick, size bits, start time).
_loop_flow_draws = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=2_000.0, max_value=150_000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=3e-5, allow_nan=False),
    ),
    min_size=2,
    max_size=8,
)


@settings(max_examples=15, deadline=None)
@given(_loop_flow_draws, st.floats(min_value=0.05, max_value=1.0))
def test_packet_conservation_holds_while_the_loop_mutates(draws, horizon_fraction):
    """entered == delivered + dropped + in-flight at any run(until) cut of a
    co-simulated loop-on-packet run -- while the ControlLoop reroutes flows
    and commits PLP batches (capacity changes, new wrap-around links,
    training windows) against the live packet network."""
    fabric = Fabric(
        TopologyBuilder(lanes_per_link=2).grid(2, 3),
        FabricConfig(switch_model=SwitchModel(buffer_bits=bits_from_bytes(9000))),
    )
    endpoints = fabric.topology.endpoints()
    flows = []
    for src_pick, dst_pick, size_bits, start_time in draws:
        src = endpoints[src_pick % len(endpoints)]
        dst = endpoints[dst_pick % len(endpoints)]
        if src == dst:
            dst = endpoints[(dst_pick + 1) % len(endpoints)]
            if src == dst:
                continue
        flows.append(Flow(src, dst, size_bits=size_bits, start_time=start_time))
    if not flows:
        return
    backend = PacketBackend(
        fabric,
        flows,
        transport=TransportConfig(window_packets=4, retransmit_delay=1e-6),
    )
    loop = ControlLoop(
        fabric,
        candidates=[GridToTorusCandidate(2, 3)],
        # An eager configuration so reroutes and the PLP batch actually
        # fire inside these short runs.
        config=ControlLoopConfig(
            interval=5e-6,
            utilisation_threshold=0.05,
            hysteresis=1.0,
            break_even_margin=1.0,
            min_reconfiguration_interval=1e-5,
        ),
    )
    loop.bind(backend)
    network = backend.network

    loop.run(until=horizon_fraction * 2e-4)
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count + network.in_flight
    )
    assert network.packets_entered <= network.packets_injected

    # The loop stops once the transport is done; a flow abandoned at
    # max_attempts may still leave a final delivery event on the calendar,
    # so conservation must hold here too ...
    loop.run()
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count + network.in_flight
    )
    # ... and settle exactly once the calendar drains.
    backend.simulator.drain()
    assert network.in_flight == 0
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count
    )
    # No duplicate payload: retransmission only replaces dropped segments.
    assert network.bits_delivered <= sum(f.size_bits for f in flows) * (1 + 1e-9)


# --------------------------------------------------------------------------- #
# Batched packet engine invariants
# --------------------------------------------------------------------------- #
# The batched engine coalesces segments into trains and splits them on
# interleave, so its conservation counters, per-hop timestamps and delay
# decomposition must hold at *any* horizon cut -- a train split mid-run
# must never lose or double-count a segment.  (The engine drives flows
# through the transport, so these properties feed it flow draws rather
# than raw packets.)

#: One random flow draw: (src pick, dst pick, size bits, start time).
_batched_flow_draws = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=2_000.0, max_value=150_000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=3e-5, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


def _batched_backend(shape, draws, buffer_bytes=None, engine="batched", **kwargs):
    kind, a, b = shape
    builder = TopologyBuilder(lanes_per_link=1)
    topology = builder.line(a) if kind == "line" else builder.grid(a, b)
    config = FabricConfig()
    if buffer_bytes is not None:
        config = FabricConfig(
            switch_model=SwitchModel(buffer_bits=bits_from_bytes(buffer_bytes))
        )
    fabric = Fabric(topology, config)
    endpoints = fabric.topology.endpoints()
    flows = []
    for src_pick, dst_pick, size_bits, start_time in draws:
        src = endpoints[src_pick % len(endpoints)]
        dst = endpoints[dst_pick % len(endpoints)]
        if src == dst:
            dst = endpoints[(dst_pick + 1) % len(endpoints)]
            if src == dst:
                continue
        flows.append(Flow(src, dst, size_bits=size_bits, start_time=start_time))
    if not flows:
        return None
    return PacketBackend(fabric, flows, engine=engine, **kwargs)


@COMMON_SETTINGS
@given(_topologies, _batched_flow_draws, st.floats(min_value=0.0, max_value=1.0))
def test_batched_conservation_at_any_run_point(shape, draws, horizon_fraction):
    """entered == delivered + dropped + in-flight at any run(until) cut of
    the batched engine, and everything settles once it drains."""
    # A tight buffer and a small retransmit window so random bursts
    # genuinely exercise the drop/retransmit paths through train splits.
    backend = _batched_backend(
        shape,
        draws,
        buffer_bytes=4500,
        transport=TransportConfig(window_packets=4, retransmit_delay=1e-6),
    )
    if backend is None:
        return
    network = backend.network
    horizon = horizon_fraction * (
        max(f.start_time for f in backend._flows) + 2e-5
    )
    backend.run(until=horizon)
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count + network.in_flight
    )
    assert network.packets_entered <= network.packets_injected
    backend.run()
    backend.simulator.drain()
    assert network.in_flight == 0
    assert network.packets_entered == network.packets_injected
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count
    )
    assert backend.transport.finished
    # No duplicate payload: retransmission only replaces dropped segments.
    assert network.bits_delivered <= sum(
        f.size_bits for f in backend._flows
    ) * (1 + 1e-9)


@COMMON_SETTINGS
@given(_topologies, _batched_flow_draws)
def test_batched_hop_timestamps_are_nondecreasing(shape, draws):
    # record_hops forces the engine's rich mode: coalescing must still
    # stamp every per-hop arrival/departure in causal order.
    backend = _batched_backend(shape, draws, record_hops=True, retain_packets=True)
    if backend is None:
        return
    backend.run()
    network = backend.network
    assert network.delivered, "idle-buffer runs must deliver everything"
    for packet in network.delivered:
        previous_departure = packet.created_at
        for hop in packet.hops:
            assert hop.arrival >= previous_departure - 1e-15
            assert hop.departure >= hop.arrival
            assert hop.queueing >= 0.0
            assert hop.switching >= 0.0
            previous_departure = hop.departure
        assert packet.delivered_at >= previous_departure


@COMMON_SETTINGS
@given(_topologies, _batched_flow_draws)
def test_batched_delay_breakdown_sums_to_latency(shape, draws):
    backend = _batched_backend(shape, draws, record_hops=True, retain_packets=True)
    if backend is None:
        return
    backend.run()
    network = backend.network
    assert network.delivered, "idle-buffer runs must deliver everything"
    for packet in network.delivered:
        breakdown = packet.delay_breakdown()
        assert sum(breakdown.values()) == pytest.approx(packet.latency, rel=1e-9)
        assert breakdown["queueing"] == pytest.approx(packet.queueing_seconds, rel=1e-9)


# --------------------------------------------------------------------------- #
# Sharded packet engine invariants
# --------------------------------------------------------------------------- #
# The sharded coordinator partitions flows across batched cores and merges
# their statistics streams at epoch barriers; conservation and timestamp
# monotonicity must hold for *any* shard count, at *any* horizon cut, and
# through live mutations (facade link toggles, the closed control loop's
# reroutes -- which demote the coordinator mid-run).

#: Shard counts beyond the component count are legal (the coordinator
#: never splits a closure), so sample past the useful range on purpose.
_shard_counts = st.integers(min_value=1, max_value=5)


@settings(max_examples=25, deadline=None)
@given(
    _topologies,
    _batched_flow_draws,
    _shard_counts,
    st.floats(min_value=0.0, max_value=1.0),
    st.booleans(),
)
def test_sharded_conservation_at_any_cut_with_mutations(
    shape, draws, shards, horizon_fraction, flap_link
):
    """entered == delivered + dropped + in-flight at any run(until) cut of
    the sharded engine -- summed across shards -- under random shard counts
    and a live link flap landing between epochs."""
    backend = _batched_backend(
        shape,
        draws,
        buffer_bytes=4500,
        engine="sharded",
        shards=shards,
        transport=TransportConfig(window_packets=4, retransmit_delay=1e-6),
    )
    if backend is None:
        return
    network = backend.network
    horizon = horizon_fraction * (
        max(f.start_time for f in backend._flows) + 2e-5
    )
    backend.run(until=horizon)
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count + network.in_flight
    )
    assert network.packets_entered <= network.packets_injected
    if flap_link:
        key = sorted(backend.links())[0]
        backend.set_enabled(key, False)
        backend.run(until=horizon + 1e-5)
        assert network.packets_entered == (
            network.delivered_count + network.dropped_count + network.in_flight
        )
        backend.set_enabled(key, True)
    backend.run()
    backend.simulator.drain()
    assert network.in_flight == 0
    assert network.packets_entered == network.packets_injected
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count
    )
    assert backend.transport.finished
    assert network.bits_delivered <= sum(
        f.size_bits for f in backend._flows
    ) * (1 + 1e-9)


@settings(max_examples=15, deadline=None)
@given(_loop_flow_draws, _shard_counts, st.floats(min_value=0.05, max_value=1.0))
def test_sharded_conservation_holds_while_the_loop_mutates(
    draws, shards, horizon_fraction
):
    """The loop-on-packet conservation property, but on the sharded engine:
    binding the ControlLoop schedules external callbacks, which demotes the
    coordinator to its journal-replayed monolithic core -- conservation must
    survive the demotion and every later reroute/PLP mutation."""
    fabric = Fabric(
        TopologyBuilder(lanes_per_link=2).grid(2, 3),
        FabricConfig(switch_model=SwitchModel(buffer_bits=bits_from_bytes(9000))),
    )
    endpoints = fabric.topology.endpoints()
    flows = []
    for src_pick, dst_pick, size_bits, start_time in draws:
        src = endpoints[src_pick % len(endpoints)]
        dst = endpoints[dst_pick % len(endpoints)]
        if src == dst:
            dst = endpoints[(dst_pick + 1) % len(endpoints)]
            if src == dst:
                continue
        flows.append(Flow(src, dst, size_bits=size_bits, start_time=start_time))
    if not flows:
        return
    backend = PacketBackend(
        fabric,
        flows,
        engine="sharded",
        shards=shards,
        transport=TransportConfig(window_packets=4, retransmit_delay=1e-6),
    )
    loop = ControlLoop(
        fabric,
        candidates=[GridToTorusCandidate(2, 3)],
        config=ControlLoopConfig(
            interval=5e-6,
            utilisation_threshold=0.05,
            hysteresis=1.0,
            break_even_margin=1.0,
            min_reconfiguration_interval=1e-5,
        ),
    )
    loop.bind(backend)
    network = backend.network

    loop.run(until=horizon_fraction * 2e-4)
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count + network.in_flight
    )
    assert network.packets_entered <= network.packets_injected

    loop.run()
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count + network.in_flight
    )
    backend.simulator.drain()
    assert network.in_flight == 0
    assert network.packets_entered == (
        network.delivered_count + network.dropped_count
    )
    assert network.bits_delivered <= sum(f.size_bits for f in flows) * (1 + 1e-9)


@COMMON_SETTINGS
@given(_topologies, _batched_flow_draws, _shard_counts)
def test_sharded_timestamps_nondecreasing_across_boundaries(shape, draws, shards):
    """Each shard's delivery/retransmit logs are time-ordered, and the
    coordinator's merged statistics streams respect that order across
    shard boundaries (the merge never reorders time)."""
    backend = _batched_backend(
        shape,
        draws,
        buffer_bytes=4500,
        engine="sharded",
        shards=shards,
        transport=TransportConfig(window_packets=4, retransmit_delay=1e-6),
    )
    if backend is None:
        return
    backend.run()
    core = backend.network
    merged_samples = core.queueing_samples
    if core.shard_count > 1:
        total = 0
        for shard in core._bins:
            times = [t for t, _ in shard.delivery_log]
            assert times == sorted(times)
            retx_times = [t for t, _ in shard.retransmit_log]
            assert retx_times == sorted(retx_times)
            assert len(shard.delivery_log) == len(shard.queueing_samples)
            total += len(shard.queueing_samples)
        assert len(merged_samples) == total
        merged_times = [
            t for t, _size, _extra in core._merge_logs(
                [shard.delivery_log for shard in core._bins], None
            )
        ]
        assert merged_times == sorted(merged_times)
    else:
        assert merged_samples == core._bins[0].queueing_samples


@COMMON_SETTINGS
@given(_topologies, _batched_flow_draws, _shard_counts)
def test_sharded_hop_timestamps_are_nondecreasing(shape, draws, shards):
    # Rich mode (hop records) runs on the coordinator's single-core path;
    # the per-hop causal-order property must hold through the sharded
    # entry point for every requested shard count.
    backend = _batched_backend(
        shape, draws, engine="sharded", shards=shards,
        record_hops=True, retain_packets=True,
    )
    if backend is None:
        return
    backend.run()
    network = backend.network
    assert network.delivered, "idle-buffer runs must deliver everything"
    for packet in network.delivered:
        previous_departure = packet.created_at
        for hop in packet.hops:
            assert hop.arrival >= previous_departure - 1e-15
            assert hop.departure >= hop.arrival
            assert hop.queueing >= 0.0
            assert hop.switching >= 0.0
            previous_departure = hop.departure
        assert packet.delivered_at >= previous_departure


# --------------------------------------------------------------------------- #
# FEC invariants
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(st.floats(min_value=1e-15, max_value=0.4, allow_nan=False))
def test_post_fec_ber_never_worse_than_raw(raw_ber):
    for scheme in STANDARD_FEC_SCHEMES:
        assert scheme.post_fec_ber(raw_ber) <= raw_ber * (1 + 1e-12)


@COMMON_SETTINGS
@given(
    st.floats(min_value=1e-12, max_value=1e-3, allow_nan=False),
    st.floats(min_value=1.0, max_value=10.0),
)
def test_post_fec_ber_monotone_in_raw(raw_ber, factor):
    worse = min(raw_ber * factor, 0.4)
    for scheme in (FEC_BASE_R, FEC_RS528, FEC_RS544, FEC_LDPC):
        assert scheme.post_fec_ber(worse) >= scheme.post_fec_ber(raw_ber) - 1e-18


@COMMON_SETTINGS
@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
def test_fec_effective_rate_never_exceeds_raw(rate):
    for scheme in STANDARD_FEC_SCHEMES:
        assert scheme.effective_rate(rate) <= rate


# --------------------------------------------------------------------------- #
# Break-even invariants
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(
    st.floats(min_value=1e6, max_value=1e11, allow_nan=False),
    st.floats(min_value=1.01, max_value=10.0),
    st.floats(min_value=1e-9, max_value=1e-1, allow_nan=False),
)
def test_break_even_is_the_crossover(rate, speedup, delay):
    new_rate = rate * speedup
    threshold = break_even_flow_size(rate, new_rate, delay)
    assert threshold > 0
    assert reconfiguration_gain(threshold * 1.01, rate, new_rate, delay) > 0
    assert reconfiguration_gain(threshold * 0.99, rate, new_rate, delay) < 0
    assert math.isclose(reconfiguration_gain(threshold, rate, new_rate, delay), 0.0, abs_tol=1e-6)


@COMMON_SETTINGS
@given(
    st.floats(min_value=1e6, max_value=1e11, allow_nan=False),
    st.floats(min_value=1.01, max_value=10.0),
    st.floats(min_value=1e-9, max_value=1e-2, allow_nan=False),
    st.floats(min_value=1.1, max_value=5.0),
)
def test_break_even_monotone_in_delay(rate, speedup, delay, delay_factor):
    new_rate = rate * speedup
    assert break_even_flow_size(rate, new_rate, delay * delay_factor) >= break_even_flow_size(
        rate, new_rate, delay
    )


# --------------------------------------------------------------------------- #
# Price tags
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(
    st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
    st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)
def test_price_monotone_in_utilisation(low, delta):
    tagger = LinkPriceTagger()
    link = Link("a", "b", num_lanes=4)
    high = min(low + delta, 0.999)
    assert tagger.price(link, utilisation=high) >= tagger.price(link, utilisation=low) - 1e-12


@COMMON_SETTINGS
@given(st.floats(min_value=0.0, max_value=0.999, allow_nan=False))
def test_price_is_finite_and_nonnegative_for_live_links(utilisation):
    tagger = LinkPriceTagger()
    link = Link("a", "b", num_lanes=2)
    price = tagger.price(link, utilisation=utilisation)
    assert price >= 0
    assert math.isfinite(price)


# --------------------------------------------------------------------------- #
# Random streams
# --------------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=30))
def test_derangement_property(seed, n):
    streams = RandomStreams(seed)
    result = streams.derangement("d", n)
    assert sorted(result) == list(range(n))
    assert all(result[i] != i for i in range(n))


@COMMON_SETTINGS
@given(st.integers(min_value=0, max_value=2**31))
def test_streams_deterministic_per_seed(seed):
    a = RandomStreams(seed)
    b = RandomStreams(seed)
    assert a.permutation("p", 10) == b.permutation("p", 10)
