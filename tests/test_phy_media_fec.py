"""Tests for media and FEC models."""

import pytest

from repro.phy.fec import (
    FEC_BASE_R,
    FEC_LDPC,
    FEC_NONE,
    FEC_RS528,
    FEC_RS544,
    STANDARD_FEC_SCHEMES,
    AdaptiveFecController,
    FecScheme,
    post_fec_ber,
    scheme_by_name,
)
from repro.phy.media import (
    BACKPLANE,
    COPPER_DAC,
    FIBER_MMF,
    FIBER_SMF,
    MEDIA_BY_NAME,
    SPEED_OF_LIGHT,
    Media,
    propagation_delay,
)


# --------------------------------------------------------------------------- #
# Media
# --------------------------------------------------------------------------- #
def test_propagation_delay_scales_with_length():
    assert FIBER_MMF.propagation_delay(2.0) == pytest.approx(
        2.0 / (0.67 * SPEED_OF_LIGHT)
    )
    assert FIBER_MMF.propagation_delay(0.0) == 0.0


def test_propagation_delay_rejects_negative_length():
    with pytest.raises(ValueError):
        COPPER_DAC.propagation_delay(-1.0)


def test_media_velocity_fraction_bounds():
    with pytest.raises(ValueError):
        Media("bad", velocity_fraction=0.0, loss_db_per_meter=0, max_reach_meters=1,
              power_per_lane_watts=0)
    with pytest.raises(ValueError):
        Media("bad", velocity_fraction=1.5, loss_db_per_meter=0, max_reach_meters=1,
              power_per_lane_watts=0)


def test_media_loss_and_reach():
    assert COPPER_DAC.loss_db(2.0) == pytest.approx(4.0)
    assert COPPER_DAC.within_reach(3.0)
    assert not COPPER_DAC.within_reach(10.0)


def test_media_registry_contains_standard_media():
    for media in (COPPER_DAC, FIBER_MMF, FIBER_SMF, BACKPLANE):
        assert MEDIA_BY_NAME[media.name] is media


def test_module_level_propagation_delay_helper():
    assert propagation_delay(2.0, COPPER_DAC) == COPPER_DAC.propagation_delay(2.0)


def test_rack_scale_propagation_is_tens_of_nanoseconds():
    # The paper's point: 2 m of media is ~10 ns, utterly dominated by a
    # ~400 ns switch traversal.
    delay = COPPER_DAC.propagation_delay(2.0)
    assert 5e-9 < delay < 20e-9


# --------------------------------------------------------------------------- #
# FEC schemes
# --------------------------------------------------------------------------- #
def test_fec_none_passes_ber_through():
    assert FEC_NONE.post_fec_ber(1e-5) == 1e-5
    assert FEC_NONE.effective_rate(100e9) == 100e9
    assert FEC_NONE.latency == 0.0


def test_fec_overhead_reduces_effective_rate():
    assert FEC_RS528.effective_rate(100e9) == pytest.approx(100e9 * (1 - 0.0265))
    assert FEC_RS544.effective_rate(100e9) < FEC_RS528.effective_rate(100e9)


def test_fec_corrects_moderate_ber():
    # RS(528,514) should take a 1e-5 channel far below 1e-12.
    assert FEC_RS528.post_fec_ber(1e-5) < 1e-12
    # And RS(544,514) handles an even worse channel.
    assert FEC_RS544.post_fec_ber(2e-4) < 1e-12


def test_fec_cannot_correct_terrible_channel():
    assert FEC_BASE_R.post_fec_ber(1e-2) > 1e-12


def test_post_fec_ber_monotone_in_raw_ber():
    previous = 0.0
    for raw in (1e-9, 1e-7, 1e-5, 1e-4, 1e-3):
        current = FEC_RS528.post_fec_ber(raw)
        assert current >= previous
        previous = current


def test_post_fec_ber_never_exceeds_raw():
    for scheme in STANDARD_FEC_SCHEMES:
        for raw in (0.0, 1e-12, 1e-6, 1e-3, 1e-1):
            assert scheme.post_fec_ber(raw) <= raw + 1e-18


def test_post_fec_ber_validates_input():
    with pytest.raises(ValueError):
        post_fec_ber(-0.1, FEC_RS528)
    with pytest.raises(ValueError):
        post_fec_ber(1.1, FEC_RS528)


def test_stronger_schemes_cost_more_latency_and_overhead():
    assert FEC_NONE.latency < FEC_BASE_R.latency < FEC_RS528.latency
    assert FEC_RS528.latency < FEC_RS544.latency < FEC_LDPC.latency
    assert FEC_RS528.overhead_fraction < FEC_RS544.overhead_fraction


def test_scheme_by_name_lookup():
    assert scheme_by_name("rs-528") is FEC_RS528
    with pytest.raises(KeyError):
        scheme_by_name("nonexistent")


def test_fec_scheme_validation():
    with pytest.raises(ValueError):
        FecScheme("x", overhead_fraction=1.5, latency=0, symbol_size_bits=1,
                  block_symbols=1, correctable_symbols=0, power_watts=0)
    with pytest.raises(ValueError):
        FecScheme("x", overhead_fraction=0, latency=-1, symbol_size_bits=1,
                  block_symbols=1, correctable_symbols=0, power_watts=0)


# --------------------------------------------------------------------------- #
# Adaptive FEC controller
# --------------------------------------------------------------------------- #
def test_adaptive_fec_selects_none_on_clean_channel():
    controller = AdaptiveFecController(target_ber=1e-12)
    assert controller.select(1e-15).name == "none"


def test_adaptive_fec_selects_stronger_scheme_as_ber_degrades():
    controller = AdaptiveFecController(target_ber=1e-12)
    clean = controller.select(1e-15)
    moderate = controller.select(1e-6)
    bad = controller.select(5e-3)
    assert clean.correctable_symbols <= moderate.correctable_symbols <= bad.correctable_symbols
    assert moderate.name != "none"


def test_adaptive_fec_falls_back_to_strongest_when_nothing_meets_target():
    controller = AdaptiveFecController(target_ber=1e-15)
    chosen = controller.select(0.2)
    assert chosen.name == "ldpc"


def test_adaptive_fec_hysteresis_keeps_current_scheme():
    controller = AdaptiveFecController(target_ber=1e-12, hysteresis=10.0)
    # RS-544 comfortably meets the target at 1e-6; even though RS-528 also
    # meets it, a non-cheaper current scheme is kept only if no cheaper
    # candidate exists -- here RS-528 is cheaper, so we switch down.
    chosen = controller.select(1e-6, current=FEC_RS544)
    assert chosen.name in ("rs-528", "base-r")
    # But if the current scheme is already the cheapest that meets the
    # margin, it is retained.
    kept = controller.select(1e-15, current=FEC_NONE)
    assert kept.name == "none"


def test_adaptive_fec_schemes_meeting_target():
    controller = AdaptiveFecController(target_ber=1e-12)
    names = {scheme.name for scheme in controller.schemes_meeting_target(1e-6)}
    assert "rs-528" in names
    assert "none" not in names


def test_adaptive_fec_validates_parameters():
    with pytest.raises(ValueError):
        AdaptiveFecController(target_ber=0)
    with pytest.raises(ValueError):
        AdaptiveFecController(hysteresis=0.5)
