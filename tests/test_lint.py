"""The invariant linter (src/repro/lint): rules, baseline, parity pairs.

Fixture files are built in memory through :class:`SourceFile`, so each
rule's trigger/suppression behaviour is pinned without touching the real
tree; the meta-test at the bottom then lints the live ``src/repro``
package and requires it clean modulo the checked-in baseline.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.lint.baseline import (
    apply_baseline,
    finding_key,
    load_baseline,
    write_baseline,
)
from repro.lint.framework import (
    LintError,
    LintRun,
    Rule,
    SourceFile,
    collect_files,
    find_repo_root,
    register_rule,
    resolve_rules,
    rule_catalog,
    run_rules,
)
from repro.lint.parity import (
    ParityPair,
    fingerprint_source,
    split_reference,
)
from repro.lint.parity_pairs import PARITY_PAIRS
from repro.lint.rules.parity_rule import check_pairs
from repro.lint.rules.registry_docs import (
    check_family_moves,
    check_scenario_docs,
    check_tolerance_tables,
    declared_table_keys,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(rel: str, text: str, codes):
    """Run the selected rules over one in-memory file."""
    source = SourceFile(rel, text)
    run = run_rules([source], resolve_rules(list(codes)))
    return run.findings


# --------------------------------------------------------------------------- #
# Framework
# --------------------------------------------------------------------------- #
def test_rule_catalog_contains_the_documented_families():
    codes = {rule.code for rule in rule_catalog()}
    assert {"D001", "D002", "D003", "U101", "R201"} <= codes


def test_duplicate_rule_code_is_a_registration_error():
    with pytest.raises(LintError, match="already registered"):

        @register_rule
        class Duplicate(Rule):  # noqa: F811 -- never referenced again
            code = "D001"


def test_unknown_rule_code_is_a_usage_error():
    with pytest.raises(LintError, match="unknown rule"):
        resolve_rules(["Z999"])


def test_syntax_errors_surface_as_e999_findings():
    findings = lint_source("src/repro/sim/broken.py", "def f(:\n", ["D001"])
    assert [f.rule for f in findings] == ["E999"]


def test_blanket_suppression_silences_every_rule_on_the_line():
    text = "import random\nx = random.random()  # repro: ignore\n"
    assert lint_source("src/repro/sim/x.py", text, ["D001"]) == []


def test_targeted_suppression_only_silences_the_named_rule():
    hit = "import random\nx = random.random()  # repro: ignore[D002]\n"
    assert [f.rule for f in lint_source("src/repro/sim/x.py", hit, ["D001"])] == [
        "D001"
    ]
    miss = "import random\nx = random.random()  # repro: ignore[D001]\n"
    assert lint_source("src/repro/sim/x.py", miss, ["D001"]) == []


# --------------------------------------------------------------------------- #
# D001: unseeded / nondeterministic sources
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "snippet",
    [
        "import random\nx = random.random()\n",
        "import random\nrandom.shuffle(items)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import time\nt = time.time()\n",
        "import os\nx = os.urandom(8)\n",
        "import uuid\nx = uuid.uuid4()\n",
        "import datetime\nx = datetime.datetime.now()\n",
    ],
    ids=["random", "shuffle", "np-default-rng", "time", "urandom", "uuid4", "now"],
)
def test_d001_flags_each_nondeterministic_source(snippet):
    findings = lint_source("src/repro/sim/x.py", snippet, ["D001"])
    assert [f.rule for f in findings] == ["D001"]


def test_d001_flags_environment_reads_only_in_simulation_code():
    text = "import os\nx = os.environ['REPRO_MODE']\ny = os.getenv('HOME')\n"
    sim = lint_source("src/repro/sim/x.py", text, ["D001"])
    assert sorted(f.rule for f in sim) == ["D001", "D001"]
    # The CLI layer may read the environment.
    assert lint_source("src/repro/cli.py", text, ["D001"]) == []


def test_d001_exempts_the_seed_home_module():
    text = "import numpy as np\nrng = np.random.default_rng(seed)\n"
    assert lint_source("src/repro/sim/random.py", text, ["D001"]) == []
    assert lint_source("src/repro/sim/other.py", text, ["D001"]) != []


# --------------------------------------------------------------------------- #
# D002: order-unstable iteration
# --------------------------------------------------------------------------- #
_D002_ACCUMULATE = """
def drain(pending: set, totals):
    for key in {pending}:
        totals[key] = totals.get(key, 0.0) + 1.0
"""


def test_d002_flags_set_iteration_feeding_float_accumulation():
    text = _D002_ACCUMULATE.format(pending="pending")
    findings = lint_source("src/repro/sim/x.py", text, ["D002"])
    assert [f.rule for f in findings] == ["D002"]
    assert "sorted()" in findings[0].message


def test_d002_accepts_sorted_iteration():
    text = _D002_ACCUMULATE.format(pending="sorted(pending)")
    assert lint_source("src/repro/sim/x.py", text, ["D002"]) == []


def test_d002_ignores_order_insensitive_bodies():
    text = "def check(pending: set):\n    for key in pending:\n        print(key)\n"
    assert lint_source("src/repro/sim/x.py", text, ["D002"]) == []


def test_d002_only_applies_to_simulation_paths():
    text = _D002_ACCUMULATE.format(pending="pending")
    assert lint_source("src/repro/analysis/x.py", text, ["D002"]) == []


def test_d002_sees_through_set_typed_self_attributes():
    text = (
        "from typing import Set\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self._dirty: Set[int] = set()\n"
        "    def settle(self, totals):\n"
        "        for key in self._dirty:\n"
        "            totals[key] += 1.0\n"
    )
    findings = lint_source("src/repro/sim/x.py", text, ["D002"])
    assert [f.rule for f in findings] == ["D002"]


def test_d002_tracks_set_operations_and_copies():
    text = (
        "def settle(a: set, b: set, total):\n"
        "    hot = (a & b).copy()\n"
        "    for key in hot:\n"
        "        total += key\n"
        "    return total\n"
    )
    findings = lint_source("src/repro/sim/x.py", text, ["D002"])
    assert [f.rule for f in findings] == ["D002"]


def test_d002_flags_event_scheduling_sinks():
    text = (
        "from heapq import heappush\n"
        "def enqueue(ready: set, heap):\n"
        "    for item in ready:\n"
        "        heappush(heap, item)\n"
    )
    findings = lint_source("src/repro/sim/x.py", text, ["D002"])
    assert [f.rule for f in findings] == ["D002"]
    assert "heappush" in findings[0].message


def test_d002_list_over_a_set_preserves_the_instability():
    text = (
        "def settle(pending: set, total):\n"
        "    for key in list(pending):\n"
        "        total += key\n"
        "    return total\n"
    )
    assert [
        f.rule for f in lint_source("src/repro/sim/x.py", text, ["D002"])
    ] == ["D002"]


# --------------------------------------------------------------------------- #
# D003: parity pairs
# --------------------------------------------------------------------------- #
_PAIR_SOURCE = """
def fast(x):
    \"\"\"Tuned implementation.\"\"\"
    return x * 2.0 + 1.0


def slow(x):
    \"\"\"Reference oracle.\"\"\"
    total = x * 2.0
    return total + 1.0
"""


def _pair_for(text: str) -> ParityPair:
    return ParityPair(
        name="demo",
        primary="src/repro/sim/demo.py::fast",
        oracle="src/repro/sim/demo.py::slow",
        primary_fingerprint=fingerprint_source(text, "fast"),
        oracle_fingerprint=fingerprint_source(text, "slow"),
    )


def _run_for(text: str) -> LintRun:
    return LintRun(files=[SourceFile("src/repro/sim/demo.py", text)])


def test_d003_blessed_pair_is_clean():
    assert check_pairs([_pair_for(_PAIR_SOURCE)], _run_for(_PAIR_SOURCE)) == []


def test_d003_docstring_and_comment_edits_never_fire():
    edited = _PAIR_SOURCE.replace(
        "Tuned implementation.", "Tuned implementation (rewritten prose)."
    ).replace("return x * 2.0 + 1.0", "return x * 2.0 + 1.0  # same math")
    assert check_pairs([_pair_for(_PAIR_SOURCE)], _run_for(edited)) == []


def test_d003_one_sided_edit_fails_and_names_the_partner():
    edited = _PAIR_SOURCE.replace("return x * 2.0 + 1.0", "return x * 2.0 + 1.5")
    findings = check_pairs([_pair_for(_PAIR_SOURCE)], _run_for(edited))
    assert [f.rule for f in findings] == ["D003"]
    message = findings[0].message
    assert "'fast' changed" in message
    assert "oracle side is untouched" in message
    assert "parity_pairs.py" in message


def test_d003_both_sides_changed_asks_for_a_re_bless():
    edited = _PAIR_SOURCE.replace("2.0", "3.0")
    findings = check_pairs([_pair_for(_PAIR_SOURCE)], _run_for(edited))
    assert len(findings) == 2
    assert all("both sides changed" in f.message for f in findings)


def test_d003_missing_function_is_reported():
    edited = _PAIR_SOURCE.replace("def slow", "def renamed")
    findings = check_pairs([_pair_for(_PAIR_SOURCE)], _run_for(edited))
    assert any("not found" in f.message for f in findings)


def test_d003_real_declarations_match_the_live_tree():
    """Every blessed fingerprint in parity_pairs.py matches the checkout."""
    rels = sorted(
        {split_reference(ref)[0] for pair in PARITY_PAIRS for ref in
         (pair.primary, pair.oracle)}
    )
    files = [SourceFile(rel, (REPO_ROOT / rel).read_text()) for rel in rels]
    run = LintRun(files=files, repo_root=REPO_ROOT)
    assert check_pairs(PARITY_PAIRS, run) == []


def test_d003_editing_one_side_of_a_real_pair_fails_lint():
    """The acceptance demonstration: touch the incremental fluid allocator
    without its reference oracle and D003 fires on the real declarations."""
    pair = next(p for p in PARITY_PAIRS if p.name == "fluid-progressive-filling")
    rel, qualname = split_reference(pair.primary)
    source = SourceFile(rel, (REPO_ROOT / rel).read_text())
    node = source.tree
    for part in qualname.split("."):
        node = next(
            child for child in node.body
            if isinstance(child, (ast.ClassDef, ast.FunctionDef))
            and child.name == part
        )
    node.body.append(ast.parse("_drift_marker = 1").body[0])
    run = LintRun(files=[source], repo_root=REPO_ROOT)
    findings = check_pairs([pair], run)
    assert [f.rule for f in findings] == ["D003"]
    assert "oracle side is untouched" in findings[0].message


# --------------------------------------------------------------------------- #
# U101: unit suffix discipline
# --------------------------------------------------------------------------- #
def test_u101_flags_cross_dimension_addition():
    text = "def f(size_bits, gap_seconds):\n    return size_bits + gap_seconds\n"
    findings = lint_source("src/repro/sim/x.py", text, ["U101"])
    assert [f.rule for f in findings] == ["U101"]
    assert "mixes unit dimensions" in findings[0].message


def test_u101_bits_and_bytes_are_distinct_dimensions():
    text = "def f(a_bits, b_bytes):\n    return a_bits - b_bytes\n"
    assert lint_source("src/repro/sim/x.py", text, ["U101"]) != []


def test_u101_same_dimension_arithmetic_is_clean():
    text = "def f(a_bits, b_bits, c_seconds):\n    return a_bits + b_bits\n"
    assert lint_source("src/repro/sim/x.py", text, ["U101"]) == []


def test_u101_flags_bare_scale_factors():
    text = "def f(rate_bps):\n    return rate_bps / 1e9\n"
    findings = lint_source("src/repro/experiments/x.py", text, ["U101"])
    assert [f.rule for f in findings] == ["U101"]
    assert "bare scale factor" in findings[0].message


def test_u101_exempts_the_units_module_itself():
    text = "def f(rate_bps):\n    return rate_bps / 1e9\n"
    assert lint_source("src/repro/sim/units.py", text, ["U101"]) == []


def test_u101_augmented_assignment_is_checked():
    text = "def f(total_bits, delta_seconds):\n    total_bits += delta_seconds\n"
    assert lint_source("src/repro/sim/x.py", text, ["U101"]) != []


# --------------------------------------------------------------------------- #
# R201: registry / docs completeness (the pure checkers)
# --------------------------------------------------------------------------- #
def test_r201_missing_scenario_row_is_reported():
    findings = check_scenario_docs(
        ["documented", "ghost"], "| `documented` | ... |", "docs/scenarios.md"
    )
    assert ["ghost" in f.message for f in findings] == [True]


def test_r201_family_without_moves_needs_an_exemption():
    findings = check_family_moves(
        {"grid": ["add-lane"], "mesh3d": []}, {}, "registry.py"
    )
    assert len(findings) == 1 and "mesh3d" in findings[0].message
    assert check_family_moves(
        {"mesh3d": []}, {"mesh3d": "reviewed"}, "registry.py"
    ) == []


def test_r201_stale_exemptions_are_themselves_findings():
    unknown = check_family_moves({}, {"gone": "stale"}, "registry.py")
    assert "unknown topology family" in unknown[0].message
    outgrown = check_family_moves(
        {"torus": ["wrap"]}, {"torus": "reviewed"}, "registry.py"
    )
    assert "now registers moves" in outgrown[0].message


def test_r201_tolerance_tables_compared_in_both_directions():
    tables = {"TOLERANCES": {"a", "stale"}, "TOPOLOGY_TOLERANCES": set(),
              "LOOP_TOLERANCES": set(), "TOPOLOGY_LOOP_TOLERANCES": set()}
    findings = check_tolerance_tables(
        {"a", "b"}, set(), set(), tables, "tests/test_backend_fidelity.py"
    )
    messages = "\n".join(f.message for f in findings)
    assert "'b' declares no fluid-vs-packet tolerance" in messages
    assert "stale" in messages


def test_r201_declared_table_keys_reads_module_level_dict_literals():
    text = "TOLERANCES = {'a': 1, 'b': 2}\nOTHER = [1]\nX = {'c': 3}\n"
    tables = declared_table_keys(text)
    assert tables["TOLERANCES"] == {"a", "b"}
    assert tables["X"] == {"c"}
    assert "OTHER" not in tables


# --------------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------------- #
def test_baseline_round_trip_and_application(tmp_path):
    text = "import random\nx = random.random()\ny = random.random()\n"
    findings = lint_source("src/repro/sim/x.py", text, ["D001"])
    assert len(findings) == 2

    baseline_path = tmp_path / "lint-baseline.txt"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    new, stale = apply_baseline(findings, baseline)
    assert new == [] and stale == []


def test_baseline_counts_excuse_exactly_that_many_findings():
    text = "import random\nx = random.random()\nx = random.random()\n"
    findings = lint_source("src/repro/sim/x.py", text, ["D001"])
    assert len(findings) == 2
    assert finding_key(findings[0]) == finding_key(findings[1])
    baseline = Counter({finding_key(findings[0]): 1})
    new, stale = apply_baseline(findings, baseline)
    assert len(new) == 1 and stale == []


def test_baseline_survives_line_number_drift_but_not_edits():
    before = "import random\nx = random.random()\n"
    after = "import random\n# a new comment shifts the line\nx = random.random()\n"
    edited = "import random\nx = random.random()  # changed line\n"
    key = finding_key(lint_source("src/repro/sim/x.py", before, ["D001"])[0])
    baseline = Counter({key: 1})
    new, stale = apply_baseline(
        lint_source("src/repro/sim/x.py", after, ["D001"]), baseline
    )
    assert new == [] and stale == []
    new, stale = apply_baseline(
        lint_source("src/repro/sim/x.py", edited, ["D001"]), baseline
    )
    assert len(new) == 1 and stale == [key]


def test_baseline_rejects_malformed_lines(tmp_path):
    path = tmp_path / "lint-baseline.txt"
    path.write_text("D001 too few\n")
    with pytest.raises(ValueError, match="expected 'RULE PATH HASH COUNT'"):
        load_baseline(path)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def _write_project(tmp_path: Path, body: str) -> Path:
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    target = pkg / "engine.py"
    target.write_text(body)
    return target


def test_cli_exit_codes_and_baseline_workflow(tmp_path):
    from repro.lint.cli import main

    target = _write_project(tmp_path, "import random\nx = random.random()\n")
    argv = [str(target), "--rules", "D001",
            "--baseline", str(tmp_path / "lint-baseline.txt")]
    assert main(argv) == 1
    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv) == 0
    # Fixing the violation leaves a stale entry: plain run passes,
    # --strict fails until the baseline shrinks.
    target.write_text("x = 4\n")
    assert main(argv) == 0
    assert main(argv + ["--strict"]) == 1


def test_cli_list_rules_and_unknown_rule(capsys):
    from repro.lint.cli import main

    assert main(["--list-rules"]) == 0
    assert "D003" in capsys.readouterr().out
    assert main(["--rules", "Z999", "src"]) == 2


def test_main_cli_forwards_the_lint_subcommand(capsys):
    from repro.cli import main as fabric_main

    assert fabric_main(["lint", "--list-rules"]) == 0
    assert "parity-pair-drift" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# The live tree
# --------------------------------------------------------------------------- #
def test_live_tree_is_lint_clean_modulo_baseline():
    """src/repro passes every rule; the checked-in baseline may only excuse
    grandfathered findings that still exist (no stale entries)."""
    files = collect_files([REPO_ROOT / "src" / "repro"], REPO_ROOT)
    run = run_rules(files, resolve_rules(), repo_root=REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / "lint-baseline.txt")
    new, stale = apply_baseline(run.findings, baseline)
    assert new == [], "\n" + "\n".join(f.render() for f in new)
    assert stale == [], f"stale baseline entries: {stale}"


def test_find_repo_root_walks_up_to_pyproject():
    assert find_repo_root(Path(__file__)) == REPO_ROOT


def test_scenario_rows_are_bitwise_stable_across_hash_seeds():
    """PYTHONHASHSEED must not leak into result rows: the D002 fixes in the
    fluid allocator iterate string-keyed sets in sorted order, so two
    processes with different hash seeds produce byte-identical JSON."""
    def row(seed: str) -> dict:
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", "permutation",
             "--set", "mean_flow_mb=0.05"],
            capture_output=True, text=True, check=True, env=env,
        ).stdout
        data = json.loads(out)
        data.pop("timing", None)
        return data

    assert row("1") == row("271828")
