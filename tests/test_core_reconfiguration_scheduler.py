"""Tests for break-even analysis, reconfiguration plans and the flow scheduler."""

import math

import pytest

from repro.core.plp import PLPCommandType, PLPExecutor, ReconfigurationDelays
from repro.core.reconfiguration import (
    GridToTorusPlan,
    ReconfigurationPlan,
    ReconfigurationPlanner,
    break_even_flow_size,
    reconfiguration_gain,
    worthwhile,
)
from repro.core.scheduler import FlowScheduler
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.topology import TopologyBuilder
from repro.sim.flow import Flow
from repro.sim.units import GBPS, megabytes


# --------------------------------------------------------------------------- #
# Break-even analysis
# --------------------------------------------------------------------------- #
def test_break_even_closed_form():
    # delay 1 ms, 50 -> 100 Gb/s: S = 1e-3 * 50e9 * 100e9 / 50e9 = 1e8 bits.
    threshold = break_even_flow_size(50e9, 100e9, 1e-3)
    assert threshold == pytest.approx(1e8)
    # At exactly the threshold the gain is zero.
    assert reconfiguration_gain(threshold, 50e9, 100e9, 1e-3) == pytest.approx(0.0, abs=1e-12)


def test_break_even_no_improvement_is_infinite():
    assert break_even_flow_size(100e9, 100e9, 1e-3) == math.inf
    assert break_even_flow_size(100e9, 50e9, 1e-3) == math.inf


def test_break_even_free_reconfiguration_is_zero():
    assert break_even_flow_size(50e9, 100e9, 0.0) == 0.0


def test_break_even_validation():
    with pytest.raises(ValueError):
        break_even_flow_size(0, 1, 1)
    with pytest.raises(ValueError):
        break_even_flow_size(1, 1, -1)


def test_gain_sign_matches_threshold():
    threshold = break_even_flow_size(50e9, 100e9, 1e-4)
    assert reconfiguration_gain(threshold * 2, 50e9, 100e9, 1e-4) > 0
    assert reconfiguration_gain(threshold / 2, 50e9, 100e9, 1e-4) < 0


def test_gain_monotone_in_flow_size():
    gains = [
        reconfiguration_gain(size, 50e9, 100e9, 1e-4)
        for size in (1e6, 1e7, 1e8, 1e9)
    ]
    assert all(b > a for a, b in zip(gains, gains[1:]))


def test_worthwhile_margin():
    threshold = break_even_flow_size(50e9, 100e9, 1e-3)
    assert worthwhile(threshold * 2, 50e9, 100e9, 1e-3)
    assert not worthwhile(threshold * 1.1, 50e9, 100e9, 1e-3, margin=1.5)
    with pytest.raises(ValueError):
        worthwhile(1, 1e9, 2e9, 1, margin=0.5)


# --------------------------------------------------------------------------- #
# Grid-to-torus plan
# --------------------------------------------------------------------------- #
def test_grid_to_torus_plan_structure():
    topology = TopologyBuilder(lanes_per_link=2).grid(4, 4)
    plan = GridToTorusPlan(4, 4).build(topology)
    splits = [c for c in plan.commands if c.type is PLPCommandType.SPLIT_LINK]
    creates = [c for c in plan.commands if c.type is PLPCommandType.CREATE_LINK]
    assert len(splits) == 24
    assert len(creates) == 8
    assert plan.expected_duration > 0
    assert "wrap-around" in plan.rationale


def test_grid_to_torus_plan_executes_into_torus():
    topology = TopologyBuilder(lanes_per_link=2).grid(4, 4)
    fabric = Fabric(topology, FabricConfig())
    executor = PLPExecutor(fabric)
    plan = GridToTorusPlan(4, 4).build(topology)
    lanes_before = topology.total_lanes()
    results = executor.execute_batch(plan.commands)
    assert all(result.success for result in results)
    reference_torus = TopologyBuilder(lanes_per_link=1).torus(4, 4)
    assert len(topology.links()) == len(reference_torus.links())
    assert topology.diameter() == reference_torus.diameter()
    # Lane budget: active lanes in links plus the leftover pool equals the start.
    assert topology.total_lanes() + executor.free_lane_count == lanes_before


def test_grid_to_torus_plan_rejects_thin_links():
    topology = TopologyBuilder(lanes_per_link=1).grid(3, 3)
    with pytest.raises(ValueError):
        GridToTorusPlan(3, 3).build(topology)


def test_grid_to_torus_plan_rejects_wrong_topology():
    topology = TopologyBuilder(lanes_per_link=2).ring(9)
    with pytest.raises(ValueError):
        GridToTorusPlan(3, 3).build(topology)


def test_grid_to_torus_plan_infeasible_lane_budget():
    # Harvesting 1 lane per link but asking 10 lanes per wraparound cannot fit.
    topology = TopologyBuilder(lanes_per_link=2).grid(3, 3)
    with pytest.raises(ValueError):
        GridToTorusPlan(3, 3, lanes_per_wraparound=10).build(topology)


def test_plan_duration_uses_parallel_application():
    topology = TopologyBuilder(lanes_per_link=2).grid(3, 3)
    delays = ReconfigurationDelays()
    plan = GridToTorusPlan(3, 3).build(topology, delays)
    assert plan.duration_with(delays) == pytest.approx(delays.link_create)
    empty = ReconfigurationPlan(name="noop")
    assert empty.duration_with(delays) == 0.0


# --------------------------------------------------------------------------- #
# Planner go/no-go
# --------------------------------------------------------------------------- #
def _simple_plan():
    topology = TopologyBuilder(lanes_per_link=2).grid(3, 3)
    return GridToTorusPlan(3, 3).build(topology)


def test_planner_accepts_large_demand():
    planner = ReconfigurationPlanner(hysteresis=1.0)
    plan = _simple_plan()
    assert planner.should_apply(plan, demand_bits=1e12, current_rate_bps=50e9,
                                reconfigured_rate_bps=100e9)


def test_planner_rejects_small_demand():
    planner = ReconfigurationPlanner(hysteresis=1.0)
    plan = _simple_plan()
    assert not planner.should_apply(plan, demand_bits=1e3, current_rate_bps=50e9,
                                    reconfigured_rate_bps=100e9)


def test_planner_hysteresis_raises_the_bar():
    plan = _simple_plan()
    demand = break_even_flow_size(50e9, 100e9, plan.duration_with(ReconfigurationDelays())) * 1.05
    relaxed = ReconfigurationPlanner(hysteresis=1.0)
    strict = ReconfigurationPlanner(hysteresis=5.0)
    assert relaxed.should_apply(plan, demand, 50e9, 100e9)
    assert not strict.should_apply(plan, demand, 50e9, 100e9)


def test_planner_min_interval_blocks_flapping():
    planner = ReconfigurationPlanner(hysteresis=1.0, min_interval=1.0)
    plan = _simple_plan()
    assert planner.should_apply(plan, 1e12, 50e9, 100e9, now=0.0)
    planner.commit(0.0)
    assert not planner.should_apply(plan, 1e12, 50e9, 100e9, now=0.5)
    assert planner.should_apply(plan, 1e12, 50e9, 100e9, now=2.0)
    assert len(planner.decisions) == 3


def test_planner_validation():
    with pytest.raises(ValueError):
        ReconfigurationPlanner(hysteresis=0.5)
    with pytest.raises(ValueError):
        ReconfigurationPlanner(min_interval=-1)


# --------------------------------------------------------------------------- #
# Flow scheduler
# --------------------------------------------------------------------------- #
@pytest.fixture
def fabric():
    return Fabric(TopologyBuilder(lanes_per_link=2).grid(3, 3), FabricConfig())


def test_scheduler_routes_on_cheapest_path(fabric):
    scheduler = FlowScheduler(fabric)
    flow = Flow("n0x0", "n2x2", megabytes(1))
    decision = scheduler.admit(flow)
    assert decision.path[0] == "n0x0" and decision.path[-1] == "n2x2"
    assert len(decision.directed_keys) == len(decision.path) - 1
    assert decision.estimated_rate_bps > 0
    assert decision.estimated_fct > 0
    assert not decision.used_bypass


def test_scheduler_avoids_loaded_path(fabric):
    scheduler = FlowScheduler(fabric, candidate_paths=4)
    # Saturate the straight row path.
    scheduler.record_admission(["n0x0", "n0x1", "n0x2"], 60 * GBPS)
    decision = scheduler.admit(Flow("n0x0", "n0x2", megabytes(1)))
    assert decision.path != ["n0x0", "n0x1", "n0x2"]


def test_scheduler_prefers_established_bypass(fabric):
    fabric.bypasses.establish("n0x0", "n2x2", ["n0x1"], 100 * GBPS, now=0.0)
    scheduler = FlowScheduler(fabric)
    decision = scheduler.admit(Flow("n0x0", "n2x2", megabytes(1)))
    assert decision.used_bypass
    assert decision.path == ["n0x0", "n0x1", "n2x2"]


def test_scheduler_flags_reconfiguration_worthy_flows(fabric):
    scheduler = FlowScheduler(fabric, reconfiguration_delay=1e-5, reconfiguration_speedup=2.0)
    tiny = scheduler.admit(Flow("n0x0", "n2x2", 1_000))
    huge = scheduler.admit(Flow("n0x0", "n2x2", megabytes(500)))
    assert not tiny.reconfiguration_worthy
    assert huge.reconfiguration_worthy


def test_scheduler_load_accounting_round_trip(fabric):
    scheduler = FlowScheduler(fabric)
    path = ["n0x0", "n0x1", "n0x2"]
    scheduler.record_admission(path, 10 * GBPS)
    assert scheduler.admitted_load_bps[("n0x0", "n0x1")] == pytest.approx(10 * GBPS)
    scheduler.record_completion(path, 10 * GBPS)
    assert scheduler.admitted_load_bps[("n0x0", "n0x1")] == 0.0


def test_scheduler_validation(fabric):
    with pytest.raises(ValueError):
        FlowScheduler(fabric, candidate_paths=0)
    with pytest.raises(ValueError):
        FlowScheduler(fabric, reconfiguration_speedup=1.0)
