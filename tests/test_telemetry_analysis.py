"""Tests for telemetry, reporting and the analytical models."""

import pytest

from repro.analysis.breakeven import break_even_curve, reconfiguration_crossover_table
from repro.analysis.latency import LatencyModel, hop_latency_table, media_vs_switching_series
from repro.analysis.power import lane_power_sweep, rack_power_estimate
from repro.analysis.validation import (
    validate_against_analytical,
    validation_summary,
)
from repro.experiments.harness import build_grid_fabric
from repro.sim.flow import Flow, FlowSet
from repro.telemetry.collector import TelemetryCollector, TimeSeries
from repro.telemetry.metrics import (
    describe,
    jain_fairness_index,
    percentile,
    straggler_ratio,
    throughput_bps,
)
from repro.telemetry.report import Report, ReportTable, format_series, format_table


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def test_percentile_and_describe():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 50) == pytest.approx(2.5)
    assert percentile([], 50) is None
    with pytest.raises(ValueError):
        percentile(values, 150)
    summary = describe(values)
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(2.5)
    assert describe([])["mean"] is None


def test_throughput_and_fairness():
    assert throughput_bps(100.0, 2.0) == 50.0
    with pytest.raises(ValueError):
        throughput_bps(100.0, 0.0)
    assert jain_fairness_index([1, 1, 1, 1]) == pytest.approx(1.0)
    assert jain_fairness_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_fairness_index([]) == 1.0


def _completed(src, dst, size, start, end):
    flow = Flow(src, dst, size, start_time=start)
    flow.complete(end)
    return flow


def test_straggler_ratio():
    flows = FlowSet([
        _completed("a", "b", 1, 0, 1.0),
        _completed("b", "c", 1, 0, 1.0),
        _completed("c", "d", 1, 0, 3.0),
    ])
    assert straggler_ratio(flows) == pytest.approx(3.0)
    assert straggler_ratio(FlowSet()) is None


# --------------------------------------------------------------------------- #
# Collector
# --------------------------------------------------------------------------- #
def test_time_series_statistics():
    series = TimeSeries("power")
    series.record(0.0, 10.0)
    series.record(1.0, 20.0)
    series.record(3.0, 30.0)
    assert series.last() == 30.0
    assert series.maximum() == 30.0
    assert series.mean() == pytest.approx(20.0)
    # 10 W for 1 s + 20 W for 2 s over 3 s.
    assert series.time_weighted_mean() == pytest.approx(50.0 / 3.0)
    with pytest.raises(ValueError):
        series.record(2.0, 5.0)


def test_collector_series_and_flows():
    collector = TelemetryCollector()
    collector.record("util", 0.0, 0.5)
    collector.record("util", 1.0, 0.7)
    assert collector.series_names() == ["util"]
    flows = FlowSet([_completed("a", "b", 100, 0, 1.0), _completed("a", "c", 100, 0, 2.0)])
    collector.register_flows("adaptive", flows)
    summary = collector.flow_summary("adaptive")
    assert summary["makespan"] == pytest.approx(2.0)
    assert summary["aggregate_throughput_bps"] == pytest.approx(100.0)
    everything = collector.as_dict()
    assert "series:util" in everything and "flows:adaptive" in everything


def test_collector_compare_ratios():
    collector = TelemetryCollector()
    collector.register_flows("a", FlowSet([_completed("a", "b", 1, 0, 1.0)]))
    collector.register_flows("b", FlowSet([_completed("a", "b", 1, 0, 2.0)]))
    comparison = collector.compare("a", "b")
    assert comparison["makespan_ratio"] == pytest.approx(0.5)


def test_collector_sample_callable():
    collector = TelemetryCollector()
    sampler = collector.sample_callable("x", lambda: 42.0)
    sampler(1.0)
    assert collector.series("x").last() == 42.0


# --------------------------------------------------------------------------- #
# Report formatting
# --------------------------------------------------------------------------- #
def test_format_table_alignment_and_values():
    text = format_table(["a", "b"], [[1, None], [2.5e-7, True]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert "-" in lines[2]
    assert "yes" in text and "2.5" in text


def test_format_series():
    text = format_series("curve", [[1, 2], [3, 4]], x_label="x", y_label="y")
    assert "curve" in text and "x" in text


def test_report_table_row_validation():
    table = ReportTable("t", headers=["a", "b"])
    table.add_row(1, 2)
    with pytest.raises(ValueError):
        table.add_row(1)
    assert "t" in table.render()


def test_report_render():
    report = Report("exp")
    report.set("metric", 1.0)
    table = report.table("rows", ["x"])
    table.add_row(5)
    text = report.render()
    assert "== exp ==" in text and "metric" in text and "rows" in text


# --------------------------------------------------------------------------- #
# Latency model (Figure 1)
# --------------------------------------------------------------------------- #
def test_switching_dominates_media_at_rack_scale():
    model = LatencyModel()
    for distance in (4, 10, 20, 40):
        ratio = model.switching_dominance_ratio(distance, 1500)
        assert ratio > 10.0


def test_media_latency_linear_in_distance():
    model = LatencyModel()
    assert model.media_latency(20) == pytest.approx(2 * model.media_latency(10))


def test_hops_for_distance():
    model = LatencyModel(hop_spacing_meters=2.0)
    assert model.hops_for_distance(2.0) == 0
    assert model.hops_for_distance(4.0) == 1
    assert model.hops_for_distance(40.0) == 19
    with pytest.raises(ValueError):
        model.hops_for_distance(-1)


def test_end_to_end_breakdown_sums():
    model = LatencyModel()
    breakdown = model.end_to_end(10.0, 1500)
    assert breakdown["total"] == pytest.approx(
        breakdown["serialization"] + breakdown["propagation"]
        + breakdown["switching"] + breakdown["phy"]
    )
    snf = model.end_to_end(10.0, 1500, store_and_forward=True)
    assert snf["switching"] > breakdown["switching"]


def test_media_vs_switching_series_rows():
    rows = media_vs_switching_series([2, 10, 40])
    assert len(rows) == 3
    assert rows[0]["hops"] == 0
    assert rows[2]["switching_latency"] > rows[1]["switching_latency"]
    assert rows[2]["ratio"] > 1


def test_hop_latency_table():
    rows = hop_latency_table([0, 1, 5])
    assert len(rows) == 3
    assert rows[2]["switching"] > rows[1]["switching"]
    with pytest.raises(ValueError):
        hop_latency_table([-1])


def test_latency_model_validation():
    with pytest.raises(ValueError):
        LatencyModel(hop_spacing_meters=0)
    with pytest.raises(ValueError):
        LatencyModel(link_rate_bps=0)


# --------------------------------------------------------------------------- #
# Break-even and power analysis
# --------------------------------------------------------------------------- #
def test_break_even_curve_monotone_in_delay():
    rows = break_even_curve([1e-6, 1e-5, 1e-4], 50e9, 100e9)
    thresholds = [row["break_even_bits"] for row in rows]
    assert thresholds == sorted(thresholds)
    assert rows[0]["break_even_bytes"] == pytest.approx(thresholds[0] / 8)


def test_crossover_table_verdicts():
    rows = reconfiguration_crossover_table([1e3, 1e9], 50e9, 100e9, 1e-4)
    assert rows[0]["worthwhile"] == 0.0
    assert rows[1]["worthwhile"] == 1.0


def test_rack_power_estimate_scales_with_lanes():
    low = rack_power_estimate(16, 24, 1)
    high = rack_power_estimate(16, 24, 4)
    assert high["total_watts"] > low["total_watts"]
    gated = rack_power_estimate(16, 24, 4, active_lane_fraction=0.25)
    assert gated["total_watts"] < high["total_watts"]
    with pytest.raises(ValueError):
        rack_power_estimate(0, 1, 1)


def test_lane_power_sweep_restores_fabric():
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    rows = lane_power_sweep(fabric, [1.0, 0.5])
    assert rows[1]["total_watts"] < rows[0]["total_watts"]
    # The sweep restores full activation afterwards.
    assert fabric.topology.total_active_lanes() == fabric.topology.total_lanes()
    with pytest.raises(ValueError):
        lane_power_sweep(fabric, [0.0])


# --------------------------------------------------------------------------- #
# Validation (POC substitute, experiment E6)
# --------------------------------------------------------------------------- #
def test_simulation_matches_analytical_model():
    results = validate_against_analytical(chain_lengths=(2, 4), packet_sizes_bytes=(64, 1500))
    assert len(results) == 4
    summary = validation_summary(results)
    assert summary["max_relative_error"] < 1e-6
    for result in results:
        assert result.within(1e-6)
        assert result.simulated_latency > 0


def test_validation_summary_requires_results():
    with pytest.raises(ValueError):
        validation_summary([])
