"""CLI tests and end-to-end integration scenarios."""

import pytest

from repro.cli import build_parser, main
from repro.core.crc import CRCConfig
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.harness import build_grid_fabric
from repro.sim.flow import Flow
from repro.sim.units import megabytes, microseconds
from repro.workloads.base import WorkloadSpec
from repro.workloads.incast import IncastWorkload
from repro.workloads.storage import DisaggregatedStorageWorkload


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_parser_has_all_subcommands():
    parser = build_parser()
    args = parser.parse_args(["figure1"])
    assert args.command == "figure1"
    for command in ("figure2", "mapreduce", "breakeven", "validate",
                    "list-scenarios", "list-controllers", "sweep"):
        assert parser.parse_args([command]).command == command
    assert parser.parse_args(["run", "incast"]).command == "run"


def test_cli_figure1_prints_table(capsys):
    assert main(["figure1", "--max-distance", "10"]) == 0
    output = capsys.readouterr().out
    assert "Figure 1" in output
    assert "switching_latency" in output


def test_cli_breakeven_prints_curve(capsys):
    assert main(["breakeven"]) == 0
    output = capsys.readouterr().out
    assert "break_even_bits" in output


def test_cli_validate_passes_tolerance(capsys):
    assert main(["validate", "--tolerance", "0.01"]) == 0
    output = capsys.readouterr().out
    assert "relative error" in output


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_cli_list_scenarios_enumerates_catalog(capsys):
    from repro.experiments.scenarios import list_scenarios

    assert main(["list-scenarios"]) == 0
    output = capsys.readouterr().out
    scenarios = list_scenarios()
    assert len(scenarios) >= 10
    for scenario in scenarios:
        assert scenario.name in output
    # All seven workload generators are represented in the catalog table.
    for workload in (
        "uniform-random",
        "permutation",
        "hotspot",
        "incast",
        "mapreduce-shuffle",
        "disaggregated-storage",
        "trace-replay",
    ):
        assert workload in output


def test_cli_list_controllers_enumerates_registry(capsys):
    from repro.core.controllers import controller_names

    assert main(["list-controllers"]) == 0
    output = capsys.readouterr().out
    for name in controller_names():
        assert name in output


def test_cli_list_topologies_enumerates_registry(capsys):
    from repro.core.candidates import candidate_moves
    from repro.fabric.topologies import topology_names

    assert main(["list-topologies"]) == 0
    output = capsys.readouterr().out
    for name in topology_names():
        assert name in output
        for move in candidate_moves(name):
            assert move in output
    assert "pods^3 / 4" in output  # the size formula column


def test_cli_run_prints_json_row(capsys):
    import json

    assert main(["run", "permutation", "--set", "rows=2", "--set", "columns=2"]) == 0
    row = json.loads(capsys.readouterr().out)
    assert row["scenario"] == "permutation"
    assert row["params"]["rows"] == 2
    assert row["metrics"]["completion_fraction"] == 1.0


def test_cli_run_unknown_scenario_fails(capsys):
    assert main(["run", "no-such-scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_sweep_parallel_output_matches_serial(tmp_path, capsys):
    from repro.experiments.sweep import load_rows, strip_timing

    serial_path = str(tmp_path / "serial.jsonl")
    parallel_path = str(tmp_path / "parallel.jsonl")
    base = ["sweep", "--scenario", "permutation", "--scenario", "incast",
            "--grid", "rows=2,3", "--grid", "controller=none,crc"]
    assert main(base + ["--workers", "1", "--output", serial_path]) == 0
    assert main(base + ["--workers", "2", "--output", parallel_path]) == 0
    output = capsys.readouterr().out
    assert "Sweep: 8 runs" in output
    serial = [strip_timing(row) for row in load_rows(serial_path)]
    parallel = [strip_timing(row) for row in load_rows(parallel_path)]
    assert len(serial) == 8
    assert serial == parallel


# --------------------------------------------------------------------------- #
# Integration: incast on a star vs a mesh
# --------------------------------------------------------------------------- #
def test_incast_receiver_link_is_the_bottleneck():
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    names = fabric.topology.endpoints()
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(1), seed=4)
    workload = IncastWorkload(spec, receiver="n1x1")
    result = run_experiment(
        ExperimentSpec(fabric=fabric, flows=workload.generate(), label="incast")
    )
    assert result.flows.completion_fraction() == 1.0
    # The receiver can absorb at most its NIC/attached capacity; the makespan
    # cannot beat total_bits / attached_capacity.
    attached = sum(
        fabric.topology.link_between("n1x1", n).capacity_bps
        for n in fabric.topology.neighbors("n1x1")
    )
    lower_bound = result.flows.total_bits() / attached
    assert result.makespan >= lower_bound * 0.99


# --------------------------------------------------------------------------- #
# Integration: storage traffic with a power-capped CRC
# --------------------------------------------------------------------------- #
def test_power_capped_crc_keeps_fabric_under_budget_while_serving_storage():
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    initial_power = fabric.power_report().total_watts
    cap = initial_power * 0.9
    names = fabric.topology.endpoints()
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(1), seed=9)
    workload = DisaggregatedStorageWorkload(spec, num_requests=40, requests_per_second=2e4)
    result = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=workload.generate(),
            label="storage",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    power_cap_watts=cap,
                    enable_bypass=False,
                    enable_adaptive_fec=False,
                    control_period=microseconds(200),
                ),
            },
        )
    )
    assert result.flows.completion_fraction() == 1.0
    # The CRC shed lanes to respect the cap.
    assert fabric.power_report().total_watts <= cap * 1.02
    assert fabric.topology.total_active_lanes() < fabric.topology.total_lanes()
    assert result.makespan is not None


# --------------------------------------------------------------------------- #
# Integration: full adaptive pipeline stays lane-budget clean
# --------------------------------------------------------------------------- #
def test_full_adaptive_run_conserves_lane_budget_and_completes():
    rows = columns = 3
    fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    lanes_before = fabric.topology.total_lanes()
    flows = [
        Flow("n0x0", "n2x2", megabytes(4)),
        Flow("n2x2", "n0x0", megabytes(4)),
        Flow("n0x2", "n2x0", megabytes(4)),
        Flow("n2x0", "n0x2", megabytes(4)),
    ]
    result = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label="adaptive",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_topology_reconfiguration=True,
                    grid_rows=rows,
                    grid_columns=columns,
                    utilisation_threshold=0.4,
                    control_period=microseconds(200),
                    enable_adaptive_fec=True,
                    enable_bypass=True,
                ),
            },
        )
    )
    crc = result.controller_instance.crc
    assert result.flows.completion_fraction() == 1.0
    lanes_after = fabric.topology.total_lanes() + crc.executor.free_lane_count
    assert lanes_after == lanes_before
    assert crc.summary()["commands_executed"] >= 0
    # Routing still works on the post-reconfiguration fabric.
    path = fabric.router.path("n0x0", "n2x2")
    assert path[0] == "n0x0" and path[-1] == "n2x2"
