"""Tests for bypass circuits, statistics streams and power models."""

import pytest

from repro.phy.bypass import BypassCircuit, BypassManager
from repro.phy.link import Link
from repro.phy.power import PowerBudget, PowerModel, PowerReport, fabric_link_power
from repro.phy.stats import EwmaEstimator, LaneStatistics, LinkStatistics


# --------------------------------------------------------------------------- #
# Bypass
# --------------------------------------------------------------------------- #
def test_bypass_circuit_latency_excludes_switching():
    circuit = BypassCircuit(
        src="a", dst="d", through=("b", "c"), capacity_bps=100e9,
        established_at=0.0, passthrough_latency=5e-9, propagation_delay=20e-9,
    )
    assert circuit.one_way_latency == pytest.approx(20e-9 + 2 * 5e-9)
    assert circuit.serialization_delay(100e9) == pytest.approx(1.0)
    assert circuit.transfer_latency(1e9) == pytest.approx(circuit.one_way_latency + 0.01)


def test_bypass_circuit_validation():
    with pytest.raises(ValueError):
        BypassCircuit("a", "a", (), 1.0, 0.0)
    with pytest.raises(ValueError):
        BypassCircuit("a", "b", (), 0.0, 0.0)


def test_bypass_manager_establish_and_release():
    manager = BypassManager(max_circuits=2, setup_time=1e-6)
    circuit = manager.establish("a", "c", ["b"], 100e9, now=0.0)
    assert circuit is not None
    assert circuit.established_at == pytest.approx(1e-6)
    assert manager.circuit_for("a", "c") is circuit
    assert manager.circuit_for("c", "a") is circuit
    assert len(manager) == 1
    manager.release(circuit.bypass_id, now=2.0)
    assert not circuit.active
    assert manager.circuit_for("a", "c") is None


def test_bypass_manager_budget_enforced():
    manager = BypassManager(max_circuits=1)
    assert manager.establish("a", "b", [], 1e9, 0.0) is not None
    assert manager.establish("c", "d", [], 1e9, 0.0) is None
    assert manager.rejected == 1
    assert not manager.has_capacity()


def test_bypass_manager_rejects_duplicate_pair():
    manager = BypassManager()
    assert manager.establish("a", "b", [], 1e9, 0.0) is not None
    assert manager.establish("b", "a", [], 1e9, 0.0) is None


def test_bypass_manager_release_pair():
    manager = BypassManager()
    manager.establish("a", "b", [], 1e9, 0.0)
    assert manager.release_pair("b", "a", 1.0) is True
    assert manager.release_pair("a", "b", 1.0) is False
    with pytest.raises(KeyError):
        manager.release(12345, 0.0)


def test_bypass_manager_validation():
    with pytest.raises(ValueError):
        BypassManager(max_circuits=-1)
    with pytest.raises(ValueError):
        BypassManager(setup_time=-1)


def test_bypass_manager_zero_budget_disables_circuits():
    manager = BypassManager(max_circuits=0)
    assert not manager.has_capacity()
    assert manager.establish("a", "b", [], 1e9, 0.0) is None


# --------------------------------------------------------------------------- #
# EWMA and statistics streams
# --------------------------------------------------------------------------- #
def test_ewma_first_sample_sets_value():
    est = EwmaEstimator(alpha=0.5)
    assert est.value is None
    est.update(10.0)
    assert est.value == 10.0


def test_ewma_smooths_towards_new_samples():
    est = EwmaEstimator(alpha=0.5)
    est.update(0.0)
    est.update(10.0)
    assert est.value == pytest.approx(5.0)
    assert est.minimum == 0.0
    assert est.maximum == 10.0
    assert est.samples == 2


def test_ewma_value_or_default_and_reset():
    est = EwmaEstimator()
    assert est.value_or(7.0) == 7.0
    est.update(1.0)
    est.reset()
    assert est.value is None
    assert est.samples == 0


def test_ewma_alpha_validation():
    with pytest.raises(ValueError):
        EwmaEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        EwmaEstimator(alpha=1.5)


def test_lane_statistics_snapshot():
    stats = LaneStatistics(lane_id=3)
    stats.observe(ber=1e-9, latency=1e-7, effective_bandwidth_bps=20e9)
    snapshot = stats.snapshot()
    assert snapshot["lane_id"] == 3.0
    assert snapshot["ber"] == pytest.approx(1e-9)


def test_link_statistics_drop_rate_and_snapshot():
    stats = LinkStatistics(link_key=("a", "b"))
    stats.observe(latency=1e-6, utilisation=0.5, drops=1, packets=10)
    stats.observe(utilisation=0.7, packets=10)
    assert stats.drop_rate == pytest.approx(1 / 20)
    snapshot = stats.snapshot()
    assert 0.5 < snapshot["utilisation"] <= 0.7
    assert snapshot["latency"] == pytest.approx(1e-6)
    with pytest.raises(ValueError):
        stats.observe(drops=-1)


# --------------------------------------------------------------------------- #
# Power model and budget
# --------------------------------------------------------------------------- #
def test_power_model_switch_power():
    model = PowerModel()
    assert model.switch_power(0) == model.switch_base_watts
    assert model.switch_power(4) == pytest.approx(
        model.switch_base_watts + 4 * model.switch_port_watts
    )
    assert model.switch_power(2, idle_ports=2) == pytest.approx(
        model.switch_base_watts + 2 * model.switch_port_watts + 2 * model.switch_port_idle_watts
    )
    with pytest.raises(ValueError):
        model.switch_power(-1)


def test_power_report_totals():
    report = PowerReport(links_watts=10, switches_watts=20, nics_watts=5, bypass_watts=1)
    assert report.total_watts == 36
    assert report.as_dict()["total_watts"] == 36


def test_power_budget_energy_integration():
    budget = PowerBudget(cap_watts=100)
    budget.record(0.0, 50.0)
    budget.record(10.0, 150.0)
    budget.record(20.0, 150.0)
    # 50 W for 10 s + 150 W for 10 s = 2000 J
    assert budget.energy_joules == pytest.approx(2000.0)
    assert budget.time_over_budget == pytest.approx(10.0)
    assert budget.peak_watts() == 150.0
    assert budget.current_watts == 150.0
    assert budget.over_budget()
    assert budget.headroom_watts() == pytest.approx(-50.0)
    assert budget.mean_watts() == pytest.approx(100.0)


def test_power_budget_ordering_enforced():
    budget = PowerBudget()
    budget.record(1.0, 10.0)
    with pytest.raises(ValueError):
        budget.record(0.5, 10.0)
    with pytest.raises(ValueError):
        budget.record(2.0, -5.0)


def test_power_budget_without_cap():
    budget = PowerBudget()
    budget.record(0.0, 10.0)
    assert budget.headroom_watts() is None
    assert not budget.over_budget()


def test_power_budget_cap_validation():
    with pytest.raises(ValueError):
        PowerBudget(cap_watts=0)


def test_fabric_link_power_sums_links():
    links = [Link("a", "b", num_lanes=2), Link("b", "c", num_lanes=2)]
    assert fabric_link_power(links) == pytest.approx(sum(l.power_watts for l in links))
