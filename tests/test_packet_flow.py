"""Tests for packets, hop records, flows and flow sets."""

import pytest

from repro.sim.flow import Flow, FlowSet, FlowState
from repro.sim.packet import HopRecord, Packet


# --------------------------------------------------------------------------- #
# Packet
# --------------------------------------------------------------------------- #
def test_packet_of_bytes_converts_size():
    packet = Packet.of_bytes("a", "b", 1500)
    assert packet.size_bits == 12000


def test_packet_ids_are_unique():
    first = Packet("a", "b", 100)
    second = Packet("a", "b", 100)
    assert first.packet_id != second.packet_id


def test_packet_latency_requires_delivery():
    packet = Packet("a", "b", 100, created_at=1.0)
    assert packet.latency is None
    packet.mark_delivered(1.5)
    assert packet.latency == pytest.approx(0.5)


def test_packet_drop_bookkeeping():
    packet = Packet("a", "b", 100)
    packet.mark_dropped("buffer overflow")
    assert packet.dropped
    assert packet.drop_reason == "buffer overflow"


def test_packet_delay_breakdown_sums_hops():
    packet = Packet("a", "c", 100)
    packet.record_hop(
        HopRecord(element="a", arrival=0.0, departure=1.0, queueing=0.1, switching=0.2,
                  serialization=0.3, propagation=0.4)
    )
    packet.record_hop(
        HopRecord(element="b", arrival=1.0, departure=2.0, queueing=0.5, switching=0.6,
                  serialization=0.0, propagation=0.7)
    )
    breakdown = packet.delay_breakdown()
    assert breakdown["queueing"] == pytest.approx(0.6)
    assert breakdown["switching"] == pytest.approx(0.8)
    assert breakdown["serialization"] == pytest.approx(0.3)
    assert breakdown["propagation"] == pytest.approx(1.1)
    assert packet.hop_count == 2


def test_hop_record_total():
    record = HopRecord(element="x", arrival=0, departure=0, queueing=1, switching=2,
                       serialization=3, propagation=4)
    assert record.total() == 10


# --------------------------------------------------------------------------- #
# Flow
# --------------------------------------------------------------------------- #
def test_flow_requires_positive_size():
    with pytest.raises(ValueError):
        Flow("a", "b", 0)


def test_flow_rejects_same_endpoints():
    with pytest.raises(ValueError):
        Flow("a", "a", 10)


def test_flow_rejects_negative_start():
    with pytest.raises(ValueError):
        Flow("a", "b", 10, start_time=-1)


def test_flow_lifecycle_and_fct():
    flow = Flow("a", "b", 1000, start_time=1.0)
    assert flow.state is FlowState.PENDING
    flow.activate(1.0)
    assert flow.state is FlowState.ACTIVE
    flow.complete(3.0)
    assert flow.completed
    assert flow.fct == pytest.approx(2.0)
    assert flow.bits_remaining == 0.0


def test_flow_transfer_consumes_bits():
    flow = Flow("a", "b", 1000)
    consumed = flow.transfer(300)
    assert consumed == 300
    assert flow.bits_remaining == 700
    consumed = flow.transfer(10_000)
    assert consumed == 700
    assert flow.bits_remaining == 0


def test_flow_transfer_rejects_negative():
    with pytest.raises(ValueError):
        Flow("a", "b", 10).transfer(-1)


def test_flow_completion_cannot_precede_start():
    flow = Flow("a", "b", 10, start_time=5.0)
    with pytest.raises(ValueError):
        flow.complete(4.0)


def test_flow_cannot_activate_after_completion():
    flow = Flow("a", "b", 10)
    flow.complete(1.0)
    with pytest.raises(ValueError):
        flow.activate(2.0)


def test_flow_deadline_checks():
    flow = Flow("a", "b", 10, start_time=0.0, deadline=1.0)
    assert flow.met_deadline is None
    flow.complete(0.5)
    assert flow.met_deadline is True
    late = Flow("a", "b", 10, deadline=0.1)
    late.complete(1.0)
    assert late.met_deadline is False


def test_flow_ideal_fct_and_slowdown():
    flow = Flow("a", "b", 1000)
    assert flow.ideal_fct(100) == pytest.approx(10.0)
    flow.complete(20.0)
    assert flow.slowdown(100) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        flow.ideal_fct(0)


def test_flow_reject():
    flow = Flow("a", "b", 10)
    flow.reject("no path")
    assert flow.state is FlowState.REJECTED
    assert flow.metadata["reject_reason"] == "no path"


# --------------------------------------------------------------------------- #
# FlowSet
# --------------------------------------------------------------------------- #
def _completed_flow(src, dst, size, start, end):
    flow = Flow(src, dst, size, start_time=start)
    flow.activate(start)
    flow.complete(end)
    return flow


def test_flowset_summary_statistics():
    flows = FlowSet(
        [
            _completed_flow("a", "b", 100, 0.0, 1.0),
            _completed_flow("b", "c", 100, 0.0, 2.0),
            _completed_flow("c", "d", 100, 0.0, 4.0),
        ]
    )
    assert len(flows) == 3
    assert flows.completion_fraction() == 1.0
    assert flows.total_bits() == 300
    assert flows.mean_fct() == pytest.approx(7.0 / 3.0)
    assert flows.max_fct() == pytest.approx(4.0)
    assert flows.makespan() == pytest.approx(4.0)
    assert flows.fct_percentile(50) == pytest.approx(2.0)


def test_flowset_makespan_none_when_incomplete():
    flows = FlowSet([Flow("a", "b", 100)])
    assert flows.makespan() is None
    assert flows.completion_fraction() == 0.0


def test_flowset_empty_statistics():
    flows = FlowSet()
    assert flows.mean_fct() is None
    assert flows.fct_percentile(99) is None
    assert flows.max_fct() is None
    assert flows.summary()["flows"] == 0.0


def test_flowset_add_and_iterate():
    flows = FlowSet()
    flow = Flow("a", "b", 10)
    flows.add(flow)
    flows.extend([Flow("b", "c", 10)])
    assert len(flows) == 2
    assert flows[0] is flow
    assert [f.src for f in flows] == ["a", "b"]
