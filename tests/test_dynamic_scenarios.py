"""Dynamic scenario and comparison-layer tests.

The dynamic scenarios (`hotspot_migration`, `load_shift_uniform_to_permutation`,
`failure_recovery`) are the control loop's user-facing surface: registered
like any other scenario, runnable from the CLI, documented in
docs/scenarios.md, and comparable against the static baselines on identical
flows.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.comparison import COMPARISON_LABELS, adaptive_vs_static
from repro.experiments.scenarios import (
    ScenarioError,
    get_scenario,
    resolve_params,
    run_scenario,
    scenario_names,
)

DYNAMIC_SCENARIOS = (
    "hotspot_migration",
    "load_shift_uniform_to_permutation",
    "failure_recovery",
)

DOCS = Path(__file__).resolve().parent.parent / "docs"


# --------------------------------------------------------------------------- #
# Registration and parameter plumbing
# --------------------------------------------------------------------------- #
def test_dynamic_scenarios_registered_with_loop_controller():
    for name in DYNAMIC_SCENARIOS:
        scenario = get_scenario(name)
        params = scenario.parameters()
        assert params["controller"] == "loop"
    assert get_scenario("failure_recovery").failures is not None


def test_controller_parameter_is_validated():
    scenario = get_scenario("uniform-burst")
    with pytest.raises(ScenarioError, match="controller"):
        resolve_params(scenario, {"controller": "autopilot"})
    # Any registered controller name resolves, not just the adaptive ones.
    for name in ("none", "static", "ecmp", "crc", "loop"):
        assert resolve_params(scenario, {"controller": name})["controller"] == name
    # crc=True is the deprecated legacy spelling of controller="crc".
    with pytest.warns(DeprecationWarning, match="crc=True is deprecated"):
        params = resolve_params(scenario, {"crc": True})
    assert params["controller"] == "crc"
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ScenarioError, match="conflicts"):
            resolve_params(scenario, {"crc": True, "controller": "loop"})
    with pytest.raises(ScenarioError, match="grid"):
        resolve_params(scenario, {"controller": "crc", "topology": "torus"})


def test_controller_does_not_perturb_workload_seed():
    row_none = run_scenario("hotspot_migration", {"controller": "none", "num_flows": 8})
    row_loop = run_scenario("hotspot_migration", {"controller": "loop", "num_flows": 8})
    assert row_none["seed"] == row_loop["seed"]
    assert row_none["metrics"]["num_flows"] == row_loop["metrics"]["num_flows"]
    assert row_none["metrics"]["total_bits"] == row_loop["metrics"]["total_bits"]


# --------------------------------------------------------------------------- #
# End-to-end runs
# --------------------------------------------------------------------------- #
def test_hotspot_migration_reconfigures_and_completes():
    row = run_scenario("hotspot_migration")
    metrics = row["metrics"]
    assert metrics["completion_fraction"] == 1.0
    assert metrics["reconfigurations"] >= 1
    assert metrics["flows_rerouted"] > 0
    # The fabric ends as a torus: wrap-around links were created.
    assert metrics["links"] > 12


def test_load_shift_completes_both_phases():
    row = run_scenario("load_shift_uniform_to_permutation")
    metrics = row["metrics"]
    assert metrics["completion_fraction"] == 1.0
    # Both phases generated flows: the uniform burst plus one per node.
    assert metrics["num_flows"] == 24 + 9


def test_failure_recovery_steers_around_the_outage():
    row = run_scenario("failure_recovery")
    metrics = row["metrics"]
    assert metrics["completion_fraction"] == 1.0
    assert metrics["flows_rerouted"] > 0


def test_failure_events_apply_to_static_runs_too():
    # controller=none still feels the scenario's failure plan: the central
    # link fails mid-run and recovers later, and flows stall in between --
    # a static fabric cannot steer around it, but everything still drains.
    row = run_scenario("failure_recovery", {"controller": "none"})
    assert row["metrics"]["completion_fraction"] == 1.0
    assert row["metrics"]["flows_rerouted"] == 0


# --------------------------------------------------------------------------- #
# Comparison layer
# --------------------------------------------------------------------------- #
def test_adaptive_vs_static_runs_identical_flows():
    rows = adaptive_vs_static("hotspot_migration", {"num_flows": 8})
    assert [row["label"] for row in rows] == list(COMPARISON_LABELS)
    for row in rows:
        assert row["completion_fraction"] == 1.0
    by_label = {row["label"]: row for row in rows}
    assert by_label["static"]["reconfigurations"] == 0
    assert by_label["ecmp"]["reconfigurations"] == 0


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
def test_cli_run_dynamic_scenario(capsys):
    assert main(["run", "hotspot_migration", "--set", "num_flows=8"]) == 0
    row = json.loads(capsys.readouterr().out)
    assert row["scenario"] == "hotspot_migration"
    assert row["params"]["controller"] == "loop"
    assert row["metrics"]["completion_fraction"] == 1.0


def test_cli_compare_dynamic_scenario(capsys):
    assert main(["compare", "hotspot_migration", "--set", "num_flows=8"]) == 0
    out = capsys.readouterr().out
    for label in COMPARISON_LABELS:
        assert label in out
    assert "adaptive / static mean FCT" in out


# --------------------------------------------------------------------------- #
# Docs stay in sync with the registry
# --------------------------------------------------------------------------- #
def test_every_registered_scenario_is_documented():
    catalog = (DOCS / "scenarios.md").read_text()
    for name in scenario_names():
        assert f"`{name}`" in catalog, f"scenario {name!r} missing from docs/scenarios.md"
