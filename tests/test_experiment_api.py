"""Controller registry, the single experiment entrypoint, and the legacy
entrypoint parity contracts.

Covers the acceptance criteria of the API redesign: every registered
controller round-trips through ``run_experiment`` (and through a 2-worker
sweep with bit-identical rows), and each deprecated legacy entrypoint
returns bit-identical metrics to its ``ExperimentSpec`` equivalent.
"""

import json

import pytest

from repro.core.controllers import (
    Controller,
    ControllerError,
    ControllerSummary,
    controller_catalog,
    controller_names,
    create_controller,
    register_controller,
)
from repro.core.control import ControlLoopConfig
from repro.core.crc import ClosedRingControl, CRCConfig
from repro.experiments.api import ExperimentSpec, FabricSpec, run_experiment
from repro.experiments.harness import (
    ExperimentResult,
    build_grid_fabric,
    run_adaptive_experiment,
    run_control_loop_experiment,
    run_fluid_experiment,
)
from repro.experiments.scenarios import resolve_params, get_scenario
from repro.experiments.sweep import run_sweep, strip_timing
from repro.fabric.fabric import Fabric
from repro.sim.flow import Flow, FlowSet, reset_flow_ids
from repro.sim.units import megabytes, microseconds
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload

BUILTIN_CONTROLLERS = ("none", "static", "ecmp", "crc", "loop")


def _hotspot_flows(seed=7, num_flows=12):
    """Deterministic hotspot workload on a fresh 3x3 grid."""
    reset_flow_ids()
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(),
        mean_flow_size_bits=megabytes(1.0),
        seed=seed,
    )
    flows = HotspotWorkload(
        spec,
        num_flows=num_flows,
        hot_fraction=0.6,
        hot_pairs=[("n0x0", "n2x2"), ("n0x2", "n2x0")],
    ).generate()
    return fabric, flows


def _metric_fingerprint(metrics):
    """Byte-stable form of a metrics dict for bit-identity assertions."""
    return json.dumps(metrics, sort_keys=True)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_builtin_controllers_are_registered_in_order():
    assert tuple(controller_names()) == BUILTIN_CONTROLLERS
    catalog = {row["name"]: row["description"] for row in controller_catalog()}
    assert set(catalog) == set(BUILTIN_CONTROLLERS)
    assert all(description for description in catalog.values())


def test_create_unknown_controller_raises_with_known_names():
    with pytest.raises(ControllerError, match="unknown controller"):
        create_controller("autopilot")
    with pytest.raises(ControllerError, match="crc"):
        create_controller("no-such-thing")


def test_register_duplicate_controller_raises():
    with pytest.raises(ControllerError, match="already registered"):
        register_controller("crc")(Controller)


def test_bad_controller_config_raises_controller_error():
    with pytest.raises(ControllerError, match="bad configuration"):
        create_controller("ecmp", {"no_such_knob": 1})
    with pytest.raises(ControllerError, match="not both"):
        create_controller(
            "crc", {"config": CRCConfig(), "utilisation_threshold": 0.5}
        )
    with pytest.raises(ControllerError, match="not both"):
        create_controller(
            "loop", {"config": ControlLoopConfig(), "utilisation_threshold": 0.5}
        )


def test_third_party_controller_reaches_run_experiment_and_scenarios():
    calls = []

    @register_controller("test-observer")
    class ObserverController(Controller):
        """Test-only controller that counts lifecycle steps."""

        name = "test-observer"

        def prepare(self, fabric):
            super().prepare(fabric)
            calls.append("prepare")

        def attach(self, simulator):
            super().attach(simulator)
            calls.append("attach")

        def summary(self):
            return ControllerSummary(name=self.name, data={"steps": float(len(calls))})

    try:
        fabric, flows = _hotspot_flows()
        record = run_experiment(
            ExperimentSpec(fabric=fabric, flows=flows, controller="test-observer")
        )
        assert calls == ["prepare", "attach"]
        assert record.metrics["completion_fraction"] == 1.0
        assert record.controller_summary.data["steps"] == 2.0
        # The scenario layer sees it too: any registered name validates.
        params = resolve_params(
            get_scenario("uniform-burst"), {"controller": "test-observer"}
        )
        assert params["controller"] == "test-observer"
    finally:
        from repro.core import controllers as controllers_module

        controllers_module._REGISTRY.pop("test-observer", None)


# --------------------------------------------------------------------------- #
# Round-trips through run_experiment
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("controller", BUILTIN_CONTROLLERS)
def test_every_controller_round_trips_through_run_experiment(controller):
    fabric, flows = _hotspot_flows()
    config = {"grid_rows": 3, "grid_columns": 3} if controller == "loop" else {}
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=f"round-trip-{controller}",
            controller=controller,
            controller_config=config,
        )
    )
    assert record.controller == controller
    assert record.controller_summary.name == controller
    assert record.metrics["completion_fraction"] == 1.0
    assert record.makespan is not None and record.makespan > 0
    assert record.power_watts > 0
    # The serialisable part is genuinely JSON-serialisable.
    as_dict = record.to_dict()
    assert json.loads(json.dumps(as_dict)) == as_dict
    assert as_dict["provenance"]["controller"] == controller


def test_fabric_spec_builds_and_serialises():
    spec = FabricSpec(topology="torus", rows=3, columns=3, lanes_per_link=1)
    fabric = spec.build()
    assert isinstance(fabric, Fabric)
    assert len(fabric.topology.links()) == 18
    assert json.loads(json.dumps(spec.to_dict()))["topology"] == "torus"
    reset_flow_ids()
    record = run_experiment(
        ExperimentSpec(fabric=spec, flows=[Flow("n0x0", "n2x2", megabytes(1))])
    )
    assert record.metrics["completion_fraction"] == 1.0
    assert record.provenance["fabric"]["rows"] == 3


def test_run_experiment_exposes_runtime_handles():
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            controller="loop",
            controller_config={"grid_rows": 3, "grid_columns": 3},
        )
    )
    assert record.fabric is fabric
    assert isinstance(record.flows, FlowSet)
    loop = record.controller_instance.loop
    assert loop is not None and len(loop.ticks) >= 1
    # The per-tick telemetry handle is the loop's collector.
    assert record.telemetry is loop.telemetry
    assert len(record.telemetry.series("max_utilisation").samples) == len(loop.ticks)


def test_controllers_round_trip_through_two_worker_sweep_bit_identically():
    grid = {"controller": list(BUILTIN_CONTROLLERS), "num_flows": [12]}
    serial = run_sweep(scenarios=["uniform-burst"], grid=grid, workers=1)
    parallel = run_sweep(scenarios=["uniform-burst"], grid=grid, workers=2)
    assert [row["params"]["controller"] for row in serial] == list(BUILTIN_CONTROLLERS)
    stripped = lambda rows: [json.dumps(strip_timing(r), sort_keys=True) for r in rows]
    assert stripped(serial) == stripped(parallel)
    # Fabric-side controller choice never perturbs the workload seed.
    assert len({row["seed"] for row in serial}) == 1
    assert len({row["metrics"]["total_bits"] for row in serial}) == 1


# --------------------------------------------------------------------------- #
# Legacy entrypoint parity (deprecated shims, one release)
# --------------------------------------------------------------------------- #
def _experiment_metrics(record):
    return dict(record.metrics), dict(record.controller_summary.data)


def _legacy_metrics(result: ExperimentResult):
    return (
        {
            "makespan": result.makespan,
            "mean_fct": result.mean_fct,
            "p99_fct": result.p99_fct,
            "straggler": result.straggler,
            "completion_fraction": result.flows.completion_fraction(),
            "power_watts": result.power_watts,
        },
        dict(result.controller_summary),
    )


def _assert_parity(legacy: ExperimentResult, record):
    legacy_metrics, legacy_summary = _legacy_metrics(legacy)
    assert legacy_metrics == {
        "makespan": record.makespan,
        "mean_fct": record.mean_fct,
        "p99_fct": record.p99_fct,
        "straggler": record.straggler,
        "completion_fraction": record.metrics["completion_fraction"],
        "power_watts": record.power_watts,
    }
    assert _metric_fingerprint(legacy_summary) == _metric_fingerprint(
        dict(record.controller_summary.data)
    )


def test_run_fluid_experiment_parity_with_none_controller():
    fabric, flows = _hotspot_flows()
    with pytest.warns(DeprecationWarning, match="run_fluid_experiment"):
        legacy = run_fluid_experiment(fabric, flows, label="parity")
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(fabric=fabric, flows=flows, label="parity", controller="none")
    )
    _assert_parity(legacy, record)


def test_run_fluid_experiment_parity_with_crc_instance():
    def crc_config():
        return CRCConfig(
            enable_topology_reconfiguration=True,
            grid_rows=3,
            grid_columns=3,
            utilisation_threshold=0.5,
        )

    fabric, flows = _hotspot_flows()
    crc = ClosedRingControl(fabric, crc_config())
    with pytest.warns(DeprecationWarning, match="run_fluid_experiment"):
        legacy = run_fluid_experiment(fabric, flows, label="parity", crc=crc)
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label="parity",
            controller="crc",
            controller_config={"config": crc_config()},
        )
    )
    _assert_parity(legacy, record)
    assert record.metrics["reconfigurations"] == len(crc.reconfiguration_times)


def test_run_adaptive_experiment_parity():
    _, flows = _hotspot_flows()
    with pytest.warns(DeprecationWarning, match="run_adaptive_experiment"):
        legacy, crc = run_adaptive_experiment(3, 3, flows)
    assert isinstance(crc, ClosedRingControl)
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label="adaptive",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_topology_reconfiguration=True, grid_rows=3, grid_columns=3
                )
            },
        )
    )
    _assert_parity(legacy, record)


def test_run_control_loop_experiment_parity():
    fabric, flows = _hotspot_flows()
    with pytest.warns(DeprecationWarning, match="run_control_loop_experiment"):
        legacy, loop = run_control_loop_experiment(
            fabric,
            flows,
            loop_config=ControlLoopConfig(interval=microseconds(100.0)),
            grid_rows=3,
            grid_columns=3,
        )
    assert loop.ticks, "the legacy shim must still hand back the bound loop"
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label="adaptive",
            controller="loop",
            controller_config={
                "config": ControlLoopConfig(interval=microseconds(100.0)),
                "grid_rows": 3,
                "grid_columns": 3,
            },
        )
    )
    _assert_parity(legacy, record)
    assert record.metrics["reconfigurations"] == len(loop.reconfiguration_times)


def test_run_static_baseline_parity():
    from repro.baselines.static_fabric import run_static_baseline

    fabric, flows = _hotspot_flows()
    with pytest.warns(DeprecationWarning, match="run_static_baseline"):
        legacy = run_static_baseline(fabric, flows)
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(fabric=fabric, flows=flows, label="static", controller="static")
    )
    _assert_parity(legacy, record)


def test_run_ecmp_baseline_parity():
    from repro.baselines.ecmp import run_ecmp_baseline

    fabric, flows = _hotspot_flows()
    with pytest.warns(DeprecationWarning, match="run_ecmp_baseline"):
        legacy = run_ecmp_baseline(fabric.topology, flows)
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(fabric=fabric, flows=flows, label="ecmp", controller="ecmp")
    )
    _assert_parity(legacy, record)


# --------------------------------------------------------------------------- #
# Deprecations
# --------------------------------------------------------------------------- #
def test_crc_summary_property_is_deprecated_alias():
    result = ExperimentResult(
        label="x", fluid=None, flows=FlowSet([]), controller_summary={"a": 1.0}
    )
    with pytest.warns(DeprecationWarning, match="controller_summary"):
        assert result.crc_summary == {"a": 1.0}
    assert result.controller_summary == {"a": 1.0}


def test_crc_summary_constructor_keyword_and_setter_still_work():
    # The one-release compatibility promise covers writes too: code that
    # built its own ExperimentResult with the old field name keeps working.
    with pytest.warns(DeprecationWarning, match="controller_summary"):
        result = ExperimentResult(
            label="x", fluid=None, flows=FlowSet([]), crc_summary={"a": 1.0}
        )
    assert result.controller_summary == {"a": 1.0}
    with pytest.warns(DeprecationWarning, match="controller_summary"):
        result.crc_summary = {"b": 2.0}
    assert result.controller_summary == {"b": 2.0}


def test_crc_true_scenario_parameter_is_deprecated():
    scenario = get_scenario("uniform-burst")
    with pytest.warns(DeprecationWarning, match="controller='crc'"):
        params = resolve_params(scenario, {"crc": True})
    assert params["controller"] == "crc"
