"""Tests for the fluid (flow-level) simulator."""


import pytest

from repro.sim.flow import Flow
from repro.sim.fluid import FluidFlowSimulator, simulate_static_flows
from repro.sim.trace import TraceRecorder


def make_sim(**kwargs):
    sim = FluidFlowSimulator(**kwargs)
    sim.add_link("ab", 100.0)
    sim.add_link("bc", 100.0)
    return sim


def test_single_flow_uses_full_capacity():
    sim = make_sim()
    flow = Flow("a", "b", 1000.0, start_time=0.0)
    sim.add_flow(flow, ["ab"])
    result = sim.run()
    assert flow.completed
    assert flow.fct == pytest.approx(10.0)
    assert result.end_time == pytest.approx(10.0)


def test_two_flows_share_bottleneck_fairly():
    sim = make_sim()
    first = Flow("a", "b", 1000.0, start_time=0.0)
    second = Flow("a", "b", 1000.0, start_time=0.0)
    sim.add_flow(first, ["ab"])
    sim.add_flow(second, ["ab"])
    sim.run()
    # Each gets 50 bps until one finishes; they are identical so both finish at 20 s.
    assert first.fct == pytest.approx(20.0)
    assert second.fct == pytest.approx(20.0)


def test_released_capacity_speeds_up_remaining_flow():
    sim = make_sim()
    short = Flow("a", "b", 500.0, start_time=0.0)
    long = Flow("a", "b", 1500.0, start_time=0.0)
    sim.add_flow(short, ["ab"])
    sim.add_flow(long, ["ab"])
    sim.run()
    # Shared at 50 bps until t=10 (short done, long has 1000 left),
    # then long runs at 100 bps for 10 s more.
    assert short.fct == pytest.approx(10.0)
    assert long.fct == pytest.approx(20.0)


def test_flows_on_disjoint_links_do_not_interact():
    sim = make_sim()
    first = Flow("a", "b", 1000.0)
    second = Flow("b", "c", 1000.0)
    sim.add_flow(first, ["ab"])
    sim.add_flow(second, ["bc"])
    sim.run()
    assert first.fct == pytest.approx(10.0)
    assert second.fct == pytest.approx(10.0)


def test_multi_link_path_bottlenecked_by_slowest():
    sim = FluidFlowSimulator()
    sim.add_link("ab", 100.0)
    sim.add_link("bc", 50.0)
    flow = Flow("a", "c", 1000.0)
    sim.add_flow(flow, ["ab", "bc"])
    sim.run()
    assert flow.fct == pytest.approx(20.0)


def test_later_arrival_changes_rates():
    sim = make_sim()
    early = Flow("a", "b", 1000.0, start_time=0.0)
    late = Flow("a", "b", 1000.0, start_time=5.0)
    sim.add_flow(early, ["ab"])
    sim.add_flow(late, ["ab"])
    sim.run()
    # early: 5 s alone at 100 (500 bits) then shares at 50 for 10 s -> fct 15.
    assert early.fct == pytest.approx(15.0)
    # late: shares at 50 for 10 s (500 left) then alone at 100 for 5 s -> fct 15.
    assert late.fct == pytest.approx(15.0)


def test_nic_rate_limit_caps_flow_rate():
    sim = FluidFlowSimulator(flow_rate_limit_bps=10.0)
    sim.add_link("ab", 100.0)
    flow = Flow("a", "b", 100.0)
    sim.add_flow(flow, ["ab"])
    sim.run()
    assert flow.fct == pytest.approx(10.0)


def test_capacity_change_via_controller():
    sim = make_sim()
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])

    def controller(simulator, now):
        if now >= 5.0:
            simulator.set_capacity("ab", 200.0)

    sim.add_controller(5.0, controller, start_offset=5.0)
    sim.run()
    # 5 s at 100 bps = 500 bits, remaining 500 at 200 bps = 2.5 s.
    assert flow.fct == pytest.approx(7.5)


def test_disabled_link_stalls_flow_until_reenabled():
    sim = make_sim()
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])

    events = []

    def controller(simulator, now):
        events.append(now)
        if now == pytest.approx(2.0):
            simulator.set_enabled("ab", False)
        if now >= 6.0:
            simulator.set_enabled("ab", True)

    sim.add_controller(2.0, controller, start_offset=2.0)
    sim.run()
    # 2 s at 100 (200 bits), stalled 2->6, then 8 s at 100 for the rest.
    assert flow.fct == pytest.approx(2.0 + 4.0 + 8.0)


def test_reroute_moves_flow_to_new_link():
    sim = FluidFlowSimulator()
    sim.add_link("slow", 10.0)
    sim.add_link("fast", 100.0)
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["slow"])

    def controller(simulator, now):
        if now >= 10.0 and flow.flow_id in dict(simulator.active_flow_rates()):
            simulator.reroute(flow.flow_id, ["fast"])

    sim.add_controller(10.0, controller, start_offset=10.0)
    sim.run()
    # 10 s at 10 bps = 100 bits, then 900 bits at 100 bps = 9 s.
    assert flow.fct == pytest.approx(19.0)


def test_reroute_unknown_flow_raises():
    sim = make_sim()
    with pytest.raises(KeyError):
        sim.reroute(999, ["ab"])


def test_add_flow_with_unknown_link_raises():
    sim = make_sim()
    with pytest.raises(KeyError):
        sim.add_flow(Flow("a", "z", 10.0), ["zz"])


def test_add_flow_with_empty_path_raises():
    sim = make_sim()
    with pytest.raises(ValueError):
        sim.add_flow(Flow("a", "b", 10.0), [])


def test_run_until_stops_early():
    sim = make_sim()
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])
    result = sim.run(until=5.0)
    assert not flow.completed
    assert flow.bits_remaining == pytest.approx(500.0)
    assert result.end_time == pytest.approx(5.0)


def test_link_utilisation_accounting():
    sim = make_sim()
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])
    result = sim.run()
    assert result.link_bits_carried["ab"] == pytest.approx(1000.0)
    utilisation = result.link_utilisation()
    assert utilisation["ab"] == pytest.approx(1.0)
    assert utilisation["bc"] == pytest.approx(0.0)


def test_instantaneous_utilisation_queries():
    sim = make_sim()
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])
    sim.run(until=1.0)
    load = sim.instantaneous_link_load()
    utilisation = sim.instantaneous_link_utilisation()
    assert load["ab"] == pytest.approx(100.0)
    assert utilisation["ab"] == pytest.approx(1.0)


def test_trace_records_flow_events():
    trace = TraceRecorder()
    sim = FluidFlowSimulator(trace=trace)
    sim.add_link("ab", 100.0)
    sim.add_flow(Flow("a", "b", 100.0), ["ab"])
    sim.run()
    assert trace.count("flow_started") == 1
    assert trace.count("flow_completed") == 1


def test_controller_only_ticks_do_not_hang_after_work_done():
    sim = make_sim()
    flow = Flow("a", "b", 100.0)
    sim.add_flow(flow, ["ab"])
    ticks = []
    sim.add_controller(0.5, lambda s, t: ticks.append(t), start_offset=0.5)
    result = sim.run()
    assert flow.completed
    # The run terminated rather than ticking forever.
    assert result.end_time <= 1.5
    assert len(ticks) <= 3


def test_simulate_static_flows_helper():
    flows = [Flow("a", "b", 100.0), Flow("a", "b", 100.0)]
    result = simulate_static_flows({"ab": 100.0}, [(flows[0], ["ab"]), (flows[1], ["ab"])])
    assert all(flow.completed for flow in flows)
    assert result.flows.makespan() == pytest.approx(2.0)


def test_zero_capacity_link_gives_zero_rate():
    sim = FluidFlowSimulator()
    sim.add_link("dead", 0.0)
    flow = Flow("a", "b", 100.0)
    sim.add_flow(flow, ["dead"])
    result = sim.run()
    assert not flow.completed
    assert flow.bits_remaining == 100.0


def test_invalid_allocator_rejected():
    with pytest.raises(ValueError, match="allocator"):
        FluidFlowSimulator(allocator="magic")
    with pytest.raises(ValueError, match="max_events"):
        FluidFlowSimulator(max_events=0)


@pytest.mark.parametrize("allocator", ["incremental", "reference"])
def test_utilisation_honest_after_mid_run_capacity_change(allocator):
    # 5 s at 100 bps fully loaded, then the capacity doubles and the flow
    # still gets everything: utilisation should read 1.0 throughout.  The
    # pre-integral implementation divided by the *final* capacity and
    # reported 0.75.
    sim = FluidFlowSimulator(allocator=allocator)
    sim.add_link("ab", 100.0)
    flow = Flow("a", "b", 1500.0)
    sim.add_flow(flow, ["ab"])

    def controller(simulator, now):
        if now >= 5.0:
            simulator.set_capacity("ab", 200.0)

    sim.add_controller(5.0, controller, start_offset=5.0)
    result = sim.run()
    assert flow.fct == pytest.approx(10.0)  # 500 bits @ 100, 1000 bits @ 200
    assert result.link_bits_carried["ab"] == pytest.approx(1500.0)
    assert result.link_utilisation()["ab"] == pytest.approx(1.0)
    # The explicit-duration variant keeps the legacy fixed-horizon meaning.
    legacy = result.link_utilisation(duration=result.end_time)
    assert legacy["ab"] == pytest.approx(1500.0 / (200.0 * 10.0))


@pytest.mark.parametrize("allocator", ["incremental", "reference"])
def test_disabled_window_excluded_from_utilisation_denominator(allocator):
    # Enabled 0-2 s and 6-14 s, disabled in between; the link is saturated
    # whenever it is up, so the honest utilisation is 1.0.
    sim = FluidFlowSimulator(allocator=allocator)
    sim.add_link("ab", 100.0)
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])

    def controller(simulator, now):
        if now == pytest.approx(2.0):
            simulator.set_enabled("ab", False)
        if now >= 6.0:
            simulator.set_enabled("ab", True)

    sim.add_controller(2.0, controller, start_offset=2.0)
    result = sim.run()
    assert flow.fct == pytest.approx(14.0)
    assert result.link_utilisation()["ab"] == pytest.approx(1.0)


@pytest.mark.parametrize("allocator", ["incremental", "reference"])
def test_utilisation_counts_idle_time_after_the_workload_drains(allocator):
    # The flow drains at t=1 but the run is asked to cover [0, 50]: the
    # idle 49 s belong in the utilisation denominator (the lazy integrals
    # stop at the last event; the result must extend them to end_time).
    sim = FluidFlowSimulator(allocator=allocator)
    sim.add_link("ab", 100.0)
    flow = Flow("a", "b", 100.0)
    sim.add_flow(flow, ["ab"])
    result = sim.run(until=50.0)
    assert flow.fct == pytest.approx(1.0)
    assert result.end_time == pytest.approx(50.0)
    assert result.link_utilisation()["ab"] == pytest.approx(100.0 / (100.0 * 50.0))


@pytest.mark.parametrize("allocator", ["incremental", "reference"])
def test_exhausted_event_budget_reports_truncation(allocator):
    sim = FluidFlowSimulator(allocator=allocator)
    sim.add_link("ab", 100.0)
    flows = [Flow("a", "b", 100.0, start_time=float(i)) for i in range(10)]
    for flow in flows:
        sim.add_flow(flow, ["ab"])
    result = sim.run(until=100.0, max_events=3)
    assert result.truncated
    # Honest end time: where the simulation actually stopped, not `until`.
    assert result.end_time == sim.now < 100.0
    assert not all(flow.completed for flow in flows)
    # Truncation latches across resumed runs on the same simulator: the
    # composite result still describes a run that once lost events.
    resumed = sim.run(until=100.0)
    assert resumed.truncated


@pytest.mark.parametrize("allocator", ["incremental", "reference"])
def test_budget_exhaustion_beyond_the_horizon_is_not_truncation(allocator):
    # The arrival at t=0 consumes the whole budget, but the only remaining
    # event (completion at t=10) lies beyond until=5: the run stops at the
    # horizon exactly as a bigger budget would, and must not claim
    # truncation or understate end_time.
    sim = FluidFlowSimulator(allocator=allocator)
    sim.add_link("ab", 100.0)
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])
    result = sim.run(until=5.0, max_events=1)
    assert not result.truncated
    assert result.end_time == pytest.approx(5.0)
    assert flow.bits_remaining == pytest.approx(500.0)


@pytest.mark.parametrize("allocator", ["incremental", "reference"])
def test_untruncated_run_reports_clean_flag(allocator):
    sim = FluidFlowSimulator(allocator=allocator)
    sim.add_link("ab", 100.0)
    flow = Flow("a", "b", 100.0)
    sim.add_flow(flow, ["ab"])
    result = sim.run(until=50.0)
    assert not result.truncated
    assert result.end_time == pytest.approx(50.0)


def test_noop_mutations_do_not_dirty_the_incremental_allocator():
    sim = make_sim()
    flow = Flow("a", "b", 1000.0)
    sim.add_flow(flow, ["ab"])
    sim.run(until=1.0)
    assert not sim._dirty_links and not sim._dirty_flows
    sim.set_capacity("ab", 100.0)  # unchanged value
    sim.set_enabled("ab", True)  # already enabled
    assert not sim._dirty_links and not sim._dirty_flows


def test_completion_on_one_component_does_not_resolve_the_other():
    # Two disjoint bottlenecks: finishing a flow on "ab" must re-solve only
    # the "ab" component; the "bc" flows keep their rates untouched.
    sim = make_sim()
    short = Flow("a", "b", 100.0)
    sim.add_flow(short, ["ab"])
    others = [Flow("b", "c", 1000.0), Flow("b", "c", 1000.0)]
    for flow in others:
        sim.add_flow(flow, ["bc"])

    closures = []
    original = sim._solve_closure

    def recording(flow_ids):
        closures.append(set(flow_ids))
        return original(flow_ids)

    sim._solve_closure = recording
    sim.run()
    assert short.fct == pytest.approx(1.0)
    assert all(flow.fct == pytest.approx(20.0) for flow in others)
    # The admission batch solves all three flows in one pass.
    admit_index = next(index for index, ids in enumerate(closures) if ids)
    assert closures[admit_index] == {
        short.flow_id, others[0].flow_id, others[1].flow_id
    }
    # When "short" completes at t=1 only the "ab" component is re-solved --
    # it has no flows left, so the closure is empty and the "bc" flows'
    # rates (and heap entries) are never touched.
    assert closures[admit_index + 1] == set()
