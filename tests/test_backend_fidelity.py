"""The fluid-vs-packet fidelity gate.

The fluid simulator answers "what do the completion times look like if
rates are ideal max-min shares"; the packet backend answers the same
question with real per-port FIFO buffers, tail-drops and retransmission.
The paper's conclusions must not depend on which abstraction we picked, so
this suite runs **every small registered scenario** under
``{none, static, ecmp, crc}`` on *both* backends over bit-identical
workloads -- plus the closed control loop (``controller="loop"``) on the
three dynamic scenarios it was built for -- and pins how far the headline
numbers may diverge:

* ``mean_fct`` within a declared per-scenario relative tolerance,
* mean link utilisation within a declared per-scenario relative tolerance,
* total bits carried across links within 2%..10% (packetisation conserves
  payload exactly; only mid-path drops may inflate carried bits),
* both backends complete the whole workload.

The tolerances are *declared data*, not derived slack: a model change that
widens the gap past its declaration fails here, exactly the way
``test_fluid_parity.py`` keeps the two fluid allocators honest against
each other.  A second block pins what must be **exact**: the packet
backend's rows are bit-identical run-to-run and across sweep worker
counts.
"""

import math

import pytest

from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.scenarios import (
    controller_config_from_params,
    derive_run_seed,
    get_scenario,
    list_scenarios,
    materialize_run,
    resolve_params,
)
from repro.experiments.sweep import run_sweep, strip_timing
from repro.sim.transport import TransportConfig

#: Workload shrink applied to every gated run: the gate is about model
#: agreement, not scale, and ~50 KB flows keep the packetised leg at a few
#: thousand packets per run.  Both backends see the same override, so the
#: derived seed -- and therefore the flow list -- stays identical.
BASE_OVERRIDES = {"mean_flow_mb": 0.05}

#: The storage workloads use fixed 1 MB / 256 KB blocks regardless of
#: ``mean_flow_mb``; a jumbo MTU keeps their packetised legs within CI time
#: without touching the workload itself.
JUMBO_TRANSPORT = TransportConfig(mtu_bytes=9000.0)

#: Controllers every scenario is gated under.  The closed control loop is
#: gated separately (:data:`LOOP_TOLERANCES`) on the dynamic scenarios it
#: defaults on, rather than on every scenario: one loop leg co-simulates a
#: whole control stack and would dominate the suite's runtime.
CONTROLLERS = ("none", "static", "ecmp", "crc")

#: Declared per-scenario divergence budgets: (mean-FCT relative tolerance,
#: mean-link-utilisation relative tolerance).  Derived from the measured
#: envelope across all gated controllers with ~1.5-2x headroom; tightening
#: a model should tighten these, loosening one must be an explicit,
#: reviewed change here.
TOLERANCES = {
    "uniform-burst": (0.25, 0.20),
    "uniform-poisson": (0.12, 0.10),
    "permutation": (0.15, 0.25),
    "permutation-heavy": (0.30, 0.10),
    "hotspot-diagonal": (0.35, 0.15),
    "hotspot-random": (0.40, 0.15),
    "incast": (0.50, 0.10),
    "incast-staggered": (0.20, 0.10),
    "mapreduce-shuffle": (0.45, 0.10),
    "mapreduce-skewed": (0.45, 0.15),
    "storage-read-heavy": (0.20, 0.10),
    "storage-write-heavy": (0.20, 0.10),
    "trace-ring": (0.15, 0.10),
    "hotspot_migration": (0.40, 0.20),
    "load_shift_uniform_to_permutation": (0.25, 0.10),
    "failure_recovery": (0.15, 0.10),
}

#: Total-bits-carried ratio bound (packet / fluid).  Payload is conserved
#: exactly by segmentation; only packets dropped mid-path (after having
#: consumed upstream link capacity) may inflate the packet side.
BITS_RATIO_BOUNDS = (0.98, 1.10)

#: Declared loop-controller divergence budgets over the dynamic scenarios
#: (same columns as :data:`TOLERANCES`).  The loop observes each backend's
#: own instantaneous telemetry -- occupancy-derived 0/1 rates on packet
#: versus exact max-min rates on fluid -- so its reroute instants differ
#: and the envelope is wider than the open-loop controllers'; measured
#: divergence with ~1.5-2x headroom, same review rule as TOLERANCES.
LOOP_TOLERANCES = {
    "hotspot_migration": (0.40, 0.35),
    "load_shift_uniform_to_permutation": (0.25, 0.60),
    "failure_recovery": (0.10, 0.10),
}

#: Shrunk instances for the non-mesh topology-family scenarios: the gate is
#: about model agreement, so the 1k-endpoint defaults are scaled down to a
#: few dozen hosts.  Both backends see the same overrides, keeping the
#: derived seed (and flow list) identical per scenario.
TOPOLOGY_SCENARIO_OVERRIDES = {
    "fattree_uniform": {"pods": 4, "num_flows": 48},
    "fattree_incast": {"pods": 4, "fan_in": 8},
    "dragonfly_permutation": {
        "groups": 3, "routers_per_group": 3, "hosts_per_router": 2,
    },
    "dragonfly_hotspot": {
        "groups": 3, "routers_per_group": 3, "hosts_per_router": 2,
        "num_flows": 36,
    },
}

#: Declared fluid-vs-packet divergence budgets for the topology-family
#: scenarios (same columns and review rule as :data:`TOLERANCES`), gated on
#: the shrunk instances above.  Multi-hop switch fabrics queue at every
#: tier on the packet side, so the FCT envelope sits near the mesh
#: scenarios' upper range; measured divergence with ~1.5-2x headroom.
TOPOLOGY_TOLERANCES = {
    "fattree_uniform": (0.25, 0.10),       # measured 0.140 / 0.026
    "fattree_incast": (0.30, 0.10),        # measured 0.183 / 0.041
    "dragonfly_permutation": (0.10, 0.12),  # measured 0.034 / 0.051
    "dragonfly_hotspot": (0.10, 0.10),     # measured 0.004 / 0.005
}

#: Open-loop controllers every topology-family scenario is gated under; the
#: closed loop is additionally gated on ``dragonfly_hotspot`` (its default
#: controller, exercising the global-link-rehome candidate end to end).
TOPOLOGY_CONTROLLERS = ("none", "ecmp")

#: Closed-loop budget for the dragonfly gate leg.  The global-link-rehome
#: plan CREATEs new global links at backend-specific instants, so the mean
#: per-link utilisation is averaged over a different link census on each
#: backend -- the utilisation envelope is wide for the same reason the
#: :data:`LOOP_TOLERANCES` envelopes are (measured 0.004 / 0.523).
TOPOLOGY_LOOP_TOLERANCES = {
    "dragonfly_hotspot": (0.10, 0.80),
}


def small_scenarios():
    """Every registered grid/torus scenario on a small (<= 3x3) default fabric.

    Non-mesh topology families (fat-tree, dragonfly) default to 1k-endpoint
    fabrics and are gated separately on shrunk instances
    (:data:`TOPOLOGY_TOLERANCES` / :data:`TOPOLOGY_SCENARIO_OVERRIDES`).
    """
    return [
        scenario
        for scenario in list_scenarios()
        if scenario.parameters()["topology"] in ("grid", "torus")
        and int(scenario.parameters()["rows"]) * int(scenario.parameters()["columns"]) <= 9
    ]


def _transport_for(scenario):
    return JUMBO_TRANSPORT if scenario.workload == "disaggregated-storage" else None


def _run(scenario, controller, backend, base_seed=0, extra_overrides=None):
    """One leg of the gate, via the same single entrypoint everything uses."""
    overrides = dict(BASE_OVERRIDES, controller=controller, backend=backend)
    if extra_overrides:
        overrides.update(extra_overrides)
    params = resolve_params(scenario, overrides)
    seed = derive_run_seed(base_seed, scenario.name, params)
    fabric, flows, failure_events = materialize_run(scenario, params, seed)
    return run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=scenario.name,
            controller=controller,
            controller_config=controller_config_from_params(controller, params),
            failures=tuple(failure_events or ()),
            backend=backend,
            transport=_transport_for(scenario),
        )
    )


def _mean_utilisation(record):
    utilisation = record.fluid.link_utilisation()
    return sum(utilisation.values()) / len(utilisation)


# --------------------------------------------------------------------------- #
# Registry drift guard
# --------------------------------------------------------------------------- #
def test_every_small_scenario_declares_a_tolerance():
    """A new small scenario must declare its divergence budget to land."""
    names = {scenario.name for scenario in small_scenarios()}
    assert names == set(TOLERANCES), (
        "small-scenario registry and the fidelity tolerance table diverged; "
        f"missing={sorted(names - set(TOLERANCES))}, "
        f"stale={sorted(set(TOLERANCES) - names)}"
    )


def test_every_topology_scenario_declares_a_tolerance():
    """A scenario on a non-mesh topology family must declare both its
    fluid-vs-packet tolerance and the shrunk instance it is gated on."""
    names = {
        scenario.name
        for scenario in list_scenarios()
        if scenario.parameters()["topology"] not in ("grid", "torus")
    }
    assert names == set(TOPOLOGY_TOLERANCES), (
        "topology-family scenarios and the fidelity tolerance table diverged; "
        f"missing={sorted(names - set(TOPOLOGY_TOLERANCES))}, "
        f"stale={sorted(set(TOPOLOGY_TOLERANCES) - names)}"
    )
    assert names == set(TOPOLOGY_SCENARIO_OVERRIDES), (
        "topology-family scenarios and the shrunk-instance table diverged; "
        f"missing={sorted(names - set(TOPOLOGY_SCENARIO_OVERRIDES))}, "
        f"stale={sorted(set(TOPOLOGY_SCENARIO_OVERRIDES) - names)}"
    )


# --------------------------------------------------------------------------- #
# The gate: agreement within declared tolerances
# --------------------------------------------------------------------------- #
def _assert_backends_agree(name, controller, fluid, packet, fct_tol, util_tol):
    """The shared agreement contract for one (scenario, controller) pair."""
    # Identical workloads reached both backends.
    assert packet.metrics["num_flows"] == fluid.metrics["num_flows"]
    assert packet.metrics["total_bits"] == fluid.metrics["total_bits"]

    # Both backends finish the workload (retransmission must recover every
    # tail-drop at these sizes).
    assert fluid.metrics["completion_fraction"] == 1.0
    assert packet.metrics["completion_fraction"] == 1.0
    assert not packet.metrics["truncated"]

    mean_fct_fluid = fluid.metrics["mean_fct"]
    mean_fct_packet = packet.metrics["mean_fct"]
    rel_fct = abs(mean_fct_packet - mean_fct_fluid) / mean_fct_fluid
    assert rel_fct <= fct_tol, (
        f"{name}/{controller}: mean FCT diverged {rel_fct:.3f} "
        f"(fluid {mean_fct_fluid:.3e}, packet {mean_fct_packet:.3e}, "
        f"declared tolerance {fct_tol})"
    )

    util_fluid = _mean_utilisation(fluid)
    util_packet = _mean_utilisation(packet)
    rel_util = abs(util_packet - util_fluid) / util_fluid if util_fluid else 0.0
    assert rel_util <= util_tol, (
        f"{name}/{controller}: mean link utilisation diverged {rel_util:.3f} "
        f"(fluid {util_fluid:.4f}, packet {util_packet:.4f}, "
        f"declared tolerance {util_tol})"
    )

    bits_fluid = sum(fluid.fluid.link_bits_carried.values())
    bits_packet = sum(packet.fluid.link_bits_carried.values())
    ratio = bits_packet / bits_fluid
    reconfigured = (
        packet.metrics["reconfigurations"] > 0 or fluid.metrics["reconfigurations"] > 0
    )
    # A committed reconfiguration reroutes traffic onto different-length
    # paths at backend-specific instants, so carried bits only conserve
    # loosely; without one, packetisation must conserve payload tightly.
    low, high = (0.80, 1.25) if reconfigured else BITS_RATIO_BOUNDS
    assert low <= ratio <= high, (
        f"{name}/{controller}: carried-bits ratio {ratio:.3f} outside "
        f"({low}, {high}) -- packetisation no longer conserves payload"
    )

    # The packet-only metric block is present and internally consistent.
    assert packet.metrics["backend"] == "packet"
    assert "drop_fraction" not in fluid.metrics
    assert 0.0 <= packet.metrics["drop_fraction"] < 1.0
    assert packet.metrics["p99_queueing_delay"] >= packet.metrics["mean_queueing_delay"] >= 0.0
    if packet.metrics["packets_dropped"] == 0:
        assert packet.metrics["retransmitted_bits"] == 0.0
    else:
        assert packet.metrics["retransmissions"] > 0


@pytest.mark.parametrize(
    "name,controller",
    [
        (scenario.name, controller)
        for scenario in small_scenarios()
        for controller in CONTROLLERS
    ],
)
def test_backends_agree_within_declared_tolerance(name, controller):
    scenario = get_scenario(name)
    fluid = _run(scenario, controller, "fluid")
    packet = _run(scenario, controller, "packet")
    fct_tol, util_tol = TOLERANCES[name]
    _assert_backends_agree(name, controller, fluid, packet, fct_tol, util_tol)


@pytest.mark.parametrize(
    "name,controller",
    [
        (name, controller)
        for name in sorted(TOPOLOGY_TOLERANCES)
        for controller in TOPOLOGY_CONTROLLERS
    ]
    + [("dragonfly_hotspot", "loop")],
)
def test_topology_scenario_backends_agree(name, controller):
    """The fat-tree/dragonfly scenarios hold the same fluid-vs-packet
    contract as the mesh catalog, on their declared shrunk instances."""
    scenario = get_scenario(name)
    extra = TOPOLOGY_SCENARIO_OVERRIDES[name]
    fluid = _run(scenario, controller, "fluid", extra_overrides=extra)
    packet = _run(scenario, controller, "packet", extra_overrides=extra)
    table = TOPOLOGY_LOOP_TOLERANCES if controller == "loop" else TOPOLOGY_TOLERANCES
    fct_tol, util_tol = table[name]
    _assert_backends_agree(name, controller, fluid, packet, fct_tol, util_tol)


@pytest.mark.parametrize("name", sorted(LOOP_TOLERANCES))
def test_loop_controller_backends_agree(name):
    """The closed control loop is a first-class citizen of the packet
    backend: it co-simulates against real FIFO/drop dynamics and its
    headline numbers stay inside the declared envelope of the fluid run."""
    scenario = get_scenario(name)
    fluid = _run(scenario, "loop", "fluid")
    packet = _run(scenario, "loop", "packet")
    fct_tol, util_tol = LOOP_TOLERANCES[name]
    _assert_backends_agree(name, "loop", fluid, packet, fct_tol, util_tol)


def test_loop_controller_is_accepted_on_the_packet_backend():
    """Both rejection layers of the old fluid-only loop are gone: the api
    entrypoint and the scenario layer run controller='loop' on
    backend='packet' end to end."""
    from repro.experiments.scenarios import run_scenario

    scenario = get_scenario("uniform-burst")
    params = resolve_params(scenario, dict(BASE_OVERRIDES))
    seed = derive_run_seed(0, scenario.name, params)
    fabric, flows, _ = materialize_run(scenario, params, seed)
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric, flows=flows, controller="loop", backend="packet"
        )
    )
    assert record.metrics["backend"] == "packet"
    assert record.metrics["completion_fraction"] == 1.0

    row = run_scenario(
        "hotspot_migration", dict(BASE_OVERRIDES, backend="packet")
    )
    assert row["params"]["controller"] == "loop"
    assert row["metrics"]["backend"] == "packet"
    assert row["metrics"]["completion_fraction"] == 1.0


def test_packet_comparison_adaptive_leg_is_the_loop():
    """The comparison runs the same controller per label on both backends;
    in particular the adaptive leg is the closed loop even off-grid (the
    old packet comparison substituted the grid-only CRC here)."""
    from repro.experiments.comparison import COMPARISON_LABELS, adaptive_vs_static

    rows = adaptive_vs_static(
        "uniform-burst",
        {"topology": "torus", "backend": "packet", "mean_flow_mb": 0.05},
    )
    assert [row["label"] for row in rows] == list(COMPARISON_LABELS)
    assert all(row["completion_fraction"] == 1.0 for row in rows)


def test_unknown_backend_is_rejected():
    scenario = get_scenario("uniform-burst")
    params = resolve_params(scenario, dict(BASE_OVERRIDES))
    seed = derive_run_seed(0, scenario.name, params)
    fabric, flows, _ = materialize_run(scenario, params, seed)
    with pytest.raises(ValueError, match="backend"):
        run_experiment(ExperimentSpec(fabric=fabric, flows=flows, backend="quantum"))


# --------------------------------------------------------------------------- #
# Exact determinism of the packet backend
# --------------------------------------------------------------------------- #
def test_packet_backend_is_bit_deterministic_run_to_run():
    """Two in-process runs of the same config produce identical metrics,
    including every packet-only counter -- nothing may leak from global
    state (packet ids, port dictionaries, numpy) between runs."""
    scenario = get_scenario("hotspot-random")  # drops + retransmissions
    first = _run(scenario, "ecmp", "packet")
    second = _run(scenario, "ecmp", "packet")
    assert first.metrics == second.metrics


def test_loop_on_packet_is_bit_deterministic_run_to_run():
    """The co-simulated control loop adds its own engine, EWMA state and
    PLP transitions on top of the packet backend; none of it may introduce
    run-to-run nondeterminism (reroute instants included)."""
    scenario = get_scenario("hotspot_migration")  # reroutes + a PLP candidate
    first = _run(scenario, "loop", "packet")
    second = _run(scenario, "loop", "packet")
    assert first.metrics == second.metrics


def test_packet_sweep_rows_are_identical_for_any_worker_count():
    """The acceptance property: a packet-backend sweep is a pure function
    of its configuration, so worker fan-out cannot change a row.

    failure_recovery rides along since ``fabric_state_row`` learned to
    BFS over the live subgraph: its shrunk workload drains before the
    restore event, so every row is computed against a dark link.
    """
    kwargs = dict(
        scenarios=["uniform-burst", "hotspot-random", "failure_recovery"],
        grid={
            "backend": ["packet"],
            "controller": ["none", "ecmp"],
            "mean_flow_mb": [0.05],
        },
        base_seed=7,
    )
    serial = run_sweep(workers=1, **kwargs)
    parallel = run_sweep(workers=2, **kwargs)
    assert [strip_timing(row) for row in serial] == [
        strip_timing(row) for row in parallel
    ]
    assert all(row["params"]["backend"] == "packet" for row in serial)
    assert all(
        math.isfinite(row["metrics"]["p99_queueing_delay"]) for row in serial
    )


def test_sharded_sweep_rows_are_identical_for_any_worker_count():
    """Worker fan-out determinism for the sharded engine: sweep workers
    multiply with shard dispatch, and neither level may leak into a row.
    Rows must also be byte-identical to the event engine's rows modulo
    the engine-specific params/event counts -- the sweep-level spelling
    of the shard-count-invariance gate, failure_recovery included (its
    rows are computed against a dark link)."""
    kwargs = dict(
        scenarios=["uniform-burst", "failure_recovery"],
        grid={
            "backend": ["packet"],
            "controller": ["none", "ecmp"],
            "engine": ["sharded"],
            "shards": [2],
            "mean_flow_mb": [0.05],
        },
        base_seed=7,
    )
    serial = run_sweep(workers=1, **kwargs)
    parallel = run_sweep(workers=2, **kwargs)
    assert [strip_timing(row) for row in serial] == [
        strip_timing(row) for row in parallel
    ]

    event_kwargs = dict(kwargs)
    event_kwargs["grid"] = dict(
        kwargs["grid"], engine=["event"], shards=[1]
    )
    event_rows = run_sweep(workers=1, **event_kwargs)

    def comparable(row):
        row = strip_timing(row)
        row["params"] = {
            k: v for k, v in row["params"].items()
            if k not in ("engine", "shards")
        }
        row["metrics"] = {
            k: v for k, v in row["metrics"].items() if k != "events_processed"
        }
        return row

    assert [comparable(row) for row in serial] == [
        comparable(row) for row in event_rows
    ]


def test_loop_on_packet_sweep_rows_are_identical_for_any_worker_count():
    """Same acceptance property for controller='loop' packet rows: the
    loop's co-simulation is a pure function of the run's configuration.

    failure_recovery is the interesting member: its shrunk workload drains
    before the scenario's restore event, so the run ends with a dark link
    and the fabric-state row must compute path statistics over the live
    subgraph (it used to raise on the dead link's serialization time).
    """
    kwargs = dict(
        scenarios=[
            "failure_recovery",
            "hotspot_migration",
            "load_shift_uniform_to_permutation",
        ],
        grid={
            "backend": ["packet"],
            "controller": ["loop"],
            "mean_flow_mb": [0.05],
        },
        base_seed=7,
    )
    serial = run_sweep(workers=1, **kwargs)
    parallel = run_sweep(workers=2, **kwargs)
    assert [strip_timing(row) for row in serial] == [
        strip_timing(row) for row in parallel
    ]
    assert all(row["params"]["controller"] == "loop" for row in serial)
    assert all(row["metrics"]["backend"] == "packet" for row in serial)
