"""Tests for control policies and the Closed Ring Control."""

import pytest

from repro.core.crc import ClosedRingControl, CRCConfig
from repro.core.plp import PLPCommandType
from repro.core.policy import (
    AdaptiveFecPolicy,
    BypassPolicy,
    CompositePolicy,
    LatencyMinimizationPolicy,
    Observation,
    PowerCapPolicy,
)
from repro.core.reconfiguration import ReconfigurationPlanner
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.topology import TopologyBuilder, canonical_key
from repro.sim.flow import Flow
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.units import GBPS, megabytes, microseconds


def make_fabric(rows=3, columns=3, lanes=2):
    return Fabric(TopologyBuilder(lanes_per_link=lanes).grid(rows, columns), FabricConfig())


def observation_for(fabric, utilisation=None, **kwargs):
    return Observation(
        time=0.0,
        fabric=fabric,
        link_utilisation=utilisation or {},
        power_report=fabric.power_report(),
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# Observation helpers
# --------------------------------------------------------------------------- #
def test_observation_hottest_and_coldest():
    fabric = make_fabric()
    observation = observation_for(
        fabric, {("n0x0", "n0x1"): 0.9, ("n1x1", "n1x2"): 0.1}
    )
    assert observation.max_utilisation() == 0.9
    assert observation.hottest_links(1)[0][0] == ("n0x0", "n0x1")
    assert observation.coldest_links(1)[0][0] == ("n1x1", "n1x2")
    assert observation_for(fabric).max_utilisation() == 0.0


# --------------------------------------------------------------------------- #
# LatencyMinimizationPolicy
# --------------------------------------------------------------------------- #
def test_latency_policy_idle_fabric_no_commands():
    fabric = make_fabric()
    policy = LatencyMinimizationPolicy(3, 3, utilisation_threshold=0.7)
    assert policy.decide(observation_for(fabric, {("n0x0", "n0x1"): 0.2})) == []


def test_latency_policy_emits_torus_plan_under_congestion():
    fabric = make_fabric()
    policy = LatencyMinimizationPolicy(
        3, 3, utilisation_threshold=0.5, planner=ReconfigurationPlanner(hysteresis=1.0)
    )
    observation = observation_for(
        fabric, {("n0x0", "n0x1"): 0.95}, pending_demand_bits=1e12
    )
    commands = policy.decide(observation)
    assert commands
    assert any(cmd.type is PLPCommandType.CREATE_LINK for cmd in commands)
    assert policy.applied
    # Once applied, the policy stays quiet.
    assert policy.decide(observation) == []


def test_latency_policy_skips_when_already_torus():
    fabric = Fabric(TopologyBuilder(lanes_per_link=2).torus(3, 3), FabricConfig())
    policy = LatencyMinimizationPolicy(3, 3, utilisation_threshold=0.5)
    commands = policy.decide(
        observation_for(fabric, {("n0x0", "n0x1"): 0.99}, pending_demand_bits=1e12)
    )
    assert commands == []


def test_latency_policy_threshold_validation():
    with pytest.raises(ValueError):
        LatencyMinimizationPolicy(3, 3, utilisation_threshold=0.0)


# --------------------------------------------------------------------------- #
# BypassPolicy
# --------------------------------------------------------------------------- #
def test_bypass_policy_creates_circuit_for_hot_pair():
    fabric = make_fabric()
    policy = BypassPolicy(min_demand_bits=1e6)
    observation = observation_for(
        fabric, hot_pairs=[("n0x0", "n2x2", 1e9)]
    )
    commands = policy.decide(observation)
    assert len(commands) == 1
    assert commands[0].type is PLPCommandType.CREATE_BYPASS
    assert commands[0].endpoints == ("n0x0", "n2x2")
    assert commands[0].params["capacity_bps"] > 0


def test_bypass_policy_ignores_adjacent_and_small_pairs():
    fabric = make_fabric()
    policy = BypassPolicy(min_demand_bits=1e6)
    observation = observation_for(
        fabric,
        hot_pairs=[("n0x0", "n0x1", 1e9), ("n0x0", "n2x2", 10.0)],
    )
    assert policy.decide(observation) == []


def test_bypass_policy_releases_cold_circuits():
    fabric = make_fabric()
    fabric.bypasses.establish("n0x0", "n2x2", ["n0x1"], 50 * GBPS, now=0.0)
    policy = BypassPolicy(min_demand_bits=1e6)
    commands = policy.decide(observation_for(fabric, hot_pairs=[]))
    assert len(commands) == 1
    assert commands[0].type is PLPCommandType.RELEASE_BYPASS


def test_bypass_policy_respects_budget():
    fabric = Fabric(
        TopologyBuilder(lanes_per_link=2).grid(3, 3),
        FabricConfig(max_bypass_circuits=1),
    )
    fabric.bypasses.establish("n0x0", "n1x1", ["n0x1"], 50 * GBPS, now=0.0)
    policy = BypassPolicy(min_demand_bits=1.0)
    commands = policy.decide(
        observation_for(fabric, hot_pairs=[("n0x0", "n1x1", 1e9), ("n0x0", "n2x2", 1e9)])
    )
    assert all(cmd.type is not PLPCommandType.CREATE_BYPASS for cmd in commands)


# --------------------------------------------------------------------------- #
# PowerCapPolicy
# --------------------------------------------------------------------------- #
def test_power_cap_policy_sheds_lanes_when_over_budget():
    fabric = make_fabric()
    current = fabric.power_report().total_watts
    policy = PowerCapPolicy(cap_watts=current * 0.8)
    utilisation = {key: 0.1 for key in fabric.topology.link_keys()}
    commands = policy.decide(observation_for(fabric, utilisation))
    assert commands
    assert all(cmd.type is PLPCommandType.SET_LANE_COUNT for cmd in commands)
    link = fabric.topology.link_between(*commands[0].endpoints)
    assert commands[0].params["count"] == link.num_active_lanes - 1


def test_power_cap_policy_restores_lanes_with_headroom():
    fabric = make_fabric()
    hot_key = canonical_key("n0x0", "n0x1")
    fabric.topology.link_between(*hot_key).set_active_lane_count(1)
    current = fabric.power_report().total_watts
    policy = PowerCapPolicy(cap_watts=current + 100.0, restore_threshold=0.5,
                            headroom_margin_watts=1.0)
    utilisation = {key: 0.0 for key in fabric.topology.link_keys()}
    utilisation[hot_key] = 0.9
    commands = policy.decide(observation_for(fabric, utilisation))
    assert commands
    assert commands[0].endpoints == hot_key
    assert commands[0].params["count"] == 2


def test_power_cap_policy_quiet_inside_band():
    fabric = make_fabric()
    current = fabric.power_report().total_watts
    policy = PowerCapPolicy(cap_watts=current + 1.0, headroom_margin_watts=5.0)
    utilisation = {key: 0.0 for key in fabric.topology.link_keys()}
    assert policy.decide(observation_for(fabric, utilisation)) == []


def test_power_cap_policy_validation():
    with pytest.raises(ValueError):
        PowerCapPolicy(cap_watts=0)
    with pytest.raises(ValueError):
        PowerCapPolicy(cap_watts=10, restore_threshold=2.0)


# --------------------------------------------------------------------------- #
# AdaptiveFecPolicy and CompositePolicy
# --------------------------------------------------------------------------- #
def test_adaptive_fec_policy_upgrades_sick_link():
    fabric = make_fabric()
    link = fabric.topology.link_between("n0x0", "n0x1")
    for lane in link.lanes:
        lane.raw_ber = 1e-4
    commands = AdaptiveFecPolicy().decide(observation_for(fabric))
    targets = {cmd.endpoints for cmd in commands}
    assert canonical_key("n0x0", "n0x1") in targets
    for cmd in commands:
        assert cmd.type is PLPCommandType.SET_FEC


def test_adaptive_fec_policy_quiet_when_settled():
    fabric = make_fabric()
    first = AdaptiveFecPolicy()
    # Apply whatever it wants once.
    from repro.core.plp import PLPExecutor

    executor = PLPExecutor(fabric)
    executor.execute_batch(first.decide(observation_for(fabric)))
    # A second pass proposes nothing new.
    assert AdaptiveFecPolicy().decide(observation_for(fabric)) == []


def test_composite_policy_concatenates_and_dedups():
    fabric = make_fabric()
    composite = CompositePolicy([AdaptiveFecPolicy(), AdaptiveFecPolicy()])
    fabric.topology.link_between("n0x0", "n0x1").lanes[0].raw_ber = 1e-4
    commands = composite.decide(observation_for(fabric))
    keys = [(cmd.type, cmd.endpoints) for cmd in commands]
    assert len(keys) == len(set(keys))
    with pytest.raises(ValueError):
        CompositePolicy([])


# --------------------------------------------------------------------------- #
# Closed Ring Control
# --------------------------------------------------------------------------- #
def test_crc_config_validation():
    with pytest.raises(ValueError):
        CRCConfig(control_period=0)
    with pytest.raises(ValueError):
        CRCConfig(enable_topology_reconfiguration=True)


def test_crc_control_step_records_iteration():
    fabric = make_fabric()
    crc = ClosedRingControl(fabric, CRCConfig(enable_bypass=False))
    results = crc.control_step(0.0, {("n0x0", "n0x1"): 0.3})
    assert crc.iterations[0].iteration == 1
    assert crc.iterations[0].max_utilisation == pytest.approx(0.3)
    assert crc.summary()["iterations"] == 1.0
    assert all(result.success for result in results)


def test_crc_reconfigures_grid_to_torus_under_congestion():
    fabric = make_fabric(4, 4)
    crc = ClosedRingControl(
        fabric,
        CRCConfig(
            enable_topology_reconfiguration=True,
            grid_rows=4,
            grid_columns=4,
            utilisation_threshold=0.5,
            enable_bypass=False,
            enable_adaptive_fec=False,
        ),
    )
    utilisation = {key: 0.9 for key in fabric.topology.link_keys()}
    crc.control_step(0.0, utilisation, pending_demand_bits=1e12)
    assert len(crc.reconfiguration_times) == 1
    reference = TopologyBuilder(lanes_per_link=1).torus(4, 4)
    assert fabric.topology.diameter() == reference.diameter()


def test_crc_attach_drives_fluid_simulation():
    fabric = make_fabric(3, 3)
    crc = ClosedRingControl(
        fabric,
        CRCConfig(
            enable_topology_reconfiguration=True,
            grid_rows=3,
            grid_columns=3,
            utilisation_threshold=0.3,
            control_period=microseconds(100),
            enable_bypass=False,
            enable_adaptive_fec=False,
        ),
    )
    simulator = FluidFlowSimulator(flow_rate_limit_bps=100 * GBPS)
    for key, capacity in fabric.directed_capacities().items():
        simulator.add_link(key, capacity)
    flows = [
        Flow("n0x0", "n2x2", megabytes(4)),
        Flow("n0x2", "n2x0", megabytes(4)),
        Flow("n2x0", "n0x2", megabytes(4)),
    ]
    for flow in flows:
        simulator.add_flow(flow, fabric.route_keys(flow.src, flow.dst, flow.flow_id))
    crc.attach(simulator)
    simulator.run()
    assert all(flow.completed for flow in flows)
    assert len(crc.iterations) >= 1
    # After the reconfiguration the fluid sim knows about the wrap-around links.
    if crc.reconfiguration_times:
        assert simulator.has_link(("n0x0", "n0x2")) or simulator.has_link(("n0x0", "n2x0"))


def test_crc_sync_fluid_links_adds_new_capacity():
    fabric = make_fabric(3, 3)
    crc = ClosedRingControl(fabric, CRCConfig(enable_bypass=False))
    simulator = FluidFlowSimulator()
    for key, capacity in fabric.directed_capacities().items():
        simulator.add_link(key, capacity)
    # Manually mutate the topology, then sync.
    from repro.core.plp import PLPCommand

    crc.executor.execute(PLPCommand(PLPCommandType.SPLIT_LINK, ("n0x0", "n0x1"), {"lanes": 1}))
    crc.executor.execute(PLPCommand(PLPCommandType.CREATE_LINK, ("n0x0", "n2x2"), {"lanes": 1}))
    crc.sync_fluid_links(simulator)
    assert simulator.has_link(("n0x0", "n2x2"))
    assert simulator.link(("n0x0", "n0x1")).capacity_bps == pytest.approx(
        fabric.topology.link_between("n0x0", "n0x1").capacity_bps
    )


def test_crc_power_cap_policy_enforced_via_config():
    fabric = make_fabric()
    cap = fabric.power_report().total_watts * 0.85
    crc = ClosedRingControl(
        fabric,
        CRCConfig(power_cap_watts=cap, enable_bypass=False, enable_adaptive_fec=False),
    )
    utilisation = {key: 0.05 for key in fabric.topology.link_keys()}
    for step in range(5):
        crc.control_step(float(step), utilisation)
    assert fabric.power_report().total_watts < cap * 1.05
    assert fabric.power_budget.peak_watts() > 0
