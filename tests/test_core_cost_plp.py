"""Tests for price tags and the PLP command set / executor."""

import math

import pytest

from repro.core.cost import LinkPriceTagger, PriceNormalisation, PriceWeights
from repro.core.plp import (
    PLPCommand,
    PLPCommandType,
    PLPExecutor,
    ReconfigurationDelays,
)
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.topology import TopologyBuilder
from repro.phy.fec import FEC_NONE
from repro.sim.units import GBPS


@pytest.fixture
def fabric():
    return Fabric(TopologyBuilder(lanes_per_link=2).grid(3, 3), FabricConfig())


@pytest.fixture
def executor(fabric):
    return PLPExecutor(fabric)


# --------------------------------------------------------------------------- #
# Price weights and tagger
# --------------------------------------------------------------------------- #
def test_price_weights_presets():
    assert PriceWeights.latency_only().congestion == 0.0
    assert PriceWeights.congestion_aware().health == 0.0
    assert PriceWeights.health_aware().health > 0
    assert PriceWeights.power_aware().power > 0


def test_price_weights_validation():
    with pytest.raises(ValueError):
        PriceWeights(latency=-1)
    with pytest.raises(ValueError):
        PriceWeights(latency=0, congestion=0, health=0, power=0)


def test_price_normalisation_validation():
    with pytest.raises(ValueError):
        PriceNormalisation(reference_latency=0)
    with pytest.raises(ValueError):
        PriceNormalisation(utilisation_knee=1.5)


def test_congestion_term_is_convex_and_increasing():
    tagger = LinkPriceTagger()
    values = [tagger.congestion_term(u) for u in (0.0, 0.3, 0.6, 0.9, 0.99)]
    assert all(b > a for a, b in zip(values, values[1:]))
    # Convexity: marginal cost grows.
    assert (values[3] - values[2]) > (values[1] - values[0])
    # At the knee the cost is 1.0 by construction.
    assert tagger.congestion_term(tagger.normalisation.utilisation_knee) == pytest.approx(1.0)


def test_health_term_counts_orders_of_magnitude():
    tagger = LinkPriceTagger()
    assert tagger.health_term(1e-15) == 0.0
    assert tagger.health_term(1e-12) == pytest.approx(0.0)
    assert tagger.health_term(1e-9) == pytest.approx(3.0)
    assert tagger.health_term(0.0) == 0.0


def test_price_increases_with_utilisation(fabric):
    tagger = LinkPriceTagger()
    link = fabric.topology.link_between("n0x0", "n0x1")
    idle = tagger.price(link, utilisation=0.0)
    busy = tagger.price(link, utilisation=0.9)
    assert busy > idle


def test_price_of_dead_link_is_infinite(fabric):
    tagger = LinkPriceTagger()
    link = fabric.topology.link_between("n0x0", "n0x1")
    link.disable()
    assert tagger.price(link) == math.inf


def test_price_map_covers_all_links(fabric):
    tagger = LinkPriceTagger()
    prices = tagger.price_map(fabric, {("n0x0", "n0x1"): 0.95})
    assert set(prices) == set(fabric.topology.link_keys())
    hot = prices[("n0x0", "n0x1")]
    cold = prices[("n1x1", "n2x1")]
    assert hot > cold


def test_weight_fn_closure(fabric):
    tagger = LinkPriceTagger()
    weight = tagger.weight_fn({("n0x0", "n0x1"): 0.9})
    hot_link = fabric.topology.link_between("n0x0", "n0x1")
    cold_link = fabric.topology.link_between("n2x1", "n2x2")
    assert weight(hot_link) > weight(cold_link)


def test_weights_change_relative_prices(fabric):
    link = fabric.topology.link_between("n0x0", "n0x1")
    latency_only = LinkPriceTagger(weights=PriceWeights.latency_only())
    congestion_aware = LinkPriceTagger(weights=PriceWeights.congestion_aware())
    # Under latency-only pricing, utilisation is invisible.
    assert latency_only.price(link, utilisation=0.9) == pytest.approx(
        latency_only.price(link, utilisation=0.0)
    )
    assert congestion_aware.price(link, utilisation=0.9) > congestion_aware.price(
        link, utilisation=0.0
    )


# --------------------------------------------------------------------------- #
# PLP commands
# --------------------------------------------------------------------------- #
def test_plp_command_validation():
    with pytest.raises(ValueError):
        PLPCommand(PLPCommandType.LINK_ON, endpoints=("a", "a"))
    command = PLPCommand(PLPCommandType.LINK_ON, endpoints=("a", "b"))
    assert "link-on" in command.describe()


def test_reconfiguration_delays_mapping_and_scaling():
    delays = ReconfigurationDelays()
    assert delays.for_command(PLPCommandType.CREATE_LINK) == delays.link_create
    assert delays.for_command(PLPCommandType.QUERY_STATS) == 0.0
    doubled = delays.scaled(2.0)
    assert doubled.link_create == pytest.approx(2 * delays.link_create)
    with pytest.raises(ValueError):
        delays.scaled(-1)


# --------------------------------------------------------------------------- #
# Executor
# --------------------------------------------------------------------------- #
def test_split_then_create_link_conserves_lanes(fabric, executor):
    total_before = fabric.topology.total_lanes()
    split = PLPCommand(PLPCommandType.SPLIT_LINK, ("n0x0", "n0x1"), {"lanes": 1})
    result = executor.execute(split, now=0.0)
    assert result.success
    assert executor.free_lane_count == 1
    assert fabric.topology.link_between("n0x0", "n0x1").num_lanes == 1

    create = PLPCommand(PLPCommandType.CREATE_LINK, ("n0x0", "n2x2"), {"lanes": 1})
    result = executor.execute(create, now=0.0)
    assert result.success
    assert fabric.topology.has_link("n0x0", "n2x2")
    assert executor.free_lane_count == 0
    assert fabric.topology.total_lanes() == total_before


def test_create_link_fails_without_pooled_lanes(fabric, executor):
    create = PLPCommand(PLPCommandType.CREATE_LINK, ("n0x0", "n2x2"), {"lanes": 1})
    result = executor.execute(create)
    assert result.failed
    assert executor.commands_failed == 1
    assert not fabric.topology.has_link("n0x0", "n2x2")


def test_create_duplicate_link_fails(fabric, executor):
    executor.execute(PLPCommand(PLPCommandType.SPLIT_LINK, ("n0x0", "n0x1"), {"lanes": 1}))
    result = executor.execute(
        PLPCommand(PLPCommandType.CREATE_LINK, ("n0x0", "n0x1"), {"lanes": 1})
    )
    assert result.failed


def test_bundle_lanes_into_existing_link(fabric, executor):
    executor.execute(PLPCommand(PLPCommandType.SPLIT_LINK, ("n0x0", "n0x1"), {"lanes": 1}))
    before = fabric.topology.link_between("n1x1", "n1x2").num_lanes
    result = executor.execute(
        PLPCommand(PLPCommandType.BUNDLE_LANES, ("n1x1", "n1x2"), {"lanes": 1})
    )
    assert result.success
    assert fabric.topology.link_between("n1x1", "n1x2").num_lanes == before + 1


def test_remove_link_pools_all_lanes(fabric, executor):
    result = executor.execute(PLPCommand(PLPCommandType.REMOVE_LINK, ("n0x0", "n0x1")))
    assert result.success
    assert not fabric.topology.has_link("n0x0", "n0x1")
    assert executor.free_lane_count == 2


def test_set_lane_count_and_on_off(fabric, executor):
    link = fabric.topology.link_between("n0x0", "n0x1")
    executor.execute(PLPCommand(PLPCommandType.SET_LANE_COUNT, ("n0x0", "n0x1"), {"count": 1}))
    assert link.num_active_lanes == 1
    executor.execute(PLPCommand(PLPCommandType.LINK_OFF, ("n0x0", "n0x1")))
    assert not link.up
    executor.execute(PLPCommand(PLPCommandType.LINK_ON, ("n0x0", "n0x1")))
    assert link.num_active_lanes == 2


def test_set_fec_by_name_and_object(fabric, executor):
    link = fabric.topology.link_between("n0x0", "n0x1")
    executor.execute(PLPCommand(PLPCommandType.SET_FEC, ("n0x0", "n0x1"), {"scheme": "rs-544"}))
    assert link.fec.name == "rs-544"
    executor.execute(PLPCommand(PLPCommandType.SET_FEC, ("n0x0", "n0x1"), {"fec": FEC_NONE}))
    assert link.fec.name == "none"
    bad = executor.execute(
        PLPCommand(PLPCommandType.SET_FEC, ("n0x0", "n0x1"), {"scheme": "bogus"})
    )
    assert bad.failed


def test_create_and_release_bypass(fabric, executor):
    create = PLPCommand(
        PLPCommandType.CREATE_BYPASS,
        ("n0x0", "n2x2"),
        {"through": ("n0x1", "n0x2"), "capacity_bps": 50 * GBPS},
    )
    assert executor.execute(create).success
    assert fabric.bypasses.circuit_for("n0x0", "n2x2") is not None
    release = PLPCommand(PLPCommandType.RELEASE_BYPASS, ("n0x0", "n2x2"))
    assert executor.execute(release).success
    assert fabric.bypasses.circuit_for("n0x0", "n2x2") is None
    assert executor.execute(release).failed


def test_query_stats_returns_detail(fabric, executor):
    result = executor.execute(PLPCommand(PLPCommandType.QUERY_STATS, ("n0x0", "n0x1")))
    assert result.success
    assert "capacity_bps" in result.detail


def test_unknown_link_command_fails_gracefully(fabric, executor):
    result = executor.execute(PLPCommand(PLPCommandType.LINK_OFF, ("n0x0", "zzz")))
    assert result.failed
    assert executor.commands_failed == 1


def test_batch_execution_and_completion_time(fabric, executor):
    commands = [
        PLPCommand(PLPCommandType.SPLIT_LINK, ("n0x0", "n0x1"), {"lanes": 1}),
        PLPCommand(PLPCommandType.CREATE_LINK, ("n0x0", "n2x2"), {"lanes": 1}),
        PLPCommand(PLPCommandType.SET_FEC, ("n1x1", "n1x2"), {"scheme": "rs-528"}),
    ]
    results = executor.execute_batch(commands, now=1.0)
    assert all(result.success for result in results)
    completion = PLPExecutor.batch_completion_time(results)
    assert completion == pytest.approx(1.0 + executor.delays.link_create)


def test_executor_charges_reconfiguration_time(fabric, executor):
    executor.execute(PLPCommand(PLPCommandType.SET_LANE_COUNT, ("n0x0", "n0x1"), {"count": 1}))
    assert executor.total_reconfiguration_time == pytest.approx(executor.delays.lane_on_off)


def test_executor_invalidates_routes_on_topology_change(fabric, executor):
    router = fabric.router
    router.path("n0x0", "n2x2")
    before = router.invalidations
    executor.execute(PLPCommand(PLPCommandType.SPLIT_LINK, ("n0x0", "n0x1"), {"lanes": 1}))
    assert router.invalidations > before
