"""Allocator parity: incremental vs reference, pinned bit-identical.

The incremental allocator (dirty-set closure + share-heap filling + lazy
completion heap) must be indistinguishable from the reference full
recompute -- not approximately, *bit for bit*.  These tests pin that for
every registered scenario crossed with every built-in controller, and for
the resumable-run edge cases a co-simulating controller exercises
(mid-run controller registration with a stale offset, reroutes between
``run(until=...)`` calls, and completion/arrival/controller timestamp
ties).

The rack-scale scenarios run here with downsized overrides -- the
reference allocator is O(links x flows) per event, which is exactly why it
cannot run the full-size versions (see ``benchmarks/bench_fluid_scale.py``
for the speedup guard at scale).
"""

import math

import pytest

from repro.experiments.scenarios import ScenarioError, run_scenario, scenario_names
from repro.sim.flow import Flow, reset_flow_ids
from repro.sim.fluid import FluidFlowSimulator

CONTROLLERS = ("none", "static", "ecmp", "crc", "loop")

#: Downsizing overrides so the reference oracle finishes in test time.
#: Workload-affecting keys perturb the derived seed identically for both
#: allocators, so parity still compares like against like.  The topology-
#: family scenarios default to 1024 hosts; they shrink here to the same
#: dimensions the fidelity gate uses (``tests/test_backend_fidelity.py``).
SCENARIO_OVERRIDES = {
    "rack_scale_uniform": {"rows": 4, "columns": 4, "num_flows": 48},
    "trace_replay_dense": {"rows": 3, "columns": 3, "waves": 3},
    "fattree_uniform": {"pods": 4, "num_flows": 48},
    "fattree_incast": {"pods": 4, "fan_in": 8},
    "dragonfly_permutation": {"groups": 3, "routers_per_group": 3, "hosts_per_router": 2},
    "dragonfly_hotspot": {
        "groups": 3,
        "routers_per_group": 3,
        "hosts_per_router": 2,
        "num_flows": 36,
    },
}


def _run(name, controller, allocator):
    overrides = dict(SCENARIO_OVERRIDES.get(name, {}))
    overrides["controller"] = controller
    overrides["allocator"] = allocator
    return run_scenario(name, overrides, base_seed=3)


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_metrics_bit_identical_across_allocators(name):
    for controller in CONTROLLERS:
        # A controller a scenario rejects (crc is grid/torus-only) must be
        # rejected identically by both allocators -- that's parity too.
        try:
            reference = _run(name, controller, "reference")
        except ScenarioError:
            with pytest.raises(ScenarioError):
                _run(name, controller, "incremental")
            continue
        incremental = _run(name, controller, "incremental")
        assert reference["seed"] == incremental["seed"], controller
        assert reference["metrics"] == incremental["metrics"], (
            f"metrics diverged for scenario {name!r} under controller "
            f"{controller!r}"
        )


def _paired_sims(**kwargs):
    return (
        FluidFlowSimulator(allocator="reference", **kwargs),
        FluidFlowSimulator(allocator="incremental", **kwargs),
    )


def _snapshot(sim, flows, result=None):
    state = {
        "now": sim.now,
        "rates": sim.active_flow_rates(),
        "remaining": [(f.flow_id, f.bits_remaining) for f in flows],
        "fcts": [(f.flow_id, f.fct) for f in flows],
    }
    if result is not None:
        state["end_time"] = result.end_time
        state["events"] = result.events_processed
        state["bits"] = result.link_bits_carried
        state["utilisation"] = result.link_utilisation()
        state["truncated"] = result.truncated
    return state


def test_mid_run_controller_with_past_offset_fires_identically():
    # A controller registered at t=5 with start_offset=1 (already in the
    # past) must fire immediately on resume, under both allocators.
    snapshots = []
    for sim in _paired_sims():
        reset_flow_ids()
        sim.add_link("ab", 100.0)
        sim.add_link("cd", 100.0)
        flow = Flow("a", "b", 2000.0)
        sim.add_flow(flow, ["ab"])
        sim.run(until=5.0)
        ticks = []

        def controller(simulator, now, ticks=ticks):
            ticks.append(now)
            simulator.set_capacity("ab", 50.0 if len(ticks) % 2 else 150.0)

        sim.add_controller(2.0, controller, start_offset=1.0)
        result = sim.run()
        assert ticks and ticks[0] == pytest.approx(5.0)
        snapshots.append((_snapshot(sim, [flow], result), list(ticks)))
    assert snapshots[0] == snapshots[1]


def test_reroute_between_run_calls_is_identical():
    snapshots = []
    for sim in _paired_sims():
        reset_flow_ids()
        sim.add_link("slow", 10.0)
        sim.add_link("fast", 100.0)
        sim.add_link("shared", 100.0)
        mover = Flow("a", "b", 1000.0)
        rival = Flow("a", "b", 1000.0)
        sim.add_flow(mover, ["slow", "shared"])
        sim.add_flow(rival, ["shared"])
        sim.run(until=10.0)
        sim.reroute(mover.flow_id, ["fast", "shared"])
        result = sim.run()
        snapshots.append(_snapshot(sim, [mover, rival], result))
    assert snapshots[0] == snapshots[1]
    assert snapshots[0]["fcts"][0][1] is not None


def test_three_way_timestamp_tie_resolves_identically():
    # Completion (eta exactly 10.0), arrival (start_time 10.0) and a
    # controller tick (offset 10.0) collide on one timestamp.  The
    # completion must win the tie under both allocators, then the arrival
    # batch, then the tick -- all at t=10.
    snapshots = []
    for sim in _paired_sims():
        reset_flow_ids()
        sim.add_link("ab", 100.0)
        first = Flow("a", "b", 1000.0, start_time=0.0)
        second = Flow("a", "b", 500.0, start_time=10.0)
        sim.add_flow(first, ["ab"])
        sim.add_flow(second, ["ab"])
        ticks = []
        sim.add_controller(5.0, lambda s, now, ticks=ticks: ticks.append(now), start_offset=10.0)
        result = sim.run()
        assert first.fct == 10.0  # bit-exact: 1000 bits at 100 bps
        assert ticks[0] == 10.0
        snapshots.append((_snapshot(sim, [first, second], result), list(ticks)))
    assert snapshots[0] == snapshots[1]


def test_simultaneous_completions_resolve_in_admission_order():
    # Equal sizes on one bottleneck -> equal predicted completion times.
    # The reference scan picks the first-admitted flow; the heap must break
    # the tie the same way, giving identical completion event sequences.
    snapshots = []
    for sim in _paired_sims():
        reset_flow_ids()
        flows = [Flow("a", "b", 600.0) for _ in range(3)]
        sim.add_link("ab", 100.0)
        for flow in flows:
            sim.add_flow(flow, ["ab"])
        result = sim.run()
        snapshots.append(_snapshot(sim, flows, result))
    assert snapshots[0] == snapshots[1]


def test_stall_and_recovery_parity_under_failures():
    # A flow stalled by a dead link (eta = inf, so it leaves the completion
    # heap untouched) must wake identically when capacity returns.  With
    # every flow stalled there are no events, so run(until=6) leaves the
    # internal clock at the stall instant (the historical resumable-run
    # semantics: mutations between runs apply at the simulator's clock) and
    # the recovery takes effect at t=2 -- the flow finishes at t=10.
    snapshots = []
    for sim in _paired_sims():
        reset_flow_ids()
        sim.add_link("ab", 100.0)
        flow = Flow("a", "b", 1000.0)
        sim.add_flow(flow, ["ab"])
        sim.run(until=2.0)
        sim.set_enabled("ab", False)
        stalled = sim.run(until=6.0)
        assert math.isinf(sim._eta[flow.flow_id])
        assert sim.active_flow_rates()[flow.flow_id] == 0.0
        assert stalled.end_time == pytest.approx(6.0)
        assert sim.now == pytest.approx(2.0)
        sim.set_enabled("ab", True)
        result = sim.run()
        snapshots.append(_snapshot(sim, [flow], result))
    assert snapshots[0] == snapshots[1]
    assert snapshots[0]["fcts"][0][1] == pytest.approx(10.0)
