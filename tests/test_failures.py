"""Tests for failure injection and the control loop's reaction to it."""

import pytest

from repro.core.crc import ClosedRingControl, CRCConfig
from repro.core.policy import AdaptiveFecPolicy, Observation
from repro.experiments.harness import build_grid_fabric
from repro.fabric.failures import (
    FailureEvent,
    FailureInjector,
    FailureKind,
    random_failure_plan,
)
from repro.fabric.topology import canonical_key
from repro.sim.flow import Flow
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.units import megabytes, microseconds


@pytest.fixture
def fabric():
    return build_grid_fabric(3, 3, lanes_per_link=2)


def test_failure_event_validation():
    with pytest.raises(ValueError):
        FailureEvent(time=-1, kind=FailureKind.LANE_FAILURE, endpoints=("a", "b"))
    with pytest.raises(ValueError):
        FailureEvent(time=0, kind=FailureKind.LANE_FAILURE, endpoints=("a", "a"))
    with pytest.raises(ValueError):
        FailureEvent(time=0, kind=FailureKind.LANE_DEGRADATION, endpoints=("a", "b"),
                     degradation_factor=0.5)


def test_lane_degradation_raises_link_ber(fabric):
    key = ("n0x0", "n0x1")
    before = fabric.topology.link_between(*key).worst_raw_ber
    injector = FailureInjector(
        fabric, [FailureEvent(0.0, FailureKind.LANE_DEGRADATION, key, degradation_factor=1e6)]
    )
    applied = injector.apply_due(0.0)
    assert len(applied) == 1
    after = fabric.topology.link_between(*key).worst_raw_ber
    assert after > before
    assert injector.summary() == {"lane-degradation": 1}


def test_lane_failure_reduces_capacity(fabric):
    key = ("n0x0", "n0x1")
    link = fabric.topology.link_between(*key)
    before = link.capacity_bps
    injector = FailureInjector(fabric, [FailureEvent(0.0, FailureKind.LANE_FAILURE, key)])
    injector.apply_due(0.0)
    assert link.capacity_bps < before
    assert link.num_active_lanes == 1


def test_link_failure_and_recovery(fabric):
    key = ("n1x1", "n1x2")
    link = fabric.topology.link_between(*key)
    injector = FailureInjector(
        fabric,
        [
            FailureEvent(1.0, FailureKind.LINK_FAILURE, key),
            FailureEvent(2.0, FailureKind.LINK_RECOVERY, key),
        ],
    )
    assert injector.apply_due(0.5) == []
    injector.apply_due(1.0)
    assert link.capacity_bps == 0.0
    injector.apply_due(2.0)
    assert link.capacity_bps > 0.0
    assert injector.pending == 0


def test_events_applied_in_time_order(fabric):
    key_a = ("n0x0", "n0x1")
    key_b = ("n1x0", "n1x1")
    injector = FailureInjector(
        fabric,
        [
            FailureEvent(2.0, FailureKind.LANE_FAILURE, key_b),
            FailureEvent(1.0, FailureKind.LANE_FAILURE, key_a),
        ],
    )
    first = injector.apply_due(1.5)
    assert len(first) == 1
    assert first[0].endpoints == key_a


def test_failure_on_missing_link_is_ignored(fabric):
    injector = FailureInjector(
        fabric, [FailureEvent(0.0, FailureKind.LINK_FAILURE, ("n0x0", "n2x2"))]
    )
    applied = injector.apply_due(0.0)
    assert len(applied) == 1  # consumed without raising


def test_adaptive_fec_reacts_to_degraded_lane(fabric):
    key = canonical_key("n0x0", "n0x1")
    FailureInjector(
        fabric, [FailureEvent(0.0, FailureKind.LANE_DEGRADATION, key, degradation_factor=1e7)]
    ).apply_due(0.0)
    commands = AdaptiveFecPolicy().decide(
        Observation(time=0.0, fabric=fabric, power_report=fabric.power_report())
    )
    assert any(cmd.endpoints == key for cmd in commands)


def test_failure_mid_run_slows_flows_but_completes(fabric):
    simulator = FluidFlowSimulator(flow_rate_limit_bps=None)
    for key, capacity in fabric.directed_capacities().items():
        simulator.add_link(key, capacity)
    flow = Flow("n0x0", "n0x2", megabytes(8))
    path = fabric.route_keys(flow.src, flow.dst, flow.flow_id)
    simulator.add_flow(flow, path)
    # Fail one lane of the first link on the path shortly after start.
    a, b = path[0]
    healthy_capacity = fabric.topology.link_between(a, b).capacity_bps
    healthy_fct = megabytes(8) / healthy_capacity
    injector = FailureInjector(
        fabric, [FailureEvent(2e-4, FailureKind.LANE_FAILURE, (a, b))]
    )
    injector.attach(simulator, period=microseconds(100))
    simulator.run()
    assert flow.completed
    # Losing a lane mid-transfer must make the flow slower than a fully
    # healthy transfer would have been.
    assert flow.fct > healthy_fct * 1.05
    assert fabric.topology.link_between(a, b).capacity_bps < healthy_capacity


def test_crc_routes_around_failed_link(fabric):
    crc = ClosedRingControl(
        fabric,
        CRCConfig(enable_bypass=False, enable_adaptive_fec=False,
                  control_period=microseconds(100)),
    )
    key = ("n0x1", "n1x1")
    FailureInjector(fabric, [FailureEvent(0.0, FailureKind.LINK_FAILURE, key)]).apply_due(0.0)
    # The dead link is priced at infinity, and once the router uses the
    # CRC's price tags as weights it steers around it.
    prices = crc.tagger.price_map(fabric)
    assert prices[canonical_key(*key)] == float("inf")
    fabric.set_router_weight(crc.tagger.weight_fn())
    path = fabric.router.path("n0x1", "n1x1")
    assert len(path) > 2
    used = {canonical_key(path[i], path[i + 1]) for i in range(len(path) - 1)}
    assert canonical_key(*key) not in used


def test_random_failure_plan_is_reproducible(fabric):
    first = random_failure_plan(fabric, seed=5, num_events=6, horizon=0.5)
    second = random_failure_plan(fabric, seed=5, num_events=6, horizon=0.5)
    assert [(e.time, e.kind, e.endpoints) for e in first] == [
        (e.time, e.kind, e.endpoints) for e in second
    ]
    assert all(e.time <= 0.5 for e in first)
    assert all(fabric.topology.has_link(*e.endpoints) for e in first)
    with pytest.raises(ValueError):
        random_failure_plan(fabric, seed=1, num_events=-1)
    with pytest.raises(ValueError):
        random_failure_plan(fabric, seed=1, kinds=[])


def test_injector_attach_validates_period(fabric):
    injector = FailureInjector(fabric, [])
    with pytest.raises(ValueError):
        injector.attach(FluidFlowSimulator(), period=0.0)


def test_experiment_with_injected_failures_completes(fabric):
    flows = [Flow("n0x0", "n2x2", megabytes(2)), Flow("n2x0", "n0x2", megabytes(2))]
    plan = random_failure_plan(fabric, seed=3, num_events=3, horizon=1e-3)
    injector = FailureInjector(fabric, plan)
    simulator = FluidFlowSimulator()
    for key, capacity in fabric.directed_capacities().items():
        simulator.add_link(key, capacity)
    for flow in flows:
        simulator.add_flow(flow, fabric.route_keys(flow.src, flow.dst, flow.flow_id))
    injector.attach(simulator, period=microseconds(200))
    simulator.run()
    assert all(flow.completed for flow in flows)
