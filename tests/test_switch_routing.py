"""Tests for switch models and routing."""

import pytest

from repro.fabric.routing import (
    Router,
    RoutingPolicy,
    ecmp_paths,
    hop_weight,
    inverse_capacity_weight,
    k_shortest_paths,
    latency_weight,
    path_directed_keys,
    path_links,
    shortest_path,
)
from repro.fabric.switch import CutThroughSwitch, StoreAndForwardSwitch, SwitchModel
from repro.fabric.topology import TopologyBuilder
from repro.sim.packet import Packet
from repro.sim.units import bits_from_bytes


# --------------------------------------------------------------------------- #
# Switch models
# --------------------------------------------------------------------------- #
def test_cut_through_latency_independent_of_payload():
    switch = CutThroughSwitch("sw")
    small = switch.forwarding_latency(bits_from_bytes(64))
    large = switch.forwarding_latency(bits_from_bytes(1500))
    assert small == pytest.approx(large)


def test_cut_through_latency_components():
    model = SwitchModel(pipeline_latency=400e-9, header_bits=512, port_rate_bps=100e9)
    switch = CutThroughSwitch("sw", model)
    expected = 512 / 100e9 + 400e-9
    assert switch.forwarding_latency(bits_from_bytes(1500)) == pytest.approx(expected)


def test_tiny_packet_decision_uses_packet_size():
    switch = CutThroughSwitch("sw")
    tiny = switch.forwarding_latency(100)
    assert tiny < switch.forwarding_latency(bits_from_bytes(1500))


def test_store_and_forward_pays_full_serialization_per_hop():
    cut = CutThroughSwitch("a")
    snf = StoreAndForwardSwitch("b")
    size = bits_from_bytes(1500)
    assert snf.forwarding_latency(size) > cut.forwarding_latency(size)
    assert snf.forwarding_latency(size) == pytest.approx(
        size / snf.model.port_rate_bps + snf.model.pipeline_latency
    )


def test_switch_queueing_delay():
    switch = CutThroughSwitch("sw")
    assert switch.queueing_delay(0) == 0
    assert switch.queueing_delay(1e6) == pytest.approx(1e6 / switch.model.port_rate_bps)
    with pytest.raises(ValueError):
        switch.queueing_delay(-1)


def test_switch_accept_counts_and_drops():
    model = SwitchModel(buffer_bits=100)
    switch = CutThroughSwitch("sw", model)
    assert switch.accept(Packet("a", "b", 80))
    assert not switch.accept(Packet("a", "b", 80))
    assert switch.packets_forwarded == 1
    assert switch.packets_dropped == 1


def test_switch_model_validation():
    with pytest.raises(ValueError):
        SwitchModel(pipeline_latency=-1)
    with pytest.raises(ValueError):
        SwitchModel(port_rate_bps=0)


# --------------------------------------------------------------------------- #
# Path computation
# --------------------------------------------------------------------------- #
@pytest.fixture
def grid():
    return TopologyBuilder(lanes_per_link=2).grid(3, 3)


def test_shortest_path_endpoints(grid):
    path = shortest_path(grid, "n0x0", "n2x2")
    assert path[0] == "n0x0"
    assert path[-1] == "n2x2"
    assert len(path) == 5  # 4 hops


def test_k_shortest_paths_ordering(grid):
    paths = k_shortest_paths(grid, "n0x0", "n2x2", k=3)
    assert len(paths) == 3
    lengths = [len(p) for p in paths]
    assert lengths == sorted(lengths)
    with pytest.raises(ValueError):
        k_shortest_paths(grid, "n0x0", "n2x2", k=0)


def test_ecmp_paths_all_minimum_cost(grid):
    paths = ecmp_paths(grid, "n0x0", "n1x1")
    assert len(paths) == 2  # right-then-down and down-then-right
    assert all(len(p) == 3 for p in paths)


def test_weight_functions(grid):
    link = grid.link_between("n0x0", "n0x1")
    assert hop_weight(link) == 1.0
    assert latency_weight(link) == pytest.approx(link.one_way_latency)
    assert inverse_capacity_weight(link) == pytest.approx(1.0 / link.capacity_bps)
    link.disable()
    assert inverse_capacity_weight(link) == float("inf")


def test_path_links_and_directed_keys(grid):
    path = ["n0x0", "n0x1", "n0x2"]
    links = path_links(grid, path)
    assert len(links) == 2
    assert links[0].connects("n0x0", "n0x1")
    assert path_directed_keys(path) == [("n0x0", "n0x1"), ("n0x1", "n0x2")]


# --------------------------------------------------------------------------- #
# Router
# --------------------------------------------------------------------------- #
def test_router_shortest_policy(grid):
    router = Router(grid)
    path = router.path("n0x0", "n2x2")
    assert router.hop_count("n0x0", "n2x2") == 4
    assert path[0] == "n0x0" and path[-1] == "n2x2"


def test_router_rejects_same_src_dst(grid):
    with pytest.raises(ValueError):
        Router(grid).path("n0x0", "n0x0")


def test_router_cache_hit_and_invalidate(grid):
    router = Router(grid)
    router.path("n0x0", "n2x2")
    router.path("n0x0", "n2x2")
    assert router.cache_hits == 1
    assert router.cache_misses == 1
    router.invalidate()
    router.path("n0x0", "n2x2")
    assert router.cache_misses == 2
    assert router.invalidations == 1


def test_router_ecmp_pins_flow_to_path(grid):
    router = Router(grid, policy=RoutingPolicy.ECMP)
    first = router.path("n0x0", "n2x2", flow_id=7)
    again = router.path("n0x0", "n2x2", flow_id=7)
    assert first == again
    candidates = router.all_paths("n0x0", "n2x2")
    assert len(candidates) >= 2
    other = router.path("n0x0", "n2x2", flow_id=8)
    assert other in candidates


def test_router_k_shortest_policy(grid):
    router = Router(grid, policy=RoutingPolicy.K_SHORTEST, k=3)
    assert len(router.all_paths("n0x0", "n2x2")) == 3


def test_router_weight_change_reroutes(grid):
    router = Router(grid)
    path_before = router.path("n0x0", "n0x2")
    assert len(path_before) == 3
    # Make the direct row links unattractive.
    expensive = {("n0x0", "n0x1"), ("n0x1", "n0x2")}

    def weight(link):
        return 100.0 if set(link.endpoints) in [set(p) for p in expensive] else 1.0

    router.set_weight_fn(weight)
    path_after = router.path("n0x0", "n0x2")
    assert path_after != path_before
    assert router.path_cost(path_after) < router.path_cost(path_before)


def test_router_path_cost(grid):
    router = Router(grid)
    assert router.path_cost(["n0x0", "n0x1", "n0x2"]) == pytest.approx(2.0)
