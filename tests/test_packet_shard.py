"""Sharded packet engine: bit-identical to the event oracle, any shard count.

``engine="sharded"`` partitions flows by traffic closure across batched
cores (:mod:`repro.sim.packet_shard`).  ``shards`` must be a pure
performance knob: for every shard count these tests pin snapshot
identity with the event engine on every small scenario x controller,
across ``run(until=...)`` resume cuts (which slice across the
coordinator's epoch barriers), under mid-run facade mutations (which
must land in the owning shard without collapsing the partition), and
through the demotion path (external ``schedule`` callbacks replay the
journal onto a monolithic core -- still bit-identical).  Process
dispatch is exercised explicitly: fanning shards out to spawned workers
and adopting the returned cores must be indistinguishable from inline
execution.
"""

import random
import re

import pytest

from test_packet_parity import (
    BASE_OVERRIDES,
    CONTROLLERS,
    SCENARIO_OVERRIDES,
    _backend_snapshot,
    _build_backend,
    _record_snapshot,
    _transport_for,
    small_scenarios,
)

from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.harness import build_grid_fabric
from repro.experiments.scenarios import (
    ScenarioError,
    controller_config_from_params,
    derive_run_seed,
    materialize_run,
    resolve_params,
)
from repro.fabric.packetsim import PacketBackend
from repro.sim.engine import SimulationError
from repro.sim.flow import Flow, reset_flow_ids

SHARD_COUNTS = (1, 2, 4)


def _scenario_record(scenario, controller, engine, shards=1):
    overrides = dict(BASE_OVERRIDES, **SCENARIO_OVERRIDES.get(scenario.name, {}))
    overrides.update(
        controller=controller, backend="packet", engine=engine, shards=shards
    )
    params = resolve_params(scenario, overrides)
    seed = derive_run_seed(3, scenario.name, params)
    fabric, flows, failure_events = materialize_run(scenario, params, seed)
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=scenario.name,
            controller=controller,
            controller_config=controller_config_from_params(controller, params),
            failures=tuple(failure_events or ()),
            backend="packet",
            engine=engine,
            shards=shards,
            transport=_transport_for(scenario),
        )
    )
    return seed, record


def _quadrant_backend(engine, shards=1, rows=4, columns=4, flows_per_island=12,
                      seed=7):
    """Backend whose workload is four disjoint quadrant islands.

    Flows stay inside their grid quadrant, so shortest-path routes never
    leave it: the traffic closure has four components and ``shards=4``
    yields four genuinely independent shards.
    """
    reset_flow_ids()
    fabric = build_grid_fabric(rows, columns)
    quads = {}
    for node in fabric.topology.nodes():
        name = getattr(node, "name", node)
        coords = re.search(r"(\d+)x(\d+)", name)
        r, c = int(coords.group(1)), int(coords.group(2))
        quads.setdefault((r >= rows // 2, c >= columns // 2), []).append(name)
    assert len(quads) == 4
    flows = []
    for q, (_, names) in enumerate(sorted(quads.items())):
        rng = random.Random(seed + q)
        for _ in range(flows_per_island):
            src, dst = rng.sample(sorted(names), 2)
            flows.append(
                Flow(
                    src=src,
                    dst=dst,
                    size_bits=rng.uniform(0.5, 2.0) * 2e6,
                    start_time=rng.uniform(0.0, 2e-4),
                )
            )
    kwargs = {"shards": shards} if engine == "sharded" else {}
    return PacketBackend(fabric, flows, engine=engine, **kwargs), fabric, flows


# --------------------------------------------------------------------------- #
# Shard-count invariance: every scenario x controller, shard counts 1/2/4
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("scenario", small_scenarios(), ids=lambda s: s.name)
def test_scenario_metrics_bit_identical_for_every_shard_count(scenario):
    for controller in CONTROLLERS:
        try:
            seed_event, event = _scenario_record(scenario, controller, "event")
        except ScenarioError:
            with pytest.raises(ScenarioError):
                _scenario_record(scenario, controller, "sharded")
            continue
        reference = _record_snapshot(event)
        for shards in SHARD_COUNTS:
            seed_sharded, sharded = _scenario_record(
                scenario, controller, "sharded", shards=shards
            )
            assert seed_event == seed_sharded, (controller, shards)
            assert reference == _record_snapshot(sharded), (
                f"sharded engine diverged from the event oracle for "
                f"scenario {scenario.name!r}, controller {controller!r}, "
                f"shards={shards}"
            )


# --------------------------------------------------------------------------- #
# Resume cuts across epoch barriers
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_resume_cuts_cross_epoch_barriers(shards):
    # Each run(until) is one coordinator epoch; arbitrary horizon cuts
    # must leave the merged state bit-identical to the event engine at
    # every barrier, and the continuation must not depend on where the
    # previous epoch ended.
    cuts = (9e-5, 2.1e-4, 3.6e-4, None)
    stages = {}
    for engine, kwargs in (("event", {}), ("sharded", {"shards": shards})):
        backend, _, _ = _build_backend(engine, **kwargs)
        legs = []
        for cut in cuts:
            result = backend.run(until=cut)
            legs.append(_backend_snapshot(backend, result))
            if cut is not None:
                assert not backend.transport.finished
        stages[engine] = legs
    for cut, event_leg, sharded_leg in zip(cuts, stages["event"], stages["sharded"]):
        assert event_leg == sharded_leg, f"diverged at cut {cut!r}"


def test_quadrant_islands_split_into_four_shards():
    backend, _, flows = _quadrant_backend("sharded", shards=4)
    core = backend.network
    assert core.shard_count == 4
    assert {core.shard_of(f.flow_id) for f in flows} == {0, 1, 2, 3}
    # The partition must respect traffic closures: two flows whose routes
    # share an undirected link can contend, so they must share a shard.
    links_of = {
        f.flow_id: {frozenset(key) for key in backend.route_of(f.flow_id)}
        for f in flows
    }
    for a in flows:
        for b in flows:
            if a.flow_id < b.flow_id and links_of[a.flow_id] & links_of[b.flow_id]:
                assert core.shard_of(a.flow_id) == core.shard_of(b.flow_id)
    # Lookahead bound: the soonest any boundary packet could cross.
    links = backend.fabric.topology.links()
    expected = min(link.propagation_delay + link.phy_latency for link in links)
    assert core.conservative_lookahead == expected

    reference, _, _ = _quadrant_backend("event")
    ref_snap = _backend_snapshot(reference, reference.run())
    snap = _backend_snapshot(backend, backend.run())
    assert snap == ref_snap


# --------------------------------------------------------------------------- #
# Mid-run mutations: facade calls land in the owning shard
# --------------------------------------------------------------------------- #
def test_midrun_facade_mutations_land_in_correct_shard():
    snaps = {}
    for engine, kwargs in (("event", {}), ("sharded", {"shards": 4})):
        backend, _, flows = _quadrant_backend(engine, **kwargs)
        backend.run(until=1e-4)
        # Mutate a link on flow 0's route: capacity down, then a flap.
        key = backend.route_of(flows[0].flow_id)[0]
        if engine == "sharded":
            core = backend.network
            assert core.shard_count == 4, "mutations must not demote"
            owner = core.shard_of(flows[0].flow_id)
            assert core._owner[key] == owner
        backend.set_capacity(key, backend._capacities[key] * 0.5)
        backend.set_enabled(key, False)
        backend.run(until=2.5e-4)
        backend.set_enabled(key, True)
        result = backend.run()
        if engine == "sharded":
            assert backend.network.shard_count == 4
            # The owner's port absorbed the capacity mutation.
            assert backend.network._bins[owner]._ports[key].capacity_bps == (
                backend._capacities[key]
            )
        snaps[engine] = _backend_snapshot(backend, result)
    assert snaps["event"] == snaps["sharded"]


def test_midrun_controller_attach_demotes_bit_identically():
    # An external periodic callback needs the global calendar; attaching
    # one mid-run demotes the coordinator (journal replay onto one
    # monolithic core) and the rest of the run must still match the
    # event engine bit for bit.
    snaps = {}
    ticks = {}
    for engine, kwargs in (("event", {}), ("sharded", {"shards": 4})):
        backend, _, _ = _quadrant_backend(engine, **kwargs)
        backend.run(until=1.2e-4)
        if engine == "sharded":
            assert backend.network.shard_count == 4
        calls = []

        def controller(b, t, calls=calls):
            calls.append(t)
            key = sorted(b.links())[0]
            b.set_capacity(key, b._capacities[key] * 0.9)

        backend.add_controller(1e-4, controller)
        if engine == "sharded":
            assert backend.network.shard_count == 1, "attach demotes"
        result = backend.run()
        snaps[engine] = _backend_snapshot(backend, result)
        ticks[engine] = calls
    assert ticks["event"] == ticks["sharded"]
    assert snaps["event"] == snaps["sharded"]


def test_cross_shard_reroute_demotes_bit_identically():
    # Reroute an island flow through the opposite island's quadrant:
    # the detour leaves the flow's traffic closure, which a spatial
    # partition cannot honour, so the coordinator must demote (journal
    # replay onto one monolithic core) and stay bit-identical.
    snaps = {}
    for engine, kwargs in (("event", {}), ("sharded", {"shards": 4})):
        backend, fabric, flows = _quadrant_backend(engine, **kwargs)
        backend.run(until=1e-4)
        victim, far = flows[0], flows[-1]
        left = list(fabric.router.path(victim.src, far.src))
        right = list(fabric.router.path(far.src, victim.dst))
        nodes = left + right[1:]
        detour = list(zip(nodes[:-1], nodes[1:]))
        if engine == "sharded":
            assert backend.network.shard_count == 4
        backend.reroute(victim.flow_id, detour)
        if engine == "sharded":
            assert backend.network.shard_count == 1, "cross-shard reroute demotes"
        result = backend.run()
        snaps[engine] = _backend_snapshot(backend, result)
    assert snaps["event"] == snaps["sharded"]


# --------------------------------------------------------------------------- #
# Process dispatch: spawned workers must be invisible in the results
# --------------------------------------------------------------------------- #
def test_process_dispatch_matches_inline(monkeypatch):
    reference, _, _ = _quadrant_backend("event")
    ref_snap = _backend_snapshot(reference, reference.run())

    monkeypatch.setenv("REPRO_SHARD_DISPATCH", "process")
    backend, _, _ = _quadrant_backend("sharded", shards=4)
    snap = _backend_snapshot(backend, backend.run())
    assert snap == ref_snap
    # Adopted cores keep working in-process: mutate and finish inline.
    monkeypatch.setenv("REPRO_SHARD_DISPATCH", "inline")
    assert backend.network.shard_count == 4


# --------------------------------------------------------------------------- #
# Validation and demotion edges
# --------------------------------------------------------------------------- #
def test_shards_require_sharded_engine():
    reset_flow_ids()
    fabric = build_grid_fabric(3, 3)
    names = [getattr(n, "name", n) for n in fabric.topology.nodes()]
    flows = [Flow(src=names[0], dst=names[-1], size_bits=1e6)]
    for engine in ("event", "batched"):
        with pytest.raises(ValueError, match="requires engine='sharded'"):
            PacketBackend(fabric, flows, engine=engine, shards=2)
    with pytest.raises(ValueError, match="shards must be >= 1"):
        PacketBackend(fabric, flows, engine="sharded", shards=0)


def test_scenario_layer_rejects_shards_without_sharded_engine():
    scenario = small_scenarios()[0]
    with pytest.raises(ScenarioError, match="requires engine='sharded'"):
        resolve_params(scenario, {"backend": "packet", "shards": 2})


def test_truncated_sharded_drive_blocks_demotion():
    # A max_events-truncated multi-shard drive stops each shard at its
    # own per-shard budget -- states the monolithic replay cannot visit
    # -- so a later demotion trigger must fail loudly, not corrupt.
    backend, _, _ = _quadrant_backend("sharded", shards=4)
    backend.network.drive(None, 40)
    with pytest.raises(SimulationError, match="truncated"):
        backend.add_controller(1e-4, lambda b, t: None)
