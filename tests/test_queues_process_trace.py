"""Tests for queues, processes, random streams and tracing."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.process import GeneratorProcess, PeriodicProcess, Process
from repro.sim.queues import CalendarQueue, DropTailQueue, PriorityDropTailQueue
from repro.sim.random import RandomStreams
from repro.sim.trace import NullTrace, TraceRecorder


# --------------------------------------------------------------------------- #
# DropTailQueue
# --------------------------------------------------------------------------- #
def test_queue_fifo_order():
    queue = DropTailQueue()
    first = Packet("a", "b", 10)
    second = Packet("a", "b", 20)
    queue.enqueue(first)
    queue.enqueue(second)
    assert queue.dequeue() is first
    assert queue.dequeue() is second
    assert queue.dequeue() is None


def test_queue_occupancy_tracking():
    queue = DropTailQueue(capacity_bits=100)
    queue.enqueue(Packet("a", "b", 40))
    queue.enqueue(Packet("a", "b", 30))
    assert queue.occupancy_bits == 70
    assert queue.occupancy_packets == 2
    assert queue.occupancy_fraction() == pytest.approx(0.7)
    queue.dequeue()
    assert queue.occupancy_bits == 30


def test_queue_drop_on_bit_overflow():
    queue = DropTailQueue(capacity_bits=50)
    assert queue.enqueue(Packet("a", "b", 40)) is True
    assert queue.enqueue(Packet("a", "b", 20)) is False
    assert queue.stats.dropped == 1
    assert queue.stats.drop_fraction() == pytest.approx(0.5)


def test_queue_drop_on_packet_overflow():
    queue = DropTailQueue(capacity_packets=1)
    assert queue.enqueue(Packet("a", "b", 1))
    assert not queue.enqueue(Packet("a", "b", 1))


def test_queue_rejects_invalid_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(capacity_bits=0)
    with pytest.raises(ValueError):
        DropTailQueue(capacity_packets=0)


def test_queue_clear():
    queue = DropTailQueue()
    queue.enqueue(Packet("a", "b", 10))
    queue.enqueue(Packet("a", "b", 10))
    assert queue.clear() == 2
    assert queue.empty
    assert queue.occupancy_bits == 0


def test_queue_peek_does_not_remove():
    queue = DropTailQueue()
    packet = Packet("a", "b", 10)
    queue.enqueue(packet)
    assert queue.peek() is packet
    assert queue.occupancy_packets == 1


# --------------------------------------------------------------------------- #
# PriorityDropTailQueue
# --------------------------------------------------------------------------- #
def test_priority_queue_serves_high_priority_first():
    queue = PriorityDropTailQueue(levels=2)
    low = Packet("a", "b", 10, priority=1)
    high = Packet("a", "b", 10, priority=0)
    queue.enqueue(low)
    queue.enqueue(high)
    assert queue.dequeue() is high
    assert queue.dequeue() is low


def test_priority_queue_unknown_priority_clamped():
    queue = PriorityDropTailQueue(levels=2)
    packet = Packet("a", "b", 10, priority=7)
    assert queue.level_for(packet) == 1
    negative = Packet("a", "b", 10, priority=-3)
    assert queue.level_for(negative) == 0


def test_priority_queue_aggregate_stats():
    queue = PriorityDropTailQueue(levels=2)
    queue.enqueue(Packet("a", "b", 10, priority=0))
    queue.enqueue(Packet("a", "b", 10, priority=1))
    queue.dequeue()
    assert queue.stats.enqueued == 2
    assert queue.stats.dequeued == 1
    assert queue.occupancy_packets == 1
    assert not queue.empty


def test_priority_queue_rejects_bad_levels():
    with pytest.raises(ValueError):
        PriorityDropTailQueue(levels=0)


# --------------------------------------------------------------------------- #
# CalendarQueue
# --------------------------------------------------------------------------- #
def test_calendar_queue_pop_until():
    calendar = CalendarQueue()
    calendar.push(3.0, "c")
    calendar.push(1.0, "a")
    calendar.push(2.0, "b")
    ready = calendar.pop_until(2.0)
    assert [item for _, item in ready] == ["a", "b"]
    assert len(calendar) == 1
    assert calendar.peek_time() == 3.0


# --------------------------------------------------------------------------- #
# Processes
# --------------------------------------------------------------------------- #
def test_process_schedule_helper():
    sim = Simulator()
    fired = []

    class Ping(Process):
        def start(self):
            self.schedule(1.0, lambda: fired.append(self.now))

    Ping(sim, "ping").start()
    sim.run()
    assert fired == [1.0]


def test_generator_process_yields_delays():
    sim = Simulator()
    times = []

    def behaviour(proc):
        times.append(proc.now)
        yield 1.0
        times.append(proc.now)
        yield 2.0
        times.append(proc.now)

    proc = GeneratorProcess(sim, "script", behaviour)
    proc.start()
    sim.run()
    assert times == [0.0, 1.0, 3.0]
    assert proc.finished


def test_generator_process_negative_delay_raises():
    sim = Simulator()

    def behaviour(proc):
        yield -1.0

    GeneratorProcess(sim, "bad", behaviour).start()
    with pytest.raises(ValueError):
        sim.run()


def test_periodic_process_fires_at_period():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(sim, "tick", period=1.0, callback=ticks.append, max_iterations=3)
    proc.start()
    sim.run()
    assert ticks == [0.0, 1.0, 2.0]
    assert proc.iterations == 3


def test_periodic_process_stop():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(sim, "tick", period=1.0, callback=ticks.append)
    proc.start()
    sim.run(until=2.5)
    proc.stop()
    sim.run(until=10.0)
    assert len(ticks) == 3  # t=0, 1, 2


def test_periodic_process_rejects_bad_period():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicProcess(sim, "x", period=0.0, callback=lambda t: None)


# --------------------------------------------------------------------------- #
# RandomStreams
# --------------------------------------------------------------------------- #
def test_random_streams_are_reproducible():
    a = RandomStreams(42)
    b = RandomStreams(42)
    assert a.uniform("x", 0, 1) == b.uniform("x", 0, 1)
    assert a.exponential("y", 2.0) == b.exponential("y", 2.0)


def test_random_streams_independent_by_name():
    streams = RandomStreams(1)
    streams.uniform("a", 0, 1)
    first = RandomStreams(1)
    # Drawing from stream "a" must not perturb stream "b".
    assert streams.uniform("b", 0, 1) == first.uniform("b", 0, 1)


def test_random_streams_different_seeds_differ():
    assert RandomStreams(1).uniform("x", 0, 1) != RandomStreams(2).uniform("x", 0, 1)


def test_derangement_has_no_fixed_points():
    streams = RandomStreams(7)
    result = streams.derangement("d", 10)
    assert sorted(result) == list(range(10))
    assert all(result[i] != i for i in range(10))


def test_derangement_requires_two_items():
    with pytest.raises(ValueError):
        RandomStreams(0).derangement("d", 1)


def test_choice_and_shuffled():
    streams = RandomStreams(3)
    options = ["a", "b", "c"]
    assert streams.choice("c", options) in options
    shuffled = streams.shuffled("s", options)
    assert sorted(shuffled) == options
    with pytest.raises(ValueError):
        streams.choice("c", [])


def test_spawn_creates_independent_family():
    parent = RandomStreams(5)
    child_a = parent.spawn("alpha")
    child_b = parent.spawn("beta")
    assert child_a.seed != child_b.seed
    assert RandomStreams(5).spawn("alpha").seed == child_a.seed


def test_pareto_positive_and_validates():
    streams = RandomStreams(11)
    assert streams.pareto("p", 1.5, 100.0) > 100.0
    with pytest.raises(ValueError):
        streams.pareto("p", 0, 1)


# --------------------------------------------------------------------------- #
# TraceRecorder
# --------------------------------------------------------------------------- #
def test_trace_record_and_query():
    trace = TraceRecorder()
    trace.record(1.0, "flow_started", flow_id=1)
    trace.record(2.0, "flow_completed", flow_id=1, fct=1.0)
    trace.record(3.0, "flow_started", flow_id=2)
    assert len(trace) == 3
    assert trace.count("flow_started") == 2
    assert trace.first("flow_started").time == 1.0
    assert trace.last("flow_started").time == 3.0
    assert trace.categories() == ["flow_completed", "flow_started"]
    assert len(trace.between(1.5, 2.5)) == 1
    assert trace.where(lambda r: r.get("flow_id") == 2)[0].time == 3.0


def test_trace_capacity_limit():
    trace = TraceRecorder(capacity=2)
    for index in range(5):
        trace.record(float(index), "tick")
    assert len(trace) == 2
    assert trace.dropped_records == 3


def test_trace_disabled_records_nothing():
    trace = TraceRecorder(enabled=False)
    trace.record(1.0, "tick")
    assert len(trace) == 0


def test_null_trace_is_silent():
    trace = NullTrace()
    trace.record(1.0, "tick", value=3)
    assert len(trace) == 0


def test_trace_csv_export():
    trace = TraceRecorder()
    trace.record(1.0, "a", x=1)
    trace.record(2.0, "b", y=2)
    csv_text = trace.to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "time,category,x,y"
    assert len(lines) == 3


def test_trace_clear():
    trace = TraceRecorder()
    trace.record(1.0, "a")
    trace.clear()
    assert len(trace) == 0
