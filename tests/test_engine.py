"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator, SimulationError


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_invalid_start_time_rejected():
    with pytest.raises(ValueError):
        Simulator(start_time=-1.0)
    with pytest.raises(ValueError):
        Simulator(start_time=float("nan"))


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1e-6, lambda: fired.append(sim.now))
    executed = sim.run()
    assert executed == 1
    assert fired == [pytest.approx(1e-6)]
    assert sim.now == pytest.approx(1e-6)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3e-6, lambda: order.append("c"))
    sim.schedule(1e-6, lambda: order.append("a"))
    sim.schedule(2e-6, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_tie_break_by_priority_then_fifo():
    sim = Simulator()
    order = []
    sim.schedule(1e-6, lambda: order.append("second"), priority=1)
    sim.schedule(1e-6, lambda: order.append("first"), priority=0)
    sim.schedule(1e-6, lambda: order.append("third"), priority=1)
    sim.run()
    assert order == ["first", "second", "third"]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1e-6, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5e-6, lambda: None)


def test_schedule_non_finite_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_at(float("inf"), lambda: None)


def test_schedule_non_callable_raises():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.schedule(1.0, "not-callable")


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=2.0)
    assert sim.now == 2.0


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("late"))
    sim.run(until=1.0)
    assert fired == []
    assert sim.pending == 1
    sim.run(until=10.0)
    assert fired == ["late"]


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run(until=3.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append(sim.now)
        if depth > 0:
            sim.schedule(1.0, chain, depth - 1)

    sim.schedule(1.0, chain, 3)
    sim.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_stop_interrupts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending == 1


def test_max_events_bound():
    sim = Simulator()
    for index in range(10):
        sim.schedule(index + 1.0, lambda: None)
    executed = sim.run(max_events=4)
    assert executed == 4
    assert sim.pending == 6


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.schedule(3.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    assert sim.peek() == pytest.approx(1.0)


def test_peek_skips_cancelled_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek() == pytest.approx(2.0)


def test_counters_and_snapshot():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    handle = sim.schedule(2.0, lambda: None)
    handle.cancel()
    sim.run()
    snap = sim.snapshot()
    assert snap["events_scheduled"] == 2
    assert snap["events_executed"] == 1
    assert snap["pending"] == 0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as error:
            errors.append(error)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_drain_runs_everything():
    sim = Simulator()
    fired = []
    for index in range(20):
        sim.schedule(float(index), fired.append, index)
    sim.drain()
    assert fired == list(range(20))


def test_event_args_and_kwargs_passed_through():
    sim = Simulator()
    seen = {}
    sim.schedule(1.0, lambda a, b=None: seen.update({"a": a, "b": b}), 10, b=20)
    sim.run()
    assert seen == {"a": 10, "b": 20}
