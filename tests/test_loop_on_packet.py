"""Regression suite for the packet backend's control surface.

Three behaviour changes landed together when the closed control loop
became a first-class citizen of :class:`~repro.fabric.packetsim.PacketBackend`,
and each is pinned here:

* ``instantaneous_link_utilisation``/``instantaneous_link_load`` are now
  *occupancy-derived* -- a work-conserving FIFO port either serves at its
  full link rate or sits idle, so the instantaneous signal is exactly 0/1
  (times capacity).  The old since-last-observation average survives as
  ``windowed_link_utilisation``; controllers (the CRC included) observe
  the new signal.
* ``set_capacity``/``add_link`` are eager: a live capacity change reshapes
  the port's FIFO drain deadline *at the mutation instant* and changes
  drop accounting from then on, instead of only feeding report integrals.
* ``set_enabled`` really disables a directed link (everything offered is
  dropped), the packet analogue of the fluid model's zero-effective-
  capacity disabled state that PLP training windows rely on.
"""

import pytest

from repro.core.crc import ClosedRingControl, CRCConfig
from repro.experiments.harness import build_grid_fabric
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.packetsim import PacketBackend
from repro.fabric.switch import SwitchModel
from repro.fabric.topology import TopologyBuilder
from repro.phy.link import Link
from repro.sim.flow import Flow
from repro.sim.transport import TransportConfig
from repro.sim.units import bits_from_bytes

MTU_BITS = bits_from_bytes(1500)


def line_fabric(nodes=4, lanes=4, buffer_bytes=None):
    config = FabricConfig()
    if buffer_bytes is not None:
        config = FabricConfig(
            switch_model=SwitchModel(buffer_bits=bits_from_bytes(buffer_bytes))
        )
    return Fabric(TopologyBuilder(lanes_per_link=lanes).line(nodes), config)


# --------------------------------------------------------------------------- #
# Instantaneous telemetry is occupancy-derived
# --------------------------------------------------------------------------- #
def test_instantaneous_utilisation_is_occupancy_derived():
    """Mid-transmission the port is busy (1.0, load == capacity); after the
    drain it is idle (0.0) -- never a window average in between."""
    fabric = line_fabric(nodes=2)
    flow = Flow("n0", "n1", size_bits=40 * MTU_BITS)
    backend = PacketBackend(
        fabric, [flow], transport=TransportConfig(window_packets=8)
    )
    key = ("n0", "n1")
    capacity = backend.links()[key]
    serialization = MTU_BITS / capacity

    backend.run(until=2.5 * serialization)  # inside the initial 8-packet burst
    utilisation = backend.instantaneous_link_utilisation()
    load = backend.instantaneous_link_load()
    assert set(utilisation.values()) <= {0.0, 1.0}
    assert utilisation[key] == 1.0
    assert load[key] == pytest.approx(capacity)

    backend.run()
    assert flow.completed
    assert all(v == 0.0 for v in backend.instantaneous_link_utilisation().values())
    assert all(v == 0.0 for v in backend.instantaneous_link_load().values())


def test_windowed_utilisation_remains_the_old_average():
    """The pre-change signal is still available under its new name, and it
    disagrees with the instantaneous one exactly where a window average
    must: after the run the window says "partially used", the instant says
    "idle"."""
    fabric = line_fabric(nodes=2)
    flow = Flow("n0", "n1", size_bits=40 * MTU_BITS)
    backend = PacketBackend(fabric, [flow])
    key = ("n0", "n1")
    backend.run()
    assert flow.completed
    windowed = backend.windowed_link_utilisation()
    assert 0.0 < windowed[key] <= 1.0
    assert backend.instantaneous_link_utilisation()[key] == 0.0


def test_crc_on_packet_observes_instantaneous_rates():
    """The CRC's recorded per-tick max utilisation on the packet backend is
    the occupancy indicator -- exactly 0.0 or 1.0 -- not the fractional
    windowed average it used to observe."""
    fabric = build_grid_fabric(2, 2)
    flows = [
        Flow("n0x0", "n1x1", size_bits=400 * MTU_BITS),
        Flow("n1x0", "n0x1", size_bits=400 * MTU_BITS),
    ]
    backend = PacketBackend(fabric, flows)
    crc = ClosedRingControl(fabric, CRCConfig(grid_rows=2, grid_columns=2))
    crc.attach(backend, period=1e-5)
    backend.run()
    assert all(flow.completed for flow in flows)
    observed = [iteration.max_utilisation for iteration in crc.iterations]
    assert observed, "the CRC never ticked"
    assert all(value in (0.0, 1.0) for value in observed)
    assert any(value == 1.0 for value in observed)


# --------------------------------------------------------------------------- #
# Eager set_capacity / add_link
# --------------------------------------------------------------------------- #
def test_set_capacity_reshapes_drain_time_at_the_mutation_instant():
    """Halving a port's service rate doubles its backlog drain time *now*,
    not at the next packet arrival: queued bits are conserved while their
    drain deadline is rescaled."""
    fabric = line_fabric(nodes=2, lanes=4)
    flow = Flow("n0", "n1", size_bits=40 * MTU_BITS)
    backend = PacketBackend(
        fabric, [flow], transport=TransportConfig(window_packets=16)
    )
    key = ("n0", "n1")
    link = fabric.topology.link_between("n0", "n1")
    serialization = MTU_BITS / link.capacity_bps

    backend.run(until=2.5 * serialization)  # 16-packet burst still draining
    before = backend.network.port_drain_time(key)
    assert before > 0.0

    link.set_active_lane_count(2)  # the fabric-side mutation (as a failure
    backend.set_capacity(key, link.capacity_bps)  # plan or PLP batch does it)
    after = backend.network.port_drain_time(key)
    assert after == pytest.approx(2.0 * before, rel=1e-9)
    assert backend.links()[key] == pytest.approx(link.capacity_bps)

    backend.run()
    assert flow.completed


def test_mid_run_capacity_loss_changes_drop_accounting():
    """A capacity change pushed through ``set_capacity`` must change what
    happens to packets -- here a mid-run failure to zero capacity turns a
    clean run into one with drops -- while packet conservation holds."""

    def run_once(fail_mid_run):
        fabric = line_fabric(nodes=2, lanes=4)
        flow = Flow("n0", "n1", size_bits=40 * MTU_BITS)
        backend = PacketBackend(
            fabric,
            [flow],
            # A small window so most segments are still waiting for their
            # slot at the failure instant (accepted packets complete on
            # the old drain schedule by design); they meet the dead link.
            transport=TransportConfig(
                window_packets=4, max_attempts=3, retransmit_delay=1e-6
            ),
        )
        if fail_mid_run:
            link = fabric.topology.link_between("n0", "n1")
            backend.run(until=2.5 * MTU_BITS / link.capacity_bps)
            link.disable()
            backend.set_capacity(("n0", "n1"), link.capacity_bps)
        backend.run()
        return flow, backend

    flow, clean = run_once(fail_mid_run=False)
    assert flow.completed
    assert clean.network.dropped_count == 0

    flow, failed = run_once(fail_mid_run=True)
    assert not flow.completed
    assert failed.network.dropped_count > 0
    assert failed.transport.segments_abandoned > 0
    network = failed.network
    assert network.in_flight == 0
    assert (
        network.packets_entered
        == network.delivered_count + network.dropped_count
    )


def test_add_link_materialises_the_port_and_carries_rerouted_traffic():
    """A link created mid-run (the PLP new-link move) is usable the moment
    ``add_link`` registers it: the port exists, reports a zero drain time,
    and the very next reroute sends packets over it."""
    fabric = line_fabric(nodes=3, lanes=4)
    flow = Flow("n0", "n2", size_bits=40 * MTU_BITS)
    backend = PacketBackend(
        fabric, [flow], transport=TransportConfig(window_packets=4)
    )
    key = ("n0", "n2")
    assert not backend.has_link(key)

    backend.run(until=5e-6)
    shortcut = fabric.topology.add_link(Link("n0", "n2", num_lanes=4))
    backend.add_link(key, shortcut.capacity_bps)
    backend.add_link(("n2", "n0"), shortcut.capacity_bps)
    assert backend.has_link(key)
    assert key in backend.network.port_stats()
    assert backend.network.port_drain_time(key) == 0.0
    assert backend.instantaneous_link_utilisation()[key] == 0.0

    backend.reroute(flow.flow_id, [key])
    backend.run()
    assert flow.completed
    assert backend.network.port_stats()[key].packets_sent > 0


# --------------------------------------------------------------------------- #
# set_enabled
# --------------------------------------------------------------------------- #
def test_disabled_link_drops_offered_packets_until_reenabled():
    """The training-window safety net: a disabled directed link drops what
    it is offered and reads as zero in the instantaneous telemetry; on
    re-enable traffic flows again and the flow completes."""
    fabric = line_fabric(nodes=2, lanes=4)
    flow = Flow("n0", "n1", size_bits=10 * MTU_BITS)
    backend = PacketBackend(
        fabric, [flow], transport=TransportConfig(retransmit_delay=1e-6)
    )
    key = ("n0", "n1")
    backend.set_enabled(key, False)
    backend.run(until=5e-6)
    assert backend.network.dropped_count > 0
    assert backend.network.delivered_count == 0
    assert backend.instantaneous_link_utilisation()[key] == 0.0

    backend.set_enabled(key, True)
    backend.run()
    assert flow.completed

    with pytest.raises(KeyError):
        backend.set_enabled(("n0", "bogus"), False)


def test_route_of_reports_the_directed_key_route():
    fabric = line_fabric(nodes=4)
    flow = Flow("n0", "n3", size_bits=MTU_BITS)
    backend = PacketBackend(fabric, [flow])
    assert backend.route_of(flow.flow_id) == [
        ("n0", "n1"),
        ("n1", "n2"),
        ("n2", "n3"),
    ]
