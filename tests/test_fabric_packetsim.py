"""Tests for fabric assembly and the packet-level simulator."""

import pytest

from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.packetsim import PacketLevelNetwork
from repro.fabric.switch import SwitchModel
from repro.fabric.topology import TopologyBuilder
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.units import bits_from_bytes


@pytest.fixture
def line_fabric():
    topology = TopologyBuilder(lanes_per_link=4).line(4)
    return Fabric(topology, FabricConfig())


@pytest.fixture
def grid_fabric():
    topology = TopologyBuilder(lanes_per_link=2).grid(3, 3)
    return Fabric(topology, FabricConfig())


# --------------------------------------------------------------------------- #
# Fabric assembly
# --------------------------------------------------------------------------- #
def test_fabric_creates_switch_per_node(grid_fabric):
    assert set(grid_fabric.switches()) == set(grid_fabric.topology.node_names())


def test_fabric_stats_created_lazily(grid_fabric):
    stats = grid_fabric.stats_for("n0x0", "n0x1")
    assert stats is grid_fabric.stats_for("n0x1", "n0x0")


def test_path_latency_breakdown_components(line_fabric):
    path = ["n0", "n1", "n2", "n3"]
    size = bits_from_bytes(1500)
    breakdown = line_fabric.path_latency(path, size)
    assert breakdown["total"] == pytest.approx(
        breakdown["serialization"]
        + breakdown["propagation"]
        + breakdown["switching"]
        + breakdown["phy"]
    )
    # Two intermediate switching elements on a 4-node line.
    per_hop = line_fabric.switch("n1").forwarding_latency(size)
    assert breakdown["switching"] == pytest.approx(2 * per_hop)
    assert breakdown["serialization"] > 0


def test_path_latency_requires_two_nodes(line_fabric):
    with pytest.raises(ValueError):
        line_fabric.path_latency(["n0"], 100)


def test_end_to_end_latency_uses_router(grid_fabric):
    breakdown = grid_fabric.end_to_end_latency("n0x0", "n2x2", bits_from_bytes(64))
    assert breakdown["total"] > 0
    # 4 hops -> 3 intermediate switches.
    per_hop = grid_fabric.switch("n0x1").forwarding_latency(bits_from_bytes(64))
    assert breakdown["switching"] == pytest.approx(3 * per_hop)


def test_more_hops_means_more_switching_latency(grid_fabric):
    size = bits_from_bytes(1500)
    near = grid_fabric.end_to_end_latency("n0x0", "n0x1", size)
    far = grid_fabric.end_to_end_latency("n0x0", "n2x2", size)
    assert far["switching"] > near["switching"]
    assert far["total"] > near["total"]


def test_store_and_forward_fabric_is_slower(grid_fabric):
    snf_fabric = Fabric(
        TopologyBuilder(lanes_per_link=2).grid(3, 3),
        FabricConfig(store_and_forward=True),
    )
    size = bits_from_bytes(1500)
    cut = grid_fabric.end_to_end_latency("n0x0", "n2x2", size)["total"]
    snf = snf_fabric.end_to_end_latency("n0x0", "n2x2", size)["total"]
    assert snf > cut


def test_power_report_components(grid_fabric):
    report = grid_fabric.power_report()
    assert report.links_watts > 0
    assert report.switches_watts > 0
    assert report.nics_watts > 0
    assert report.bypass_watts == 0
    assert report.total_watts == pytest.approx(
        report.links_watts + report.switches_watts + report.nics_watts
    )


def test_power_report_drops_when_lanes_gated(grid_fabric):
    before = grid_fabric.power_report().total_watts
    for link in grid_fabric.topology.links():
        link.set_active_lane_count(1)
    after = grid_fabric.power_report().total_watts
    assert after < before


def test_record_power_feeds_budget(grid_fabric):
    grid_fabric.record_power(0.0)
    grid_fabric.record_power(1.0)
    assert grid_fabric.power_budget.current_watts > 0
    assert grid_fabric.power_budget.energy_joules > 0


def test_directed_capacities_and_route_keys(grid_fabric):
    capacities = grid_fabric.directed_capacities()
    assert len(capacities) == 2 * len(grid_fabric.topology.links())
    keys = grid_fabric.route_keys("n0x0", "n2x2")
    assert len(keys) == 4
    assert all(key in capacities for key in keys)


def test_register_switch_for_new_node(grid_fabric):
    from repro.fabric.node import Node

    grid_fabric.topology.add_node(Node("extra"))
    switch = grid_fabric.register_switch("extra")
    assert grid_fabric.switch("extra") is switch


# --------------------------------------------------------------------------- #
# Packet-level simulation
# --------------------------------------------------------------------------- #
def test_single_packet_matches_analytical_latency(line_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, line_fabric)
    packet = Packet.of_bytes("n0", "n3", 1500)
    network.inject(packet)
    simulator.drain()
    expected = line_fabric.path_latency(["n0", "n1", "n2", "n3"], packet.size_bits)["total"]
    assert packet.latency == pytest.approx(expected, rel=1e-9)
    assert packet.hop_count == 3


def test_packet_breakdown_matches_latency(line_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, line_fabric)
    packet = Packet.of_bytes("n0", "n3", 1500)
    network.inject(packet)
    simulator.drain()
    breakdown = packet.delay_breakdown()
    assert sum(breakdown.values()) == pytest.approx(packet.latency, rel=1e-9)


def test_back_to_back_packets_queue_behind_each_other(line_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, line_fabric)
    first = Packet.of_bytes("n0", "n1", 1500, created_at=0.0)
    second = Packet.of_bytes("n0", "n1", 1500, created_at=0.0)
    network.inject_all([first, second])
    simulator.drain()
    assert first.latency is not None and second.latency is not None
    link = line_fabric.topology.link_between("n0", "n1")
    serialization = link.serialization_delay(first.size_bits)
    assert second.latency == pytest.approx(first.latency + serialization, rel=1e-9)


def test_cross_traffic_does_not_delay_disjoint_paths(grid_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, grid_fabric)
    a = Packet.of_bytes("n0x0", "n0x1", 1500)
    b = Packet.of_bytes("n2x0", "n2x1", 1500)
    network.inject_all([a, b])
    simulator.drain()
    assert a.latency == pytest.approx(b.latency, rel=1e-9)


def test_explicit_path_must_match_endpoints(grid_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, grid_fabric)
    packet = Packet.of_bytes("n0x0", "n2x2", 64)
    with pytest.raises(ValueError):
        network.inject(packet, path=["n0x0", "n0x1"])


def test_packet_dropped_on_dead_link(grid_fabric):
    grid_fabric.topology.link_between("n0x0", "n0x1").disable()
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, grid_fabric)
    packet = Packet.of_bytes("n0x0", "n0x1", 1500)
    network.inject(packet, path=["n0x0", "n0x1"])
    simulator.drain()
    assert packet.dropped
    assert network.delivery_fraction() == 0.0


def test_dead_link_drop_is_traced_and_counted(grid_fabric):
    # Regression: the zero-capacity drop path used to skip both the trace
    # record and the fabric's per-link drop statistics, so disabled-link
    # drops were invisible everywhere except the network's `dropped` list.
    from repro.sim.trace import TraceRecorder

    grid_fabric.topology.link_between("n0x0", "n0x1").disable()
    simulator = Simulator()
    trace = TraceRecorder()
    network = PacketLevelNetwork(simulator, grid_fabric, trace=trace)
    packet = Packet.of_bytes("n0x0", "n0x1", 1500)
    network.inject(packet, path=["n0x0", "n0x1"])
    simulator.drain()
    assert packet.dropped
    assert trace.count("packet_dropped") == 1
    stats = grid_fabric.stats_for("n0x0", "n0x1")
    assert stats.drops == 1
    assert stats.packets == 1
    assert network.port_stats()[("n0x0", "n0x1")].packets_dropped == 1


def test_buffer_overflow_drops_packets():
    topology = TopologyBuilder(lanes_per_link=1).line(2)
    config = FabricConfig(switch_model=SwitchModel(buffer_bits=bits_from_bytes(3000)))
    fabric = Fabric(topology, config)
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, fabric)
    packets = [Packet.of_bytes("n0", "n1", 1500, created_at=0.0) for _ in range(50)]
    network.inject_all(packets)
    simulator.drain()
    assert len(network.dropped) > 0
    assert len(network.delivered) > 0
    assert network.delivery_fraction() < 1.0


def test_port_stats_accumulate(line_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, line_fabric)
    network.inject(Packet.of_bytes("n0", "n3", 1500))
    simulator.drain()
    stats = network.port_stats()
    assert stats[("n0", "n1")].packets_sent == 1
    assert stats[("n2", "n3")].packets_sent == 1


def test_port_stats_are_snapshots_frozen_at_call_time(line_fabric):
    # Regression: port_stats() used to hand out the live mutable PortState
    # objects, so a snapshot taken mid-run silently changed as the
    # simulation progressed.
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, line_fabric)
    network.inject(Packet.of_bytes("n0", "n3", 1500))
    simulator.drain()
    before = network.port_stats()
    network.inject(Packet.of_bytes("n0", "n3", 1500, created_at=simulator.now))
    simulator.drain()
    after = network.port_stats()
    assert before[("n0", "n1")].packets_sent == 1, "snapshot mutated after the fact"
    assert after[("n0", "n1")].packets_sent == 2
    assert before[("n0", "n1")] is not network._ports[("n0", "n1")]
    # Mutating the caller's copy must not corrupt live simulation state.
    before[("n0", "n1")].packets_sent = 999
    assert network.port_stats()[("n0", "n1")].packets_sent == 2


def test_tail_drop_accounts_bits_and_marks_congestion():
    topology = TopologyBuilder(lanes_per_link=1).line(2)
    # 12000-byte buffer = 8 MTU packets: a same-instant burst of 20 fills
    # the FIFO through the ECN band (65%..100%) and tail-drops the rest.
    config = FabricConfig(switch_model=SwitchModel(buffer_bits=bits_from_bytes(12000)))
    fabric = Fabric(topology, config)
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, fabric)
    packets = [Packet.of_bytes("n0", "n1", 1500, created_at=0.0) for _ in range(20)]
    network.inject_all(packets)
    simulator.drain()
    port = network.port_stats()[("n0", "n1")]
    assert port.packets_dropped > 0
    assert port.bits_dropped == pytest.approx(
        port.packets_dropped * bits_from_bytes(1500)
    )
    # Arrivals that met a backlog above the ECN threshold were marked.
    assert port.ecn_marks > 0
    # The backlog high-water mark (an arrival-observed statistic, so
    # refused arrivals see a full buffer) never exceeds the buffer beyond
    # float reconstruction noise.
    assert port.max_backlog_bits <= port.buffer_bits * (1 + 1e-9)
    # Single hop: every accepted packet is delivered, every refusal dropped.
    assert len(network.delivered) == port.packets_sent
    assert len(network.dropped) == port.packets_dropped


def test_buffer_drains_at_the_new_rate_after_a_capacity_change():
    # Queued bits must be conserved across a mid-run capacity change: the
    # transmitter's remaining busy time is rescaled by the capacity ratio,
    # so a later arrival sees the true backlog draining at the new rate.
    topology = TopologyBuilder(lanes_per_link=2).line(2)
    fabric = Fabric(topology, FabricConfig())
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, fabric)
    link = topology.link_between("n0", "n1")
    old_capacity = link.capacity_bps
    burst = [Packet.of_bytes("n0", "n1", 1500, created_at=0.0) for _ in range(8)]
    network.inject_all(burst)
    # Advance to the middle of the burst, then halve the link.
    serialization = bits_from_bytes(1500) / old_capacity
    probe_time = 4.5 * serialization
    simulator.run(until=probe_time)
    busy_until = network._ports[("n0", "n1")].busy_until
    queued_bits = (busy_until - probe_time) * old_capacity
    link.set_active_lane_count(1)
    new_capacity = link.capacity_bps
    assert new_capacity == pytest.approx(old_capacity / 2)
    probe = Packet.of_bytes("n0", "n1", 1500, created_at=probe_time)
    network.inject(probe)
    simulator.drain()
    # The probe waited for the *bit-conserved* backlog at the halved rate.
    assert probe.queueing_seconds == pytest.approx(
        queued_bits / new_capacity, rel=1e-9
    )


def test_conservation_counters_balance_after_drain():
    topology = TopologyBuilder(lanes_per_link=1).line(3)
    config = FabricConfig(switch_model=SwitchModel(buffer_bits=bits_from_bytes(4500)))
    fabric = Fabric(topology, config)
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, fabric)
    packets = [Packet.of_bytes("n0", "n2", 1500, created_at=0.0) for _ in range(30)]
    network.inject_all(packets)
    simulator.drain()
    assert network.packets_injected == 30
    assert network.packets_entered == 30
    assert network.in_flight == 0
    assert network.delivered_count + network.dropped_count == 30
    assert network.delivered_count == len(network.delivered)
    assert network.dropped_count == len(network.dropped)


def test_queueing_samples_track_delivered_packets(line_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, line_fabric)
    first = Packet.of_bytes("n0", "n1", 1500, created_at=0.0)
    second = Packet.of_bytes("n0", "n1", 1500, created_at=0.0)
    network.inject_all([first, second])
    simulator.drain()
    assert len(network.queueing_samples) == 2
    link = line_fabric.topology.link_between("n0", "n1")
    serialization = link.serialization_delay(first.size_bits)
    assert sorted(network.queueing_samples) == pytest.approx([0.0, serialization])
    assert second.queueing_seconds == pytest.approx(serialization)


def test_retain_packets_false_keeps_counters_only(line_fabric):
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, line_fabric, retain_packets=False)
    network.inject(Packet.of_bytes("n0", "n3", 1500))
    simulator.drain()
    assert network.delivered == [] and network.dropped == []
    assert network.delivered_count == 1
    assert network.delivery_fraction() == 1.0
