"""Packet-engine parity: batched vs event, pinned bit-identical.

The batched engine (segment trains advanced port-at-a-time, same-instant
injections coalesced, link contexts cached per mutation epoch) must be
indistinguishable from the event-driven oracle -- not approximately, *bit
for bit*.  These tests pin that for every small registered scenario
crossed with every built-in controller (including the closed control
loop), and for the resumable-run edges the scenario layer cannot reach:
``run(until=...)`` cuts at arbitrary instants, facade mutations between
and during runs (``set_capacity``/``add_link``/``set_enabled``/
``reroute``), and a controller that keeps mutating the fabric mid-run.

The one sanctioned divergence is ``events_processed``: the batched engine
counts calendar entries (a train of coalesced segments is one entry), so
event totals are engine-specific by design and excluded from snapshots.
Everything else -- metrics, FCTs, port counters, ECN marks, the exact
queueing-sample sequence -- must match to the last bit.
"""

import random

import pytest

from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.harness import build_grid_fabric
from repro.experiments.scenarios import (
    ScenarioError,
    controller_config_from_params,
    derive_run_seed,
    list_scenarios,
    materialize_run,
    resolve_params,
)
from repro.fabric.packetsim import ENGINES, PacketBackend
from repro.sim.flow import Flow, reset_flow_ids
from repro.sim.transport import TransportConfig

CONTROLLERS = ("none", "static", "ecmp", "crc", "loop")

#: Workload shrink for every scenario leg (same spelling as the fidelity
#: gate): parity is about execution order, not scale, and both engines see
#: the same override so the derived seed -- and the flow list -- stays
#: identical.
BASE_OVERRIDES = {"mean_flow_mb": 0.05}

#: The storage workloads use fixed block sizes regardless of
#: ``mean_flow_mb``; a jumbo MTU keeps their packetised legs in test time.
JUMBO_TRANSPORT = TransportConfig(mtu_bytes=9000.0)

#: The topology-family scenarios default to 1024 hosts (their unused
#: ``rows``/``columns`` defaults slip past the 3x3 filter); shrink them to
#: the same dimensions the fidelity gate uses so the packetised legs fit
#: in test time.
SCENARIO_OVERRIDES = {
    "fattree_uniform": {"pods": 4, "num_flows": 48},
    "fattree_incast": {"pods": 4, "fan_in": 8},
    "dragonfly_permutation": {"groups": 3, "routers_per_group": 3, "hosts_per_router": 2},
    "dragonfly_hotspot": {
        "groups": 3,
        "routers_per_group": 3,
        "hosts_per_router": 2,
        "num_flows": 36,
    },
}


def small_scenarios():
    """Every registered scenario on a small default (or shrunk) fabric."""
    return [
        scenario
        for scenario in list_scenarios()
        if int(scenario.parameters()["rows"]) * int(scenario.parameters()["columns"]) <= 9
    ]


def _transport_for(scenario):
    return JUMBO_TRANSPORT if scenario.workload == "disaggregated-storage" else None


def _scenario_record(scenario, controller, engine):
    overrides = dict(BASE_OVERRIDES, **SCENARIO_OVERRIDES.get(scenario.name, {}))
    overrides.update(controller=controller, backend="packet", engine=engine)
    params = resolve_params(scenario, overrides)
    seed = derive_run_seed(3, scenario.name, params)
    fabric, flows, failure_events = materialize_run(scenario, params, seed)
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=scenario.name,
            controller=controller,
            controller_config=controller_config_from_params(controller, params),
            failures=tuple(failure_events or ()),
            backend="packet",
            engine=engine,
            transport=_transport_for(scenario),
        )
    )
    return seed, record


def _record_snapshot(record):
    """Everything a run reports, minus the engine-specific event count."""
    result = record.fluid
    return {
        "metrics": record.metrics,
        "end_time": result.end_time,
        "bits_carried": result.link_bits_carried,
        "capacity_seconds": result.link_capacity_seconds,
        "utilisation": result.link_utilisation(),
        "truncated": result.truncated,
        "fcts": [(f.flow_id, f.fct) for f in record.flows],
        "reroutes": record.controller_summary.flows_rerouted,
        "reconfigurations": record.controller_summary.reconfigurations,
    }


@pytest.mark.parametrize("scenario", small_scenarios(), ids=lambda s: s.name)
def test_scenario_metrics_bit_identical_across_engines(scenario):
    for controller in CONTROLLERS:
        # A controller a scenario rejects (crc is grid/torus-only) must be
        # rejected identically by both engines -- that's parity too.
        try:
            seed_event, event = _scenario_record(scenario, controller, "event")
        except ScenarioError:
            with pytest.raises(ScenarioError):
                _scenario_record(scenario, controller, "batched")
            continue
        seed_batched, batched = _scenario_record(scenario, controller, "batched")
        assert seed_event == seed_batched, controller
        assert _record_snapshot(event) == _record_snapshot(batched), (
            f"engines diverged for scenario {scenario.name!r} under "
            f"controller {controller!r}"
        )


# --------------------------------------------------------------------------- #
# Direct-backend edges: resume cuts and mid-run mutations
# --------------------------------------------------------------------------- #
def _build_backend(engine, n_flows=48, seed=3, **kwargs):
    reset_flow_ids()
    rng = random.Random(seed)
    fabric = build_grid_fabric(3, 3)
    names = [getattr(node, "name", node) for node in fabric.topology.nodes()]
    flows = []
    for _ in range(n_flows):
        src, dst = rng.sample(names, 2)
        flows.append(
            Flow(
                src=src,
                dst=dst,
                size_bits=rng.uniform(0.5, 2.0) * 2e6,
                start_time=rng.uniform(0.0, 2e-4),
            )
        )
    return PacketBackend(fabric, flows, engine=engine, **kwargs), fabric, flows


def _backend_snapshot(backend, result=None):
    network = backend.network
    state = {
        "now": backend.simulator.now,
        "metrics": backend.packet_metrics(),
        "bits_delivered": network.bits_delivered,
        "queueing_samples": list(network.queueing_samples),
        "ports": {
            key: (
                port.packets_sent,
                port.bits_sent,
                port.packets_dropped,
                port.bits_dropped,
                port.busy_until,
                port.queueing_seconds_total,
                port.max_backlog_bits,
                port.ecn_marks,
                port.capacity_bps,
            )
            for key, port in network.port_stats().items()
        },
        "transport": backend.transport.summary(),
        "completions": [
            (flow.flow_id, flow.metadata.get("completed_at"))
            for flow in backend._flows
        ],
    }
    if result is not None:
        state["end_time"] = result.end_time
        state["bits_carried"] = result.link_bits_carried
        state["capacity_seconds"] = result.link_capacity_seconds
        state["truncated"] = result.truncated
    return state


def test_resume_cuts_are_bit_identical():
    # Arbitrary horizon cuts -- mid-burst, between bursts, past the end --
    # must leave both engines in bit-identical states at every cut, and
    # the final completion must match a single uncut run.
    cuts = (9e-5, 2.1e-4, 3.6e-4, None)
    snapshots = {}
    for engine in ENGINES:
        backend, _, _ = _build_backend(engine)
        stages = []
        for cut in cuts:
            result = backend.run(until=cut)
            stages.append(_backend_snapshot(backend, result))
            if cut is not None:
                assert not backend.transport.finished, (
                    f"cut at {cut} landed after the workload; resume is "
                    "not being exercised"
                )
        snapshots[engine] = stages
    assert snapshots["event"] == snapshots["batched"]

    uncut, _, _ = _build_backend("batched")
    final = _backend_snapshot(uncut, uncut.run())
    # Horizon bookkeeping (clock parked at `until`, capacity integrated to
    # it) legitimately differs between a staged and an uncut run; the
    # packet-visible state must not.
    staged = dict(snapshots["batched"][-1])
    for key in ("end_time", "bits_carried", "capacity_seconds", "truncated", "now"):
        staged.pop(key, None)
        final.pop(key, None)
    assert staged == final


def test_mid_run_facade_mutations_are_bit_identical():
    # set_capacity (eager drain-rescale), set_enabled False (tail-drop on
    # a dark port), add_link + reroute onto it, then recovery -- applied
    # at the same instants between run(until=...) calls on both engines.
    snapshots = {}
    for engine in ENGINES:
        backend, fabric, flows = _build_backend(engine)
        links = sorted(backend.links())
        victim = links[0]
        detour = links[-1]
        stages = []

        backend.run(until=1.5e-4)
        assert not backend.transport.finished
        backend.set_capacity(victim, backend.links()[victim] * 0.25)
        stages.append(_backend_snapshot(backend))

        backend.run(until=3e-4)
        assert not backend.transport.finished
        backend.set_enabled(victim, False)
        stages.append(_backend_snapshot(backend))

        backend.run(until=4.5e-4)
        backend.set_enabled(victim, True)
        backend.set_capacity(detour, backend.links()[detour] * 2.0)
        moved = 0
        for flow in backend.active_flows():
            route = backend.route_of(flow.flow_id)
            if len(route) >= 2:
                backend.reroute(flow.flow_id, route)  # same-path rebind
                moved += 1
                if moved == 3:
                    break
        stages.append(_backend_snapshot(backend))

        result = backend.run()
        stages.append(_backend_snapshot(backend, result))
        snapshots[engine] = stages
    assert snapshots["event"] == snapshots["batched"]


def test_controller_mutating_mid_run_is_bit_identical():
    # The loop-mutation case: a periodic controller that squeezes and
    # restores a hot link and reroutes active flows *while* the engines
    # run, interleaved with a resume cut.  Every mutation lands inside
    # engine execution, not between runs.
    snapshots = {}
    for engine in ENGINES:
        backend, fabric, flows = _build_backend(engine)
        links = sorted(backend.links())
        hot = links[len(links) // 2]
        base = backend.links()[hot]
        ticks = []

        def tick(be, now, ticks=ticks):
            ticks.append(now)
            be.set_capacity(hot, base * (0.5 if len(ticks) % 2 else 1.5))
            active = be.active_flows()
            if active:
                flow = active[len(ticks) % len(active)]
                be.reroute(flow.flow_id, be.route_of(flow.flow_id))

        backend.add_controller(2e-4, tick, start_offset=1e-4)
        backend.run(until=6e-4)
        mid = _backend_snapshot(backend)
        result = backend.run(until=5e-3)
        snapshots[engine] = (mid, _backend_snapshot(backend, result), list(ticks))
    assert snapshots["event"] == snapshots["batched"]
    assert snapshots["event"][2], "controller never ticked"


def test_unknown_engine_is_rejected():
    with pytest.raises(ValueError, match="engine"):
        _build_backend("vectorised")
