"""Scenario registry and sweep engine tests.

Covers the contracts the rest of the repo builds on: registration and
duplicate-name errors, parameter resolution, grid expansion, seed
determinism across worker counts, JSON round-trips, and the query helper
the figure generators use.
"""

import json

import pytest

from repro.experiments.scenarios import (
    COMMON_DEFAULTS,
    WORKLOAD_CLASSES,
    ScenarioError,
    derive_run_seed,
    get_scenario,
    list_scenarios,
    register_scenario,
    resolve_params,
    run_scenario,
    scenario_names,
)
from repro.experiments.sweep import (
    SweepRun,
    build_runs,
    execute_runs,
    expand_grid,
    filter_rows,
    load_rows,
    run_sweep,
    strip_timing,
)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_catalog_spans_all_workload_generators():
    scenarios = list_scenarios()
    assert len(scenarios) >= 10
    assert {s.workload for s in scenarios} == set(WORKLOAD_CLASSES)
    # Names are unique and stable lookup keys.
    assert len({s.name for s in scenarios}) == len(scenarios)
    for scenario in scenarios:
        assert get_scenario(scenario.name) is scenario
        assert scenario.description
        assert scenario.workload_summary()


def test_register_duplicate_name_raises():
    existing = scenario_names()[0]
    with pytest.raises(ScenarioError, match="already registered"):
        register_scenario(existing, "dup", workload="incast")(lambda spec, params: [])


def test_register_unknown_workload_raises():
    with pytest.raises(ScenarioError, match="unknown workload"):
        register_scenario("nonce-scenario", "x", workload="no-such-generator")(
            lambda spec, params: []
        )
    assert "nonce-scenario" not in scenario_names()


def test_get_unknown_scenario_raises():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("does-not-exist")


def test_resolve_params_merges_and_validates():
    scenario = get_scenario("mapreduce-skewed")
    params = resolve_params(scenario, {"rows": 4, "skew_factor": 3.0})
    assert params["rows"] == 4
    assert params["skew_factor"] == 3.0
    assert params["topology"] == COMMON_DEFAULTS["topology"]
    with pytest.raises(ScenarioError, match="unknown parameter"):
        resolve_params(scenario, {"skew_faktor": 3.0})
    with pytest.raises(ScenarioError, match="topology"):
        resolve_params(scenario, {"topology": "hypercube"})
    with pytest.raises(ScenarioError, match="crc"):
        resolve_params(scenario, {"topology": "torus", "controller": "crc"})
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ScenarioError, match="crc"):
            resolve_params(scenario, {"topology": "torus", "crc": True})


def test_resolve_params_canonicalises_numeric_types():
    # The seed is derived from the JSON of the resolved parameters, so an
    # int override of a float-typed parameter (e.g. from the CLI) must
    # resolve -- and therefore seed -- identically to the float default.
    scenario = get_scenario("mapreduce-skewed")
    default = resolve_params(scenario, {})
    as_int = resolve_params(scenario, {"skew_factor": 2, "rows": 3.0})
    assert as_int == default
    assert isinstance(as_int["skew_factor"], float)
    assert isinstance(as_int["rows"], int)
    assert derive_run_seed(0, scenario.name, as_int) == derive_run_seed(
        0, scenario.name, default
    )
    with pytest.raises(ScenarioError, match="num_requests must be an integer"):
        resolve_params(get_scenario("storage-read-heavy"), {"num_requests": "many"})


def test_run_seed_ignores_fabric_parameters():
    scenario = get_scenario("permutation")
    grid = resolve_params(scenario, {"topology": "grid", "lanes_per_link": 2})
    torus = resolve_params(
        scenario, {"topology": "torus", "lanes_per_link": 1, "controller": "none"}
    )
    assert derive_run_seed(7, scenario.name, grid) == derive_run_seed(7, scenario.name, torus)
    # But workload parameters and the base seed both matter.
    bigger = resolve_params(scenario, {"rows": 4})
    assert derive_run_seed(7, scenario.name, grid) != derive_run_seed(7, scenario.name, bigger)
    assert derive_run_seed(7, scenario.name, grid) != derive_run_seed(8, scenario.name, grid)


def test_run_scenario_row_is_json_serialisable_and_complete():
    row = run_scenario("trace-ring", {"rows": 2, "columns": 2})
    assert json.loads(json.dumps(row)) == row
    assert row["scenario"] == "trace-ring"
    assert row["workload"] == "trace-replay"
    assert row["params"]["rows"] == 2
    metrics = row["metrics"]
    assert metrics["completion_fraction"] == 1.0
    assert metrics["num_flows"] == 4
    assert metrics["makespan"] > 0
    for column in ("diameter_hops", "mean_latency", "fabric_power_watts", "power_watts"):
        assert metrics[column] > 0


def test_run_scenario_same_flows_across_fabrics():
    static = run_scenario("mapreduce-skewed", {"controller": "none"}, base_seed=3)
    adaptive = run_scenario("mapreduce-skewed", {"controller": "crc"}, base_seed=3)
    assert static["seed"] == adaptive["seed"]
    assert static["metrics"]["total_bits"] == adaptive["metrics"]["total_bits"]


# --------------------------------------------------------------------------- #
# Grid expansion and run building
# --------------------------------------------------------------------------- #
def test_expand_grid_cartesian_product_order():
    combos = expand_grid({"b": [1, 2], "a": ["x"]})
    assert combos == [{"a": "x", "b": 1}, {"a": "x", "b": 2}]
    assert expand_grid(None) == [{}]
    assert expand_grid({}) == [{}]
    with pytest.raises(ScenarioError, match="non-empty"):
        expand_grid({"a": []})


def test_build_runs_skips_invalid_combinations():
    grid = {"topology": ["grid", "torus"], "controller": ["none", "crc"]}
    runs = build_runs(["permutation"], grid)
    # torus+crc is invalid, the other three corners survive.
    assert len(runs) == 3
    assert all(isinstance(run, SweepRun) for run in runs)
    with pytest.raises(ScenarioError):
        build_runs(["permutation"], grid, skip_invalid=False)
    with pytest.raises(ScenarioError, match="zero valid runs"):
        build_runs(["permutation"], {"rows": [1]})


# --------------------------------------------------------------------------- #
# Sweep execution and persistence
# --------------------------------------------------------------------------- #
def _strip_all(rows):
    return [strip_timing(row) for row in rows]


def test_sweep_deterministic_across_worker_counts():
    scenarios = ["permutation", "incast", "trace-ring", "mapreduce-shuffle"]
    grid = {"rows": [2, 3]}
    serial = run_sweep(scenarios=scenarios, grid=grid, workers=1)
    parallel = run_sweep(scenarios=scenarios, grid=grid, workers=4)
    assert len(serial) == 8
    assert _strip_all(serial) == _strip_all(parallel)
    # Byte-level: the persisted JSON is identical ignoring timing.
    as_bytes = lambda rows: [json.dumps(r, sort_keys=True) for r in _strip_all(rows)]
    assert as_bytes(serial) == as_bytes(parallel)


def test_sweep_rerun_is_bit_identical():
    grid = {"controller": ["none", "crc"]}
    first = run_sweep(scenarios=["uniform-burst"], grid=grid)
    second = run_sweep(scenarios=["uniform-burst"], grid=grid)
    assert _strip_all(first) == _strip_all(second)


def test_legacy_crc_grid_axis_still_sweeps():
    # The deprecated crc=true spelling keeps working for one release.
    with pytest.warns(DeprecationWarning, match="crc=True is deprecated"):
        rows = run_sweep(scenarios=["uniform-burst"], grid={"crc": [True]})
    assert rows[0]["params"]["controller"] == "crc"
    assert rows[0]["metrics"]["completion_fraction"] == 1.0


def test_sweep_base_seed_changes_results():
    a = run_sweep(scenarios=["uniform-burst"], base_seed=0)
    b = run_sweep(scenarios=["uniform-burst"], base_seed=1)
    assert a[0]["seed"] != b[0]["seed"]
    assert a[0]["metrics"]["total_bits"] != b[0]["metrics"]["total_bits"]


def test_write_and_load_rows_round_trip(tmp_path):
    path = str(tmp_path / "nested" / "sweep.jsonl")
    rows = run_sweep(scenarios=["incast-staggered"], grid={"stagger_us": [0.0, 50.0]}, output=path)
    assert load_rows(path) == rows
    # Each line is one sorted-key JSON object.
    with open(path) as handle:
        lines = [line for line in handle if line.strip()]
    assert len(lines) == 2
    assert all(json.dumps(json.loads(line), sort_keys=True) == line.strip() for line in lines)


def test_filter_rows_selects_by_scenario_and_params():
    rows = run_sweep(scenarios=["permutation", "incast"], grid={"rows": [2, 3]})
    selected = filter_rows(rows, scenario="incast", rows=3)
    assert len(selected) == 1
    assert selected[0]["scenario"] == "incast"
    assert selected[0]["params"]["rows"] == 3
    assert filter_rows(rows, scenario="permutation") == [
        row for row in rows if row["scenario"] == "permutation"
    ]


def test_execute_runs_validates_workers():
    with pytest.raises(ValueError, match="workers"):
        execute_runs([SweepRun("incast")], workers=0)
