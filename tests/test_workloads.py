"""Tests for the workload generators."""

import pytest

from repro.sim.units import megabytes
from repro.workloads.arrivals import PoissonArrivals, constant_arrivals
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.incast import IncastWorkload
from repro.workloads.mapreduce import MapReduceShuffleWorkload
from repro.workloads.permutation import PermutationWorkload
from repro.workloads.storage import DisaggregatedStorageWorkload
from repro.workloads.trace_replay import TraceRecordSpec, TraceReplayWorkload
from repro.workloads.uniform import UniformRandomWorkload
from repro.sim.random import RandomStreams


NODES = [f"n{i}" for i in range(8)]


def spec(**kwargs):
    defaults = dict(nodes=NODES, mean_flow_size_bits=megabytes(1), seed=3)
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


# --------------------------------------------------------------------------- #
# Spec and arrivals
# --------------------------------------------------------------------------- #
def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(nodes=["only"])
    with pytest.raises(ValueError):
        WorkloadSpec(nodes=NODES, mean_flow_size_bits=0)
    with pytest.raises(ValueError):
        WorkloadSpec(nodes=NODES, start_time=-1)


def test_poisson_arrivals_monotone_and_reproducible():
    streams = RandomStreams(1)
    times = PoissonArrivals(1000.0, streams).times(50, start_time=1.0)
    assert len(times) == 50
    assert all(b > a for a, b in zip(times, times[1:]))
    assert times[0] > 1.0
    again = PoissonArrivals(1000.0, RandomStreams(1)).times(50, start_time=1.0)
    assert times == again


def test_poisson_arrivals_until_horizon():
    streams = RandomStreams(2)
    times = PoissonArrivals(1000.0, streams).times_until(0.05)
    assert all(t <= 0.05 for t in times)
    assert len(times) > 10


def test_poisson_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(0, RandomStreams(0))


def test_constant_arrivals():
    assert constant_arrivals(3, 2.0, start_time=1.0) == [1.0, 3.0, 5.0]
    with pytest.raises(ValueError):
        constant_arrivals(-1, 1.0)


# --------------------------------------------------------------------------- #
# MapReduce shuffle
# --------------------------------------------------------------------------- #
def test_shuffle_generates_all_mapper_reducer_pairs():
    workload = MapReduceShuffleWorkload(spec())
    flows = workload.generate()
    assert len(flows) == 4 * 4
    pairs = {(flow.src, flow.dst) for flow in flows}
    assert len(pairs) == 16
    assert all(flow.src in workload.mappers and flow.dst in workload.reducers for flow in flows)


def test_shuffle_skew_makes_last_reducer_hot():
    workload = MapReduceShuffleWorkload(spec(), size_jitter=0.0, skew_factor=3.0)
    flows = workload.generate()
    matrix = workload.demand_matrix(flows)
    last_reducer = workload.reducers[-1]
    hot = sum(bits for (src, dst), bits in matrix.items() if dst == last_reducer)
    cold = sum(bits for (src, dst), bits in matrix.items() if dst == workload.reducers[0])
    assert hot == pytest.approx(3.0 * cold)
    assert workload.total_shuffle_bits() == pytest.approx(sum(matrix.values()))


def test_shuffle_explicit_roles_and_validation():
    workload = MapReduceShuffleWorkload(spec(), mappers=["n0"], reducers=["n7"])
    assert len(workload.generate()) == 1
    with pytest.raises(ValueError):
        MapReduceShuffleWorkload(spec(), mappers=["n0"], reducers=["n0"])
    with pytest.raises(ValueError):
        MapReduceShuffleWorkload(spec(), size_jitter=1.5)


def test_shuffle_is_reproducible():
    first = MapReduceShuffleWorkload(spec()).generate()
    second = MapReduceShuffleWorkload(spec()).generate()
    assert [f.size_bits for f in first] == [f.size_bits for f in second]


# --------------------------------------------------------------------------- #
# Permutation
# --------------------------------------------------------------------------- #
def test_permutation_every_node_sends_once_to_distinct_target():
    flows = PermutationWorkload(spec()).generate()
    assert len(flows) == len(NODES)
    assert {flow.src for flow in flows} == set(NODES)
    assert all(flow.src != flow.dst for flow in flows)
    destinations = [flow.dst for flow in flows]
    assert len(set(destinations)) == len(NODES)


def test_permutation_heavy_tailed_sizes_vary():
    flows = PermutationWorkload(spec(), heavy_tailed=True).generate()
    sizes = {flow.size_bits for flow in flows}
    assert len(sizes) > 1
    with pytest.raises(ValueError):
        PermutationWorkload(spec(), heavy_tailed=True, pareto_shape=1.0)


# --------------------------------------------------------------------------- #
# Uniform random
# --------------------------------------------------------------------------- #
def test_uniform_workload_counts_and_endpoints():
    flows = UniformRandomWorkload(spec(), num_flows=40).generate()
    assert len(flows) == 40
    assert all(flow.src != flow.dst for flow in flows)
    assert all(flow.start_time == 0.0 for flow in flows)


def test_uniform_workload_offered_load_spreads_arrivals():
    flows = UniformRandomWorkload(
        spec(), num_flows=40, offered_load_bps=megabytes(1) * 1000
    ).generate()
    assert len({flow.start_time for flow in flows}) > 10


def test_uniform_workload_validation():
    with pytest.raises(ValueError):
        UniformRandomWorkload(spec(), num_flows=0)
    with pytest.raises(ValueError):
        UniformRandomWorkload(spec(), offered_load_bps=1.0, arrival_rate_per_second=1.0)


# --------------------------------------------------------------------------- #
# Hotspot
# --------------------------------------------------------------------------- #
def test_hotspot_concentrates_traffic():
    hot_pairs = [("n0", "n7")]
    workload = HotspotWorkload(
        spec(), num_flows=50, hot_fraction=0.6, hot_pairs=hot_pairs, hot_size_multiplier=2.0
    )
    flows = workload.generate()
    hot_flows = [f for f in flows if (f.src, f.dst) == ("n0", "n7")]
    assert len(hot_flows) == 30
    assert all(f.size_bits == pytest.approx(2 * megabytes(1)) for f in hot_flows)


def test_hotspot_draws_pairs_when_not_given():
    workload = HotspotWorkload(spec(), num_flows=20, num_hot_pairs=3)
    assert len(workload.hot_pairs) == 3
    assert all(src != dst for src, dst in workload.hot_pairs)


def test_hotspot_validation():
    with pytest.raises(ValueError):
        HotspotWorkload(spec(), hot_fraction=1.5)
    with pytest.raises(ValueError):
        HotspotWorkload(spec(), hot_pairs=[("n0", "n0")])


# --------------------------------------------------------------------------- #
# Incast
# --------------------------------------------------------------------------- #
def test_incast_all_senders_to_one_receiver():
    workload = IncastWorkload(spec())
    flows = workload.generate()
    assert workload.fan_in() == len(NODES) - 1
    assert all(flow.dst == workload.receiver for flow in flows)
    assert all(flow.start_time == 0.0 for flow in flows)


def test_incast_stagger_spaces_starts():
    flows = IncastWorkload(spec(), stagger=1e-3).generate()
    starts = sorted({flow.start_time for flow in flows})
    assert len(starts) == len(flows)
    assert starts[1] - starts[0] == pytest.approx(1e-3)


def test_incast_validation():
    with pytest.raises(ValueError):
        IncastWorkload(spec(), receiver="unknown")
    with pytest.raises(ValueError):
        IncastWorkload(spec(), senders=["n7"], receiver="n7")


# --------------------------------------------------------------------------- #
# Disaggregated storage
# --------------------------------------------------------------------------- #
def test_storage_workload_read_write_mix():
    workload = DisaggregatedStorageWorkload(
        spec(), num_requests=200, read_fraction=0.7, requests_per_second=1e6
    )
    flows = workload.generate()
    assert len(flows) == 200
    reads = [f for f in flows if f.tag and f.tag.endswith("read")]
    writes = [f for f in flows if f.tag and f.tag.endswith("write")]
    assert len(reads) + len(writes) == 200
    assert 0.5 < len(reads) / 200 < 0.9
    # Reads flow storage -> compute, writes the other way.
    assert all(f.src in workload.storage_nodes for f in reads)
    assert all(f.dst in workload.storage_nodes for f in writes)


def test_storage_workload_validation():
    with pytest.raises(ValueError):
        DisaggregatedStorageWorkload(spec(), compute_nodes=["n0"], storage_nodes=["n0"])
    with pytest.raises(ValueError):
        DisaggregatedStorageWorkload(spec(), read_fraction=2.0)


# --------------------------------------------------------------------------- #
# Trace replay
# --------------------------------------------------------------------------- #
def test_trace_replay_round_trip():
    records = [
        TraceRecordSpec("n0", "n1", 100.0, 0.0),
        TraceRecordSpec("n1", "n2", 200.0, 0.5),
    ]
    flows = TraceReplayWorkload(spec(), records).generate()
    assert len(flows) == 2
    assert flows[0].size_bits == 100.0
    assert flows[1].start_time == pytest.approx(0.5)


def test_trace_replay_csv_parsing():
    text = "src,dst,size_bits,start_time\nn0,n1,100,0.0\nn2,n3,50,1.0\n"
    workload = TraceReplayWorkload.from_csv(spec(), text)
    flows = workload.generate()
    assert len(flows) == 2
    with pytest.raises(ValueError):
        TraceReplayWorkload.parse_csv("src,dst\n")


def test_trace_replay_rejects_unknown_nodes_and_bad_records():
    with pytest.raises(ValueError):
        TraceReplayWorkload(spec(), [TraceRecordSpec("n0", "zz", 1.0, 0.0)])
    with pytest.raises(ValueError):
        TraceRecordSpec("a", "a", 1.0, 0.0)
    with pytest.raises(ValueError):
        TraceRecordSpec("a", "b", 0.0, 0.0)
    with pytest.raises(ValueError):
        TraceReplayWorkload(spec(), [])
