"""Control-loop runtime tests.

Covers the contracts the closed loop is built on: deterministic tick
ordering on the event engine, resumable fluid simulation, hysteresis and
EWMA spike protection in the go/no-go path, demand conservation across a
mid-flight reconfiguration, and the headline comparative claim (the
adaptive fabric beats the static one on hotspot FCT).
"""

import pytest

from repro.core.control import (
    ControlLoop,
    ControlLoopConfig,
    GridToTorusCandidate,
)
from repro.core.plp import ReconfigurationDelays
from repro.core.reconfiguration import ReconfigurationPlanner
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.comparison import adaptive_vs_static
from repro.experiments.harness import build_grid_fabric
from repro.fabric.topology import TopologyBuilder
from repro.sim.engine import Simulator
from repro.sim.flow import Flow, FlowSet, reset_flow_ids
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.process import PeriodicProcess
from repro.sim.units import megabytes, microseconds
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload


def _corner_pairs(rows, columns):
    name = TopologyBuilder.grid_node_name
    return [
        (name(0, 0), name(rows - 1, columns - 1)),
        (name(0, columns - 1), name(rows - 1, 0)),
    ]


def _hotspot_flows(rows=3, columns=3, num_flows=18, seed=7):
    reset_flow_ids()
    fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(),
        mean_flow_size_bits=megabytes(1.0),
        seed=seed,
    )
    flows = HotspotWorkload(
        spec,
        num_flows=num_flows,
        hot_fraction=0.6,
        hot_pairs=_corner_pairs(rows, columns),
    ).generate()
    return fabric, flows


def _run_loop(fabric, flows, **config_kwargs):
    config = ControlLoopConfig(interval=microseconds(100.0), **config_kwargs)
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            controller="loop",
            controller_config={"config": config, "grid_rows": 3, "grid_columns": 3},
        )
    )
    return record, record.controller_instance.loop


# --------------------------------------------------------------------------- #
# Deterministic ticks on the engine
# --------------------------------------------------------------------------- #
def test_ticks_land_on_engine_grid_and_runs_are_reproducible():
    records = []
    for _ in range(2):
        fabric, flows = _hotspot_flows()
        result, loop = _run_loop(fabric, flows)
        interval = loop.config.interval
        for index, tick in enumerate(loop.ticks, start=1):
            assert tick.time == pytest.approx(index * interval)
            assert tick.index == index
        records.append(
            (
                [f.fct for f in flows],
                [(t.time, t.flows_rerouted, t.reconfigured) for t in loop.ticks],
                loop.reconfiguration_times,
            )
        )
    # Bit-identical across runs: the loop adds no hidden nondeterminism.
    assert records[0] == records[1]


def test_engine_orders_same_time_events_by_schedule_order():
    simulator = Simulator()
    order = []
    first = PeriodicProcess(simulator, "first", period=1.0, callback=lambda now: order.append("first"))
    second = PeriodicProcess(simulator, "second", period=1.0, callback=lambda now: order.append("second"))
    first.start()
    second.start()
    simulator.run(until=3.0)
    # Fires at t = 0, 1, 2, 3; same-time events run in schedule order.
    assert order == ["first", "second"] * 4


def test_control_loop_requires_binding():
    fabric, _ = _hotspot_flows()
    loop = ControlLoop(fabric)
    with pytest.raises(RuntimeError, match="bind"):
        loop.run()
    loop.bind(FluidFlowSimulator())
    with pytest.raises(RuntimeError, match="already bound"):
        loop.bind(FluidFlowSimulator())


# --------------------------------------------------------------------------- #
# Resumable fluid simulation
# --------------------------------------------------------------------------- #
def test_fluid_run_is_resumable_without_readmitting_flows():
    reset_flow_ids()
    simulator = FluidFlowSimulator()
    simulator.add_link("l", 100.0)
    flow_a = Flow(src="a", dst="b", size_bits=100.0, start_time=0.0)
    simulator.add_flow(flow_a, ["l"])
    simulator.run(until=0.5)
    assert flow_a.bits_remaining == pytest.approx(50.0)
    assert simulator.pending_flow_count == 0
    # Mutate mid-run and resume: a second flow arrives, capacity halves.
    flow_b = Flow(src="a", dst="b", size_bits=25.0, start_time=0.6)
    simulator.add_flow(flow_b, ["l"])
    simulator.set_capacity("l", 50.0)
    simulator.run()
    assert flow_a.completed and flow_b.completed
    assert flow_a.metadata["activated_at"] == 0.0  # never re-admitted


# --------------------------------------------------------------------------- #
# Hysteresis, spike protection and flap prevention
# --------------------------------------------------------------------------- #
def test_high_hysteresis_prevents_reconfiguration():
    fabric, flows = _hotspot_flows()
    _, eager = _run_loop(fabric, flows, hysteresis=1.0)
    assert len(eager.reconfiguration_times) == 1

    fabric, flows = _hotspot_flows()
    _, reluctant = _run_loop(fabric, flows, hysteresis=1e6)
    assert reluctant.reconfiguration_times == []
    # The plan was evaluated and turned down, not simply never considered.
    assert any(tick.plans_evaluated > 0 for tick in reluctant.ticks)
    assert all(d["applied"] == 0.0 for d in reluctant.planner.decisions)


def test_planner_min_interval_prevents_flapping():
    delays = ReconfigurationDelays()
    planner = ReconfigurationPlanner(delays=delays, min_interval=1.0)
    candidate = GridToTorusCandidate(3, 3)
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    proposal = candidate.propose(fabric, delays)
    assert planner.should_apply(
        proposal.plan,
        1e9,
        proposal.current_rate_bps,
        proposal.reconfigured_rate_bps,
        now=0.0,
    )
    planner.commit(0.0)
    # Identical (still profitable) plan immediately afterwards: refused.
    assert not planner.should_apply(
        proposal.plan,
        1e9,
        proposal.current_rate_bps,
        proposal.reconfigured_rate_bps,
        now=0.5,
    )
    assert planner.decisions[-1]["applied"] == 0.0
    # Once the interval has elapsed it may fire again.
    assert planner.should_apply(
        proposal.plan,
        1e9,
        proposal.current_rate_bps,
        proposal.reconfigured_rate_bps,
        now=1.5,
    )


def test_smoothed_demand_blocks_one_tick_spike():
    delays = ReconfigurationDelays()
    planner = ReconfigurationPlanner(delays=delays)
    candidate = GridToTorusCandidate(3, 3)
    fabric = build_grid_fabric(3, 3, lanes_per_link=2)
    proposal = candidate.propose(fabric, delays)
    spike = 1e12
    # Instantaneous-only view: the spike clears the break-even test.
    assert planner.should_apply(
        proposal.plan,
        spike,
        proposal.current_rate_bps,
        proposal.reconfigured_rate_bps,
        now=0.0,
    )
    # Smoothed view: the EWMA still remembers an idle fabric, so the same
    # spike is rejected -- it has to persist to lift the average.
    assert not planner.should_apply(
        proposal.plan,
        spike,
        proposal.current_rate_bps,
        proposal.reconfigured_rate_bps,
        now=0.0,
        smoothed_demand_bits=0.0,
    )
    assert planner.decisions[-1]["demand_bits"] == 0.0


# --------------------------------------------------------------------------- #
# Mid-flight reconfiguration
# --------------------------------------------------------------------------- #
def test_reconfiguration_mid_flight_loses_no_demand():
    fabric, flows = _hotspot_flows()
    total_bits = sum(flow.size_bits for flow in flows)
    result, loop = _run_loop(fabric, flows)
    assert len(loop.reconfiguration_times) == 1
    reconfigured_at = loop.reconfiguration_times[0]
    flow_set = FlowSet(flows)
    assert flow_set.completion_fraction() == 1.0
    assert all(flow.bits_remaining == 0.0 for flow in flows)
    # Flows in flight at the reconfiguration instant still finished.
    in_flight = [
        flow
        for flow in flows
        if flow.metadata["activated_at"] <= reconfigured_at
        and flow.completion_time > reconfigured_at
    ]
    assert in_flight
    assert all(flow.completed for flow in in_flight)
    # The delivered volume matches the offered volume exactly.
    delivered = sum(
        result.fluid.link_bits_carried[key]
        for key in result.fluid.link_bits_carried
    )
    assert delivered >= total_bits  # multi-hop paths carry each bit per hop
    # The torus wrap-around links exist and carried traffic after training.
    name = TopologyBuilder.grid_node_name
    wrap = (name(0, 0), name(2, 0))
    assert fabric.topology.has_link(*wrap)
    assert result.fluid.link_bits_carried[wrap] + result.fluid.link_bits_carried[
        (wrap[1], wrap[0])
    ] > 0


def test_new_links_train_before_carrying_traffic():
    fabric, flows = _hotspot_flows()
    _, loop = _run_loop(fabric, flows)
    start = loop.reconfiguration_times[0]
    delays = loop.config.delays
    expected_completion = start + delays.link_create
    started = [t for t in loop.ticks if t.reconfigured]
    assert started and started[0].transition_until == pytest.approx(expected_completion)
    # After the transition no tick reports it as still open.
    later = [t for t in loop.ticks if t.time > expected_completion]
    assert all(t.transition_until is None for t in later)


# --------------------------------------------------------------------------- #
# The comparative claim
# --------------------------------------------------------------------------- #
def test_adaptive_beats_static_on_hotspot_fct():
    rows = adaptive_vs_static("hotspot_migration")
    by_label = {row["label"]: row for row in rows}
    assert by_label["adaptive"]["reconfigurations"] >= 1
    assert by_label["adaptive"]["completion_fraction"] == 1.0
    assert by_label["adaptive"]["mean_fct"] < by_label["static"]["mean_fct"]


def test_loop_stops_driving_a_truncated_fluid_simulation():
    # Regression: the co-sim loop used to keep dispatching engine ticks
    # against a fluid model that had exhausted its event budget, spinning
    # up to max_ticks against frozen traffic state.  It must break out as
    # soon as a fluid run reports truncation, and the record must say so.
    fabric, flows = _hotspot_flows()
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            controller="loop",
            controller_config={"grid_rows": 3, "grid_columns": 3},
            max_events=5,
        )
    )
    assert record.truncated
    assert record.metrics["completion_fraction"] < 1.0
    loop = record.controller_instance.loop
    assert len(loop.ticks) <= 5


def test_loop_summary_counters_are_consistent():
    fabric, flows = _hotspot_flows()
    _, loop = _run_loop(fabric, flows)
    summary = loop.summary()
    assert summary["iterations"] == len(loop.ticks)
    assert summary["reconfigurations"] == len(loop.reconfiguration_times)
    # The total includes the forced wave at transition completion, which
    # happens between tick records.
    assert summary["flows_rerouted"] >= sum(t.flows_rerouted for t in loop.ticks)
    assert summary["commands_failed"] == 0.0
    # Telemetry recorded one sample per tick for the headline series.
    series = loop.telemetry.series("max_utilisation")
    assert len(series.samples) == len(loop.ticks)
