"""Tests for repro.sim.units."""


import pytest

from repro.sim import units


def test_nanoseconds_conversion():
    assert units.nanoseconds(1) == pytest.approx(1e-9)
    assert units.nanoseconds(350) == pytest.approx(3.5e-7)


def test_microseconds_and_milliseconds():
    assert units.microseconds(1) == pytest.approx(1e-6)
    assert units.milliseconds(2) == pytest.approx(2e-3)


def test_round_trip_time_conversions():
    assert units.to_nanoseconds(units.nanoseconds(123)) == pytest.approx(123)
    assert units.to_microseconds(units.microseconds(7)) == pytest.approx(7)
    assert units.to_milliseconds(units.milliseconds(9)) == pytest.approx(9)


def test_gbps_conversion():
    assert units.gbps(100) == pytest.approx(100e9)
    assert units.to_gbps(25e9) == pytest.approx(25)


def test_bits_bytes_round_trip():
    assert units.bits_from_bytes(1500) == 12000
    assert units.bytes_from_bits(units.bits_from_bytes(64)) == 64


def test_kilo_mega_giga_bytes():
    assert units.kilobytes(1) == 8000
    assert units.megabytes(1) == 8e6
    assert units.gigabytes(1) == 8e9


def test_serialization_delay_basic():
    # 12000 bits at 100 Gb/s -> 120 ns
    assert units.serialization_delay(12000, 100e9) == pytest.approx(120e-9)


def test_serialization_delay_zero_size():
    assert units.serialization_delay(0, 10e9) == 0.0


def test_serialization_delay_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.serialization_delay(100, 0)
    with pytest.raises(ValueError):
        units.serialization_delay(100, -1)


def test_serialization_delay_rejects_negative_size():
    with pytest.raises(ValueError):
        units.serialization_delay(-1, 1e9)


def test_seconds_identity():
    assert units.seconds(3.5) == 3.5
