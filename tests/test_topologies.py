"""Topology-family subsystem tests.

Three layers, matching the subsystem's three promises:

* **Declared metadata is exact** -- Hypothesis pins every registered
  family's closed-form endpoint/switch/link/diameter/bisection declaration
  to the graph its builder actually produces, across randomized valid
  dimensions, and checks the built fabric is connected with symmetric
  per-direction link capacities.
* **The registries behave** -- unknown names, duplicate registrations and
  invalid dimensions fail loudly (``TopologyError``); the candidate
  registry maps each family to exactly its legal moves and refuses moves
  against fabrics from a different family (the ISSUE bugfix).
* **The new moves are real reconfigurations** -- executed through the PLP
  executor they conserve the lane budget with zero failed commands, and
  the closed loop applies the fat-tree rebalance end to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    DragonflyGlobalRehomeCandidate,
    FatTreeUplinkRebalanceCandidate,
    GridToTorusCandidate,
    candidate_moves,
    candidates_for_topology,
    register_candidate,
)
from repro.core.plp import PLPExecutor, ReconfigurationDelays
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.scenarios import get_scenario, run_scenario
from repro.fabric.topologies import (
    TopologyError,
    TopologyFamily,
    build_topology_fabric,
    get_topology,
    register_topology,
    topology_catalog,
    topology_metadata,
    topology_names,
)
from repro.fabric.topology import TopologyBuilder
from repro.phy.fec import FEC_RS528
from repro.sim.flow import reset_flow_ids
from repro.sim.units import GBPS, megabytes, microseconds
from repro.workloads.base import WorkloadSpec
from repro.workloads.uniform import UniformRandomWorkload

# Building + routing a fabric per example is the dominant cost; keep the
# example counts modest (these run inside a large suite).
FAMILY_SETTINGS = settings(max_examples=15, deadline=None)

#: One strategy per registered family, drawing valid dimension mappings.
DIMENSION_STRATEGIES = {
    "grid": st.builds(
        lambda r, c: {"rows": r, "columns": c},
        st.integers(2, 5),
        st.integers(2, 5),
    ),
    "torus": st.builds(
        lambda r, c: {"rows": r, "columns": c},
        st.integers(2, 5),
        st.integers(2, 5),
    ),
    "fat-tree": st.builds(lambda p: {"pods": 2 * p}, st.integers(1, 3)),
    "dragonfly": st.builds(
        lambda g, a, h: {
            "groups": g,
            "routers_per_group": a,
            "hosts_per_router": h,
        },
        st.integers(2, 5),
        st.integers(1, 4),
        st.integers(1, 3),
    ),
}


def _check_family(name, dims):
    """One family instance: built graph == declared metadata, connected,
    symmetric capacities, family tag stamped."""
    lanes_per_link, lane_rate = 2, 25 * GBPS
    fabric = build_topology_fabric(name, dims, lanes_per_link=lanes_per_link)
    topology = fabric.topology
    meta = topology_metadata(name, dims, lanes_per_link=lanes_per_link)

    assert topology.kind == name
    assert topology.dimensions == dims
    assert topology.is_connected()

    assert meta.endpoints == len(topology.endpoints())
    assert meta.switches == len(topology.switches())
    assert meta.nodes == len(topology.nodes())
    assert meta.links == len(topology.links())
    assert meta.diameter_hops == topology.diameter()
    # Declared bisection is usable (post-FEC) capacity, matching the
    # built links' capacity_bps basis.
    usable_link = FEC_RS528.effective_rate(lanes_per_link * lane_rate)
    assert meta.bisection_bandwidth_bps == pytest.approx(
        topology.bisection_bandwidth_bps()
    )
    assert meta.bisection_bandwidth_bps == pytest.approx(
        meta.bisection_links * usable_link
    )

    directed = topology.directed_capacities()
    for link in topology.links():
        assert directed[(link.a, link.b)] == pytest.approx(directed[(link.b, link.a)])
        assert link.capacity_bps == pytest.approx(usable_link)


def test_dimension_strategies_cover_every_registered_family():
    """A new built-in family must bring its Hypothesis strategy along."""
    assert set(topology_names()) == set(DIMENSION_STRATEGIES)


@FAMILY_SETTINGS
@given(DIMENSION_STRATEGIES["grid"])
def test_grid_metadata_matches_built_graph(dims):
    _check_family("grid", dims)


@FAMILY_SETTINGS
@given(DIMENSION_STRATEGIES["torus"])
def test_torus_metadata_matches_built_graph(dims):
    _check_family("torus", dims)


@FAMILY_SETTINGS
@given(DIMENSION_STRATEGIES["fat-tree"])
def test_fat_tree_metadata_matches_built_graph(dims):
    _check_family("fat-tree", dims)


@FAMILY_SETTINGS
@given(DIMENSION_STRATEGIES["dragonfly"])
def test_dragonfly_metadata_matches_built_graph(dims):
    _check_family("dragonfly", dims)


# --------------------------------------------------------------------------- #
# Topology registry behaviour
# --------------------------------------------------------------------------- #
def test_unknown_topology_error_names_the_catalog():
    with pytest.raises(TopologyError, match="unknown topology 'moebius'") as excinfo:
        get_topology("moebius")
    for name in topology_names():
        assert name in str(excinfo.value)


def test_duplicate_topology_registration_is_rejected():
    with pytest.raises(TopologyError, match="already registered"):

        @register_topology
        class SecondGrid(TopologyFamily):
            name = "grid"

    assert isinstance(get_topology("grid"), type(topology_catalog()[0]))


def test_unnamed_topology_registration_is_rejected():
    with pytest.raises(TopologyError, match="non-empty name"):

        @register_topology
        class Nameless(TopologyFamily):
            pass


def test_catalog_lists_the_built_ins_in_registration_order():
    assert topology_names() == ["grid", "torus", "fat-tree", "dragonfly"]
    assert [family.name for family in topology_catalog()] == topology_names()
    for family in topology_catalog():
        assert family.description
        assert family.size_formula
        assert family.parameters


@pytest.mark.parametrize(
    "name,params,fragment",
    [
        ("grid", {"rows": 1, "columns": 3}, ">= 2"),
        ("torus", {"rows": 3}, "needs parameter 'columns'"),
        ("fat-tree", {"pods": 3}, "even number"),
        ("fat-tree", {"pods": "many"}, "must be an integer"),
        ("dragonfly", {"groups": 1, "routers_per_group": 2, "hosts_per_router": 1}, ">= 2"),
        ("dragonfly", {"groups": 3, "routers_per_group": 0, "hosts_per_router": 1}, ">= 1"),
    ],
)
def test_invalid_dimensions_raise_topology_error(name, params, fragment):
    with pytest.raises(TopologyError, match=fragment):
        get_topology(name).dimensions(params)


# --------------------------------------------------------------------------- #
# Candidate registry behaviour
# --------------------------------------------------------------------------- #
def test_candidate_moves_per_family():
    assert candidate_moves("grid") == ["grid-to-torus"]
    assert candidate_moves("torus") == []  # already the paper's target shape
    assert candidate_moves("fat-tree") == ["pod-uplink-rebalance"]
    assert candidate_moves("dragonfly") == ["global-link-rehome"]


def test_candidate_moves_rejects_unknown_topology():
    with pytest.raises(TopologyError, match="unknown topology"):
        candidate_moves("moebius")


def test_duplicate_move_registration_is_rejected():
    with pytest.raises(ValueError, match="already registered"):

        @register_candidate("grid", "grid-to-torus")
        def _second(dims):
            raise AssertionError("never built")

    assert candidate_moves("grid") == ["grid-to-torus"]


def test_candidates_for_topology_builds_fresh_instances_from_dims():
    first = candidates_for_topology("grid", {"rows": 3, "columns": 4})
    second = candidates_for_topology("grid", {"rows": 3, "columns": 4})
    assert [type(c) for c in first] == [GridToTorusCandidate]
    assert first[0] is not second[0]
    assert first[0].builder.rows == 3 and first[0].builder.columns == 4

    (fat,) = candidates_for_topology("fat-tree", {"pods": 6})
    assert isinstance(fat, FatTreeUplinkRebalanceCandidate)
    assert fat.pods == 6

    (fly,) = candidates_for_topology(
        "dragonfly", {"groups": 3, "routers_per_group": 3, "hosts_per_router": 2}
    )
    assert isinstance(fly, DragonflyGlobalRehomeCandidate)
    assert (fly.groups, fly.routers_per_group) == (3, 3)

    assert candidates_for_topology("torus", {"rows": 3, "columns": 3}) == []


def test_candidates_for_topology_validates_dimensions():
    with pytest.raises(TopologyError, match="even number"):
        candidates_for_topology("fat-tree", {"pods": 5})


# --------------------------------------------------------------------------- #
# The family guard (ISSUE bugfix): moves refuse foreign fabrics
# --------------------------------------------------------------------------- #
DELAYS = ReconfigurationDelays()


def test_grid_candidate_refuses_dragonfly_fabric():
    fabric = build_topology_fabric(
        "dragonfly", {"groups": 3, "routers_per_group": 3, "hosts_per_router": 1}
    )
    candidate = GridToTorusCandidate(3, 3)
    with pytest.raises(ValueError) as excinfo:
        candidate.propose(fabric, DELAYS)
    message = str(excinfo.value)
    assert "grid-to-torus" in message
    assert "grid / torus" in message
    assert "dragonfly" in message


def test_fat_tree_candidate_refuses_grid_fabric():
    fabric = build_topology_fabric("grid", {"rows": 3, "columns": 3})
    with pytest.raises(ValueError, match="applies to topology family fat-tree"):
        FatTreeUplinkRebalanceCandidate(4).propose(fabric, DELAYS)


def test_dragonfly_candidate_refuses_fat_tree_fabric():
    fabric = build_topology_fabric("fat-tree", {"pods": 4})
    with pytest.raises(ValueError, match="applies to topology family dragonfly"):
        DragonflyGlobalRehomeCandidate(3, 3).propose(fabric, DELAYS)


def test_grid_candidate_refuses_mismatched_grid_dimensions():
    fabric = build_topology_fabric("grid", {"rows": 3, "columns": 4})
    with pytest.raises(ValueError, match="built for a 2x2 grid"):
        GridToTorusCandidate(2, 2).propose(fabric, DELAYS)


def test_hand_built_topology_passes_the_family_guard():
    """kind=None (pre-registry construction) keeps the legacy behaviour."""
    from repro.fabric.fabric import Fabric, FabricConfig

    topology = TopologyBuilder(lanes_per_link=2).grid(3, 3)
    topology.kind = None
    topology.dimensions = {}
    proposal = GridToTorusCandidate(3, 3).propose(
        Fabric(topology, FabricConfig()), DELAYS
    )
    assert proposal is not None
    assert proposal.reconfigured_rate_bps > proposal.current_rate_bps


# --------------------------------------------------------------------------- #
# The new moves executed through the PLP executor
# --------------------------------------------------------------------------- #
def test_fat_tree_rebalance_conserves_lanes_through_the_executor():
    fabric = build_topology_fabric("fat-tree", {"pods": 4})
    topology = fabric.topology
    lanes_before = topology.total_lanes()
    capacity_before = sum(link.capacity_bps for link in topology.links())
    links_before = len(topology.links())

    candidate = FatTreeUplinkRebalanceCandidate(4)
    proposal = candidate.propose(fabric, DELAYS)
    assert proposal is not None
    assert proposal.reconfigured_rate_bps > proposal.current_rate_bps

    executor = PLPExecutor(fabric)
    executor.execute_batch(proposal.plan.commands)
    assert executor.commands_failed == 0
    assert executor.free_lanes == []  # the whole harvest was redeployed
    assert topology.total_lanes() == lanes_before
    assert len(topology.links()) == links_before
    assert sum(link.capacity_bps for link in topology.links()) == pytest.approx(
        capacity_before
    )
    # Every aggregation->core uplink gained a lane, every edge->aggregation
    # downlink lost one.
    assert topology.link_between("agg0_0", "core0").num_lanes == 3
    assert topology.link_between("agg0_0", "edge0_0").num_lanes == 1

    candidate.committed(now=0.0)
    assert candidate.propose(fabric, DELAYS) is None  # retired


def test_dragonfly_rehome_conserves_lanes_through_the_executor():
    dims = {"groups": 3, "routers_per_group": 3, "hosts_per_router": 2}
    fabric = build_topology_fabric("dragonfly", dims)
    topology = fabric.topology
    lanes_before = topology.total_lanes()
    capacity_before = sum(link.capacity_bps for link in topology.links())
    links_before = len(topology.links())

    candidate = DragonflyGlobalRehomeCandidate(3, 3)
    proposal = candidate.propose(fabric, DELAYS)
    assert proposal is not None
    assert proposal.reconfigured_rate_bps > proposal.current_rate_bps

    executor = PLPExecutor(fabric)
    executor.execute_batch(proposal.plan.commands)
    assert executor.commands_failed == 0
    assert executor.free_lanes == []  # 9 harvested lanes = 3 new links x 3 lanes
    assert topology.total_lanes() == lanes_before
    assert len(topology.links()) == links_before + 3  # one per group pair
    assert sum(link.capacity_bps for link in topology.links()) == pytest.approx(
        capacity_before
    )
    for left, right in candidate.rehomed_global_pairs():
        assert topology.has_link(left, right)
        assert topology.link_between(left, right).num_lanes == 3
    assert topology.is_connected()

    # With the rotated links in place the candidate retires itself.
    assert candidate.propose(fabric, DELAYS) is None
    assert candidate.applied


def test_dragonfly_rehome_is_infeasible_with_single_router_groups():
    fabric = build_topology_fabric(
        "dragonfly", {"groups": 3, "routers_per_group": 1, "hosts_per_router": 2}
    )
    candidate = DragonflyGlobalRehomeCandidate(3, 1)
    assert candidate.propose(fabric, DELAYS) is None  # rotation hits the original


def test_dragonfly_rehome_is_infeasible_when_harvest_cannot_fund_the_plane():
    # a * (a - 1) = 2 < groups - 1 = 4: lanes_per_new rounds to zero.
    fabric = build_topology_fabric(
        "dragonfly", {"groups": 5, "routers_per_group": 2, "hosts_per_router": 1}
    )
    candidate = DragonflyGlobalRehomeCandidate(5, 2)
    assert candidate.propose(fabric, DELAYS) is None


# --------------------------------------------------------------------------- #
# The closed loop applies the fat-tree move end to end
# --------------------------------------------------------------------------- #
def test_loop_controller_applies_pod_uplink_rebalance():
    reset_flow_ids()
    fabric = build_topology_fabric("fat-tree", {"pods": 4})
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(),
        mean_flow_size_bits=megabytes(2.0),
        seed=11,
    )
    flows = UniformRandomWorkload(spec, num_flows=48).generate()
    from repro.core.control import ControlLoopConfig

    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            controller="loop",
            controller_config={
                "config": ControlLoopConfig(
                    interval=microseconds(100.0),
                    utilisation_threshold=0.05,
                    hysteresis=1.0,
                    break_even_margin=1.0,
                    min_reconfiguration_interval=microseconds(100.0),
                ),
                "topology": "fat-tree",
                "topology_params": {"pods": 4},
            },
        )
    )
    loop = record.controller_instance.loop
    assert loop.reconfiguration_times  # the rebalance was committed
    assert record.metrics["completion_fraction"] == 1.0
    assert fabric.topology.link_between("agg0_0", "core0").num_lanes == 3
    assert fabric.topology.link_between("agg0_0", "edge0_0").num_lanes == 1


# --------------------------------------------------------------------------- #
# Scenario-layer integration: 1k-endpoint defaults on both backends
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["fluid", "packet"])
def test_fattree_uniform_runs_at_1k_endpoints(backend):
    scenario = get_scenario("fattree_uniform")
    assert int(scenario.parameters()["pods"]) ** 3 // 4 >= 1000
    row = run_scenario(
        "fattree_uniform",
        overrides={"backend": backend, "num_flows": 64, "mean_flow_mb": 0.05},
    )
    assert row["metrics"]["completion_fraction"] == 1.0
    assert row["params"]["topology"] == "fat-tree"


@pytest.mark.parametrize("backend", ["fluid", "packet"])
def test_dragonfly_permutation_runs_at_1k_endpoints(backend):
    params = get_scenario("dragonfly_permutation").parameters()
    endpoints = (
        int(params["groups"])
        * int(params["routers_per_group"])
        * int(params["hosts_per_router"])
    )
    assert endpoints >= 1000
    row = run_scenario(
        "dragonfly_permutation",
        overrides={"backend": backend, "mean_flow_mb": 0.02},
    )
    assert row["metrics"]["completion_fraction"] == 1.0
    assert row["params"]["topology"] == "dragonfly"
