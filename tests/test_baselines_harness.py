"""Tests for baselines, the experiment harness and the figure generators."""

import pytest

from repro.baselines.circuit import OracleCircuitBaseline
from repro.core.crc import CRCConfig
from repro.experiments.api import ExperimentSpec, run_experiment
from repro.experiments.figures import figure1_rows, figure2_rows, mapreduce_comparison_rows
from repro.experiments.harness import build_grid_fabric, build_torus_fabric
from repro.fabric.fabric import Fabric
from repro.fabric.topology import TopologyBuilder
from repro.sim.flow import Flow
from repro.sim.units import GBPS, megabytes
from repro.workloads.base import WorkloadSpec
from repro.workloads.mapreduce import MapReduceShuffleWorkload


def grid_names(rows, columns):
    return [TopologyBuilder.grid_node_name(r, c) for r in range(rows) for c in range(columns)]


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def test_build_grid_and_torus_fabrics():
    grid = build_grid_fabric(3, 3, lanes_per_link=2)
    torus = build_torus_fabric(3, 3, lanes_per_link=1)
    assert len(grid.topology.links()) == 12
    assert len(torus.topology.links()) == 18
    assert grid.topology.total_lanes() == 24
    assert torus.topology.total_lanes() == 18


def test_run_experiment_completes_flows():
    fabric = build_grid_fabric(3, 3)
    flows = [Flow("n0x0", "n2x2", megabytes(1)), Flow("n0x2", "n2x0", megabytes(1))]
    record = run_experiment(ExperimentSpec(fabric=fabric, flows=flows, label="smoke"))
    assert record.label == "smoke"
    assert record.makespan is not None and record.makespan > 0
    assert record.mean_fct is not None
    assert record.power_watts > 0
    assert record.to_dict()["label"] == "smoke"


def test_run_experiment_with_crc_controller_reconfigures():
    names = grid_names(3, 3)
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=megabytes(2), seed=5)
    flows = MapReduceShuffleWorkload(spec).generate()
    record = run_experiment(
        ExperimentSpec(
            fabric=build_grid_fabric(3, 3),
            flows=flows,
            label="adaptive",
            controller="crc",
            controller_config={
                "config": CRCConfig(
                    enable_topology_reconfiguration=True, grid_rows=3, grid_columns=3
                )
            },
        )
    )
    assert record.makespan is not None
    assert record.controller_summary.name == "crc"
    assert record.controller_summary.iterations >= 0
    crc = record.controller_instance.crc
    assert crc.summary()["iterations"] == record.controller_summary.data["iterations"]


# --------------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------------- #
def test_static_baseline_runs_without_control():
    fabric = build_grid_fabric(3, 3)
    flows = [Flow("n0x0", "n2x2", megabytes(1))]
    record = run_experiment(
        ExperimentSpec(fabric=fabric, flows=flows, controller="static")
    )
    assert dict(record.controller_summary.data) == {}
    assert record.flows.completion_fraction() == 1.0


def test_ecmp_baseline_spreads_flows_over_paths():
    topology = TopologyBuilder(lanes_per_link=2).grid(3, 3)
    flows = [Flow("n0x0", "n2x2", megabytes(1)) for _ in range(8)]
    record = run_experiment(
        ExperimentSpec(fabric=Fabric(topology), flows=flows, controller="ecmp")
    )
    assert record.flows.completion_fraction() == 1.0
    # ECMP should have used more than one distinct path across the flows.
    assert len({tuple(flow.path) for flow in flows}) > 1


def test_oracle_circuit_serialises_per_endpoint():
    oracle = OracleCircuitBaseline(nic_rate_bps=100 * GBPS, circuit_setup_time=0.0)
    flows = [Flow("a", "b", 100 * GBPS), Flow("a", "c", 100 * GBPS)]
    result = oracle.run(flows)
    # Both flows share the sender, so they run back to back (1 s each).
    assert result.makespan() == pytest.approx(2.0)
    assert oracle.lower_bound_makespan(flows) == pytest.approx(2.0)


def test_oracle_circuit_parallel_disjoint_pairs():
    oracle = OracleCircuitBaseline(nic_rate_bps=100 * GBPS, circuit_setup_time=0.0)
    flows = [Flow("a", "b", 100 * GBPS), Flow("c", "d", 100 * GBPS)]
    result = oracle.run(flows)
    assert result.makespan() == pytest.approx(1.0)


def test_oracle_circuit_setup_cost_counts():
    oracle = OracleCircuitBaseline(nic_rate_bps=100 * GBPS, circuit_setup_time=1e-3)
    flows = [Flow("a", "b", 100 * GBPS)]
    result = oracle.run(flows)
    assert result.makespan() == pytest.approx(1.0 + 1e-3)
    with pytest.raises(ValueError):
        OracleCircuitBaseline(nic_rate_bps=0)


# --------------------------------------------------------------------------- #
# Figure generators
# --------------------------------------------------------------------------- #
def test_figure1_rows_show_switching_dominance():
    rows = figure1_rows(distances_meters=[2, 10, 20, 40])
    assert len(rows) == 4
    for row in rows[1:]:
        assert row["switching_latency"] > row["media_latency"]
    assert rows[-1]["ratio"] > rows[1]["ratio"] * 0.5


def test_figure2_rows_adaptive_converges_to_torus():
    rows = figure2_rows(rows=3, columns=3, flow_size_bits=megabytes(2), seed=1)
    by_config = {row["configuration"]: row for row in rows}
    assert set(by_config) == {"grid-static", "adaptive-crc", "torus-static"}
    grid = by_config["grid-static"]
    adaptive = by_config["adaptive-crc"]
    torus = by_config["torus-static"]
    # The CRC reconfigured and reached the torus shape.
    assert adaptive["reconfigurations"] >= 1
    assert adaptive["diameter_hops"] == torus["diameter_hops"]
    assert adaptive["diameter_hops"] < grid["diameter_hops"]
    assert adaptive["mean_hops"] < grid["mean_hops"]
    # Latency on the critical path improves and power drops.
    assert adaptive["max_latency"] < grid["max_latency"]
    assert adaptive["fabric_power_watts"] < grid["fabric_power_watts"]
    # The workload still completed under the CRC.
    assert adaptive["makespan"] is not None


def test_mapreduce_comparison_improves_straggler():
    rows = mapreduce_comparison_rows(rows=3, columns=3, flow_size_bits=megabytes(2), seed=2)
    by_config = {row["configuration"]: row for row in rows}
    static = by_config["grid-static"]
    adaptive = by_config["adaptive-crc"]
    assert static["makespan"] is not None and adaptive["makespan"] is not None
    # The adaptive fabric should not lose badly, and the straggler ratio
    # (the paper's concern) should not get worse.
    assert adaptive["makespan"] <= static["makespan"] * 1.25
    assert adaptive["straggler_ratio"] <= static["straggler_ratio"] * 1.05
