"""repro: adaptive rack-scale fabrics.

A reproduction of *"High speed adaptive rack-scale fabrics"* (Sella, Moore,
Zilberman; SIGCOMM 2018): Physical Layer Primitives (PLP) orchestrated by a
Closed Ring Control (CRC) over a discrete-event rack-fabric simulator.

Quick start::

    from repro import (
        CRCConfig, ClosedRingControl, TopologyBuilder, Fabric,
        WorkloadSpec, MapReduceShuffleWorkload, run_fluid_experiment,
    )

    fabric = Fabric(TopologyBuilder(lanes_per_link=2).grid(4, 4))
    crc = ClosedRingControl(fabric, CRCConfig(
        enable_topology_reconfiguration=True, grid_rows=4, grid_columns=4))
    spec = WorkloadSpec(nodes=fabric.topology.endpoints())
    result = run_fluid_experiment(
        fabric, MapReduceShuffleWorkload(spec).generate(), crc=crc)
    print(result.makespan)
"""

from repro.analysis import LatencyModel, media_vs_switching_series, validate_against_analytical
from repro.baselines import OracleCircuitBaseline, run_ecmp_baseline, run_static_baseline
from repro.core import (
    AdaptiveFecPolicy,
    BypassPolicy,
    ClosedRingControl,
    CompositePolicy,
    ControlLoop,
    ControlLoopConfig,
    CRCConfig,
    FlowScheduler,
    GridToTorusCandidate,
    GridToTorusPlan,
    LatencyMinimizationPolicy,
    LinkPriceTagger,
    Observation,
    PLPCommand,
    PLPCommandType,
    PLPExecutor,
    PowerCapPolicy,
    PriceWeights,
    ReconfigurationDelays,
    ReconfigurationPlanner,
    break_even_flow_size,
)
from repro.experiments import (
    ExperimentResult,
    Scenario,
    adaptive_vs_static,
    build_fabric,
    build_grid_fabric,
    build_torus_fabric,
    figure1_rows,
    figure2_rows,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_adaptive_experiment,
    run_control_loop_experiment,
    run_fluid_experiment,
    run_scenario,
    run_sweep,
)
from repro.fabric import (
    CutThroughSwitch,
    Fabric,
    FabricConfig,
    Node,
    NodeType,
    Router,
    RoutingPolicy,
    Topology,
    TopologyBuilder,
)
from repro.phy import (
    STANDARD_FEC_SCHEMES,
    AdaptiveFecController,
    BypassManager,
    FecScheme,
    Lane,
    LaneState,
    Link,
    Media,
    PowerBudget,
    PowerModel,
)
from repro.sim import (
    Flow,
    FlowSet,
    FluidFlowSimulator,
    Packet,
    RandomStreams,
    Simulator,
    TraceRecorder,
)
from repro.telemetry import TelemetryCollector
from repro.workloads import (
    DisaggregatedStorageWorkload,
    HotspotWorkload,
    IncastWorkload,
    MapReduceShuffleWorkload,
    PermutationWorkload,
    TraceReplayWorkload,
    UniformRandomWorkload,
    WorkloadSpec,
)

__version__ = "1.0.0"

__all__ = [
    "LatencyModel",
    "media_vs_switching_series",
    "validate_against_analytical",
    "OracleCircuitBaseline",
    "run_ecmp_baseline",
    "run_static_baseline",
    "AdaptiveFecPolicy",
    "BypassPolicy",
    "ClosedRingControl",
    "CompositePolicy",
    "ControlLoop",
    "ControlLoopConfig",
    "CRCConfig",
    "FlowScheduler",
    "GridToTorusCandidate",
    "GridToTorusPlan",
    "LatencyMinimizationPolicy",
    "LinkPriceTagger",
    "Observation",
    "PLPCommand",
    "PLPCommandType",
    "PLPExecutor",
    "PowerCapPolicy",
    "PriceWeights",
    "ReconfigurationDelays",
    "ReconfigurationPlanner",
    "break_even_flow_size",
    "ExperimentResult",
    "Scenario",
    "adaptive_vs_static",
    "build_fabric",
    "build_grid_fabric",
    "build_torus_fabric",
    "figure1_rows",
    "figure2_rows",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_adaptive_experiment",
    "run_control_loop_experiment",
    "run_fluid_experiment",
    "run_scenario",
    "run_sweep",
    "CutThroughSwitch",
    "Fabric",
    "FabricConfig",
    "Node",
    "NodeType",
    "Router",
    "RoutingPolicy",
    "Topology",
    "TopologyBuilder",
    "STANDARD_FEC_SCHEMES",
    "AdaptiveFecController",
    "BypassManager",
    "FecScheme",
    "Lane",
    "LaneState",
    "Link",
    "Media",
    "PowerBudget",
    "PowerModel",
    "Flow",
    "FlowSet",
    "FluidFlowSimulator",
    "Packet",
    "RandomStreams",
    "Simulator",
    "TraceRecorder",
    "TelemetryCollector",
    "DisaggregatedStorageWorkload",
    "HotspotWorkload",
    "IncastWorkload",
    "MapReduceShuffleWorkload",
    "PermutationWorkload",
    "TraceReplayWorkload",
    "UniformRandomWorkload",
    "WorkloadSpec",
    "__version__",
]
