"""The Figure 1 latency model.

The paper's Figure 1 plots, against distance through the rack, (a) the
latency a packet accumulates because of propagation through the media and
(b) the latency it accumulates by traversing state-of-the-art layer-2
cut-through switches, assuming a switching element every two metres.  The
conclusion is that at rack scale the switching term dominates by orders of
magnitude, which is the motivation for pushing reconfiguration down to the
physical layer.

:class:`LatencyModel` reproduces both curves in closed form and adds the
related series used elsewhere in the evaluation (per-hop breakdown,
store-and-forward comparison, serialization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.fabric.switch import SwitchModel
from repro.phy.fec import FEC_NONE, FecScheme
from repro.phy.media import FIBER_MMF, Media
from repro.sim.units import bits_from_bytes, gbps


@dataclass
class LatencyModel:
    """Closed-form per-path latency under the Figure 1 assumptions."""

    #: Distance between adjacent switching elements (paper: 2 m).
    hop_spacing_meters: float = 2.0
    #: Transmission medium.
    media: Media = FIBER_MMF
    #: Cut-through switch parameters.
    switch: SwitchModel = field(default_factory=SwitchModel)
    #: Link rate used for serialization.
    link_rate_bps: float = gbps(100)
    #: FEC applied per link (Figure 1 assumes the switch datasheet number,
    #: i.e. no extra FEC term; keep NONE for the headline curve).
    fec: FecScheme = FEC_NONE
    #: Per-hop SerDes latency (transmit + receive pair).
    serdes_latency: float = 25e-9

    def __post_init__(self) -> None:
        if self.hop_spacing_meters <= 0:
            raise ValueError("hop_spacing_meters must be positive")
        if self.link_rate_bps <= 0:
            raise ValueError("link_rate_bps must be positive")
        if self.serdes_latency < 0:
            raise ValueError("serdes_latency must be >= 0")

    # ------------------------------------------------------------------ #
    # Per-hop terms
    # ------------------------------------------------------------------ #
    def propagation_per_hop(self) -> float:
        """Media propagation delay over one hop's cable run."""
        return self.media.propagation_delay(self.hop_spacing_meters)

    def switching_per_hop(self, packet_size_bytes: float) -> float:
        """Cut-through forwarding latency of one switching element."""
        packet_bits = bits_from_bytes(packet_size_bytes)
        decision_bits = min(self.switch.header_bits, packet_bits)
        return decision_bits / self.switch.port_rate_bps + self.switch.pipeline_latency

    def store_and_forward_per_hop(self, packet_size_bytes: float) -> float:
        """Store-and-forward forwarding latency of one element (baseline)."""
        packet_bits = bits_from_bytes(packet_size_bytes)
        return packet_bits / self.switch.port_rate_bps + self.switch.pipeline_latency

    def serialization(self, packet_size_bytes: float) -> float:
        """Time to clock the packet onto the first link (paid once, cut-through)."""
        packet_bits = bits_from_bytes(packet_size_bytes)
        return packet_bits / self.fec.effective_rate(self.link_rate_bps)

    def phy_per_hop(self) -> float:
        """SerDes plus FEC latency per link."""
        return self.serdes_latency + self.fec.latency

    # ------------------------------------------------------------------ #
    # Path-level quantities
    # ------------------------------------------------------------------ #
    def hops_for_distance(self, distance_meters: float) -> int:
        """Number of switching elements traversed over *distance_meters*.

        With an element every ``hop_spacing_meters``, a path of distance D
        crosses ``D / spacing`` links and ``D / spacing - 1`` intermediate
        switching elements (the endpoints do not forward).
        """
        if distance_meters < 0:
            raise ValueError("distance must be >= 0")
        links = max(1, round(distance_meters / self.hop_spacing_meters))
        return max(0, links - 1)

    def media_latency(self, distance_meters: float) -> float:
        """Total propagation latency over *distance_meters* of media."""
        return self.media.propagation_delay(distance_meters)

    def switching_latency(self, distance_meters: float, packet_size_bytes: float) -> float:
        """Total cut-through switching latency over *distance_meters*."""
        return self.hops_for_distance(distance_meters) * self.switching_per_hop(
            packet_size_bytes
        )

    def end_to_end(
        self,
        distance_meters: float,
        packet_size_bytes: float,
        include_serialization: bool = True,
        store_and_forward: bool = False,
    ) -> Dict[str, float]:
        """Full latency breakdown for a path of the given physical length."""
        links = max(1, round(distance_meters / self.hop_spacing_meters))
        hops = max(0, links - 1)
        per_hop_switch = (
            self.store_and_forward_per_hop(packet_size_bytes)
            if store_and_forward
            else self.switching_per_hop(packet_size_bytes)
        )
        breakdown = {
            "serialization": self.serialization(packet_size_bytes)
            if include_serialization
            else 0.0,
            "propagation": self.media_latency(distance_meters),
            "switching": hops * per_hop_switch,
            "phy": links * self.phy_per_hop(),
        }
        breakdown["total"] = sum(breakdown.values())
        breakdown["hops"] = float(hops)
        breakdown["links"] = float(links)
        return breakdown

    def switching_dominance_ratio(
        self, distance_meters: float, packet_size_bytes: float
    ) -> float:
        """Switching latency divided by media latency (the Figure 1 headline).

        Values far above 1 are the paper's point: at rack scale, packet
        switching, not the media, is the bottleneck.
        """
        media = self.media_latency(distance_meters)
        if media <= 0:
            return float("inf")
        return self.switching_latency(distance_meters, packet_size_bytes) / media


def media_vs_switching_series(
    distances_meters: Sequence[float],
    packet_size_bytes: float = 1500.0,
    model: LatencyModel = None,
) -> List[Dict[str, float]]:
    """The two Figure 1 curves, one row per distance.

    Each row contains the distance, the number of switch traversals, the
    media (propagation) latency, the switching latency, and their ratio.
    """
    model = model if model is not None else LatencyModel()
    series: List[Dict[str, float]] = []
    for distance in distances_meters:
        row = {
            "distance_meters": float(distance),
            "hops": float(model.hops_for_distance(distance)),
            "media_latency": model.media_latency(distance),
            "switching_latency": model.switching_latency(distance, packet_size_bytes),
        }
        row["ratio"] = (
            row["switching_latency"] / row["media_latency"]
            if row["media_latency"] > 0
            else float("inf")
        )
        series.append(row)
    return series


def hop_latency_table(
    hop_counts: Sequence[int],
    packet_size_bytes: float = 1500.0,
    model: LatencyModel = None,
) -> List[Dict[str, float]]:
    """Latency breakdown as a function of hop count (the same data keyed by hops)."""
    model = model if model is not None else LatencyModel()
    rows: List[Dict[str, float]] = []
    for hops in hop_counts:
        if hops < 0:
            raise ValueError("hop counts must be >= 0")
        distance = (hops + 1) * model.hop_spacing_meters
        breakdown = model.end_to_end(distance, packet_size_bytes)
        breakdown["requested_hops"] = float(hops)
        rows.append(breakdown)
    return rows
