"""Rack-level power estimation (experiment E5 support).

The closed-form estimates here let the power-budget benchmark show how the
fabric's share of the rack envelope scales with lane count and lane rate,
and what the adaptive policies can recover by gating lanes off.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.fabric.fabric import Fabric
from repro.phy.lane import DEFAULT_LANE_POWER_WATTS, DEFAULT_STANDBY_POWER_WATTS
from repro.phy.power import PowerModel


def rack_power_estimate(
    num_nodes: int,
    links: int,
    lanes_per_link: int,
    active_lane_fraction: float = 1.0,
    lane_power_watts: float = DEFAULT_LANE_POWER_WATTS,
    standby_power_watts: float = DEFAULT_STANDBY_POWER_WATTS,
    model: PowerModel = None,
) -> Dict[str, float]:
    """Closed-form fabric power for a homogeneous rack.

    Returns the per-component breakdown (lanes, standby lanes, NICs, switch
    ports) and the total, in watts.
    """
    if num_nodes <= 0 or links < 0 or lanes_per_link <= 0:
        raise ValueError("num_nodes/links/lanes_per_link must be positive")
    if not 0 <= active_lane_fraction <= 1:
        raise ValueError("active_lane_fraction must be in [0, 1]")
    model = model if model is not None else PowerModel()
    total_lanes = links * lanes_per_link
    active_lanes = total_lanes * active_lane_fraction
    standby_lanes = total_lanes - active_lanes
    lanes_watts = active_lanes * lane_power_watts
    standby_watts = standby_lanes * standby_power_watts
    nic_watts = num_nodes * model.nic_base_watts
    # Each link's active lanes are driven by a port at both ends.
    port_watts = 2 * active_lanes * model.switch_port_lane_watts
    total = lanes_watts + standby_watts + nic_watts + port_watts
    return {
        "lanes_watts": lanes_watts,
        "standby_watts": standby_watts,
        "nic_watts": nic_watts,
        "port_watts": port_watts,
        "total_watts": total,
    }


def lane_power_sweep(
    fabric: Fabric,
    active_lane_fractions: Sequence[float],
) -> List[Dict[str, float]]:
    """Measure fabric power while sweeping the fraction of active lanes.

    The sweep mutates lane states in place and restores full activation at
    the end, so it is safe to run on a fabric that is about to be used.
    """
    rows: List[Dict[str, float]] = []
    links = fabric.topology.links()
    for fraction in active_lane_fractions:
        if not 0 < fraction <= 1:
            raise ValueError("active lane fractions must be in (0, 1]")
        for link in links:
            target = max(1, int(round(link.num_lanes * fraction)))
            link.set_active_lane_count(target)
        report = fabric.power_report()
        rows.append(
            {
                "active_lane_fraction": float(fraction),
                "active_lanes": float(fabric.topology.total_active_lanes()),
                "links_watts": report.links_watts,
                "total_watts": report.total_watts,
            }
        )
    for link in links:
        link.set_active_lane_count(link.num_lanes)
    return rows
