"""Simulation validation: the reproduction's substitute for the hardware POC.

The paper's methodology (section 4) is: build a small-scale simulation,
validate it against a NetFPGA SUME hardware proof of concept, then trust the
large-scale simulation.  We have no NetFPGA, so the validation step becomes:
the packet-level simulator and the closed-form analytical latency model must
agree on small topologies to within a tight tolerance.  The same check runs
as a test (continuously) and as benchmark E6 (reported in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.packetsim import PacketLevelNetwork
from repro.fabric.topology import TopologyBuilder
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.units import bits_from_bytes


@dataclass
class ValidationResult:
    """Comparison of simulated and analytical latency for one scenario."""

    scenario: str
    hops: int
    packet_size_bytes: float
    simulated_latency: float
    analytical_latency: float

    @property
    def relative_error(self) -> float:
        """|simulated - analytical| / analytical."""
        if self.analytical_latency == 0:
            return 0.0 if self.simulated_latency == 0 else float("inf")
        return abs(self.simulated_latency - self.analytical_latency) / self.analytical_latency

    def within(self, tolerance: float) -> bool:
        """Whether the relative error is within *tolerance*."""
        return self.relative_error <= tolerance


def _simulate_single_packet(fabric: Fabric, src: str, dst: str, size_bytes: float) -> float:
    simulator = Simulator()
    network = PacketLevelNetwork(simulator, fabric)
    packet = Packet.of_bytes(src, dst, size_bytes, created_at=0.0)
    network.inject(packet)
    simulator.drain()
    if packet.latency is None:
        raise RuntimeError(f"validation packet {src}->{dst} was not delivered")
    return packet.latency


def validate_against_analytical(
    chain_lengths: Sequence[int] = (2, 3, 5, 9),
    packet_sizes_bytes: Sequence[float] = (64.0, 1500.0),
    lanes_per_link: int = 4,
    builder: Optional[TopologyBuilder] = None,
) -> List[ValidationResult]:
    """Run the validation suite on linear chains of varying length.

    For every chain length ``L`` (number of nodes) and packet size, one
    packet is sent from the first to the last node of an idle line topology
    and its simulated latency is compared against the fabric's closed-form
    :meth:`~repro.fabric.fabric.Fabric.path_latency`.
    """
    builder = builder if builder is not None else TopologyBuilder(lanes_per_link=lanes_per_link)
    results: List[ValidationResult] = []
    for length in chain_lengths:
        if length < 2:
            raise ValueError("chain lengths must be >= 2")
        topology = builder.line(length)
        fabric = Fabric(topology, FabricConfig())
        src, dst = "n0", f"n{length - 1}"
        path = fabric.router.path(src, dst)
        for size_bytes in packet_sizes_bytes:
            analytical = fabric.path_latency(path, bits_from_bytes(size_bytes))["total"]
            simulated = _simulate_single_packet(fabric, src, dst, size_bytes)
            results.append(
                ValidationResult(
                    scenario=f"line-{length}",
                    hops=length - 1,
                    packet_size_bytes=size_bytes,
                    simulated_latency=simulated,
                    analytical_latency=analytical,
                )
            )
    return results


def validation_summary(results: Sequence[ValidationResult]) -> Dict[str, float]:
    """Aggregate validation errors (max / mean relative error)."""
    if not results:
        raise ValueError("no validation results supplied")
    errors = [result.relative_error for result in results]
    return {
        "scenarios": float(len(results)),
        "max_relative_error": max(errors),
        "mean_relative_error": sum(errors) / len(errors),
    }
