"""Closed-form analytical models and the simulation-validation harness.

These models serve two roles in the reproduction:

* they regenerate Figure 1 directly (the per-hop latency comparison is an
  analytical statement about cut-through switching versus media propagation,
  not a simulation result), and
* they validate the simulators: the paper's methodology validates the
  small-scale simulation against a NetFPGA hardware proof of concept, and
  this reproduction substitutes agreement between the packet-level
  simulator and the closed-form pipeline model (:mod:`repro.analysis.validation`).
"""

from repro.analysis.breakeven import break_even_curve, reconfiguration_crossover_table
from repro.analysis.latency import (
    LatencyModel,
    hop_latency_table,
    media_vs_switching_series,
)
from repro.analysis.power import lane_power_sweep, rack_power_estimate
from repro.analysis.validation import ValidationResult, validate_against_analytical

__all__ = [
    "break_even_curve",
    "reconfiguration_crossover_table",
    "LatencyModel",
    "hop_latency_table",
    "media_vs_switching_series",
    "lane_power_sweep",
    "rack_power_estimate",
    "ValidationResult",
    "validate_against_analytical",
]
