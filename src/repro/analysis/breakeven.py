"""Break-even curves for reconfiguration (experiment E4).

These are the analytical companions of
:mod:`repro.core.reconfiguration`: for a sweep of reconfiguration delays
and speed-ups they tabulate the minimum flow size for which reconfiguration
is worth the cost, and for a sweep of flow sizes they tabulate which side
of the crossover each lands on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.reconfiguration import break_even_flow_size, reconfiguration_gain


def break_even_curve(
    reconfiguration_delays: Sequence[float],
    current_rate_bps: float,
    reconfigured_rate_bps: float,
) -> List[Dict[str, float]]:
    """Break-even flow size as a function of reconfiguration delay."""
    rows: List[Dict[str, float]] = []
    for delay in reconfiguration_delays:
        threshold = break_even_flow_size(current_rate_bps, reconfigured_rate_bps, delay)
        rows.append(
            {
                "reconfiguration_delay": float(delay),
                "break_even_bits": threshold,
                "break_even_bytes": threshold / 8.0,
            }
        )
    return rows


def reconfiguration_crossover_table(
    flow_sizes_bits: Sequence[float],
    current_rate_bps: float,
    reconfigured_rate_bps: float,
    reconfiguration_delay: float,
) -> List[Dict[str, float]]:
    """Per-flow-size gain and the worthwhile verdict for one delay setting."""
    threshold = break_even_flow_size(
        current_rate_bps, reconfigured_rate_bps, reconfiguration_delay
    )
    rows: List[Dict[str, float]] = []
    for size in flow_sizes_bits:
        gain = reconfiguration_gain(
            size, current_rate_bps, reconfigured_rate_bps, reconfiguration_delay
        )
        rows.append(
            {
                "flow_size_bits": float(size),
                "gain_seconds": gain,
                "worthwhile": 1.0 if gain > 0 else 0.0,
                "break_even_bits": threshold,
            }
        )
    return rows
