"""The Closed Ring Control (CRC).

The CRC is the feedback loop of the architecture: every control interval it

1. ingests per-link statistics (utilisation, queueing, health, power) --
   PLP primitive 5,
2. tags every link with a price (:mod:`repro.core.cost`),
3. asks its policy stack for PLP commands
   (:mod:`repro.core.policy`),
4. executes the commands through the PLP executor, which mutates the fabric
   and charges reconfiguration delays (:mod:`repro.core.plp`),
5. re-routes traffic over the updated fabric.

The controller can run standalone (``control_step`` driven by a test or a
benchmark) or attached to a :class:`~repro.sim.fluid.FluidFlowSimulator`,
where it registers itself as a periodic callback, observes the live link
utilisation, and pushes capacity/route changes back into the running
simulation -- this attached mode is what the Figure 2 and MapReduce
experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost import LinkPriceTagger, PriceWeights
from repro.core.plp import PLPCommandType, PLPExecutor, PLPResult, ReconfigurationDelays
from repro.core.policy import (
    AdaptiveFecPolicy,
    BypassPolicy,
    CompositePolicy,
    ControlPolicy,
    LatencyMinimizationPolicy,
    Observation,
    PowerCapPolicy,
)
from repro.core.reconfiguration import ReconfigurationPlanner
from repro.fabric.fabric import Fabric
from repro.fabric.topology import merge_directed_values
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.trace import NullTrace, TraceRecorder
from repro.sim.units import microseconds

LinkKey = Tuple[str, str]

#: Command types that change capacity or connectivity and therefore require
#: the attached fluid simulation to be re-synchronised.
_TOPOLOGY_AFFECTING = {
    PLPCommandType.SPLIT_LINK,
    PLPCommandType.BUNDLE_LANES,
    PLPCommandType.CREATE_LINK,
    PLPCommandType.REMOVE_LINK,
    PLPCommandType.SET_LANE_COUNT,
    PLPCommandType.LINK_ON,
    PLPCommandType.LINK_OFF,
    PLPCommandType.SET_FEC,
}


@dataclass
class CRCConfig:
    """Tunable parameters of the closed loop."""

    #: Interval between control iterations (seconds).
    control_period: float = microseconds(100.0)
    #: Price-tag weighting (the A1 ablation knob).
    price_weights: PriceWeights = field(default_factory=PriceWeights)
    #: Utilisation above which the latency policy considers reconfiguring.
    utilisation_threshold: float = 0.7
    #: Reconfiguration delay model.
    delays: ReconfigurationDelays = field(default_factory=ReconfigurationDelays)
    #: Hysteresis factor for the reconfiguration planner.
    hysteresis: float = 1.5
    #: Minimum time between committed topology reconfigurations.
    min_reconfiguration_interval: float = microseconds(500.0)
    #: Rack power cap in watts (None disables the power policy).
    power_cap_watts: Optional[float] = None
    #: Enable the adaptive-FEC policy.
    enable_adaptive_fec: bool = True
    #: Enable the bypass policy.
    enable_bypass: bool = True
    #: Enable grid-to-torus topology reconfiguration; requires grid dims.
    enable_topology_reconfiguration: bool = False
    grid_rows: Optional[int] = None
    grid_columns: Optional[int] = None
    #: Minimum pending bits for a pair to be considered bypass-worthy.
    bypass_min_demand_bits: float = 8e6

    def __post_init__(self) -> None:
        if self.control_period <= 0:
            raise ValueError("control_period must be positive")
        if self.enable_topology_reconfiguration and (
            self.grid_rows is None or self.grid_columns is None
        ):
            raise ValueError(
                "topology reconfiguration requires grid_rows and grid_columns"
            )


@dataclass
class ControlIteration:
    """Record of one pass around the ring, kept for analysis and tests."""

    time: float
    iteration: int
    max_utilisation: float
    commands_issued: int
    commands_failed: int
    reconfigured: bool
    power_watts: float


class ClosedRingControl:
    """The controller that closes the ring around the fabric."""

    def __init__(
        self,
        fabric: Fabric,
        config: Optional[CRCConfig] = None,
        policy: Optional[ControlPolicy] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.fabric = fabric
        self.config = config if config is not None else CRCConfig()
        self.trace = trace if trace is not None else NullTrace()
        self.tagger = LinkPriceTagger(weights=self.config.price_weights)
        self.executor = PLPExecutor(fabric, delays=self.config.delays)
        self.planner = ReconfigurationPlanner(
            delays=self.config.delays,
            hysteresis=self.config.hysteresis,
            min_interval=self.config.min_reconfiguration_interval,
        )
        self.policy = policy if policy is not None else self._default_policy()
        self.iterations: List[ControlIteration] = []
        self.reconfiguration_times: List[float] = []
        self._iteration_counter = 0

    # ------------------------------------------------------------------ #
    # Policy assembly
    # ------------------------------------------------------------------ #
    def _default_policy(self) -> ControlPolicy:
        policies: List[ControlPolicy] = []
        if self.config.power_cap_watts is not None:
            policies.append(PowerCapPolicy(cap_watts=self.config.power_cap_watts))
        if self.config.enable_topology_reconfiguration:
            policies.append(
                LatencyMinimizationPolicy(
                    rows=self.config.grid_rows,  # type: ignore[arg-type]
                    columns=self.config.grid_columns,  # type: ignore[arg-type]
                    utilisation_threshold=self.config.utilisation_threshold,
                    planner=self.planner,
                )
            )
        if self.config.enable_bypass:
            policies.append(
                BypassPolicy(min_demand_bits=self.config.bypass_min_demand_bits)
            )
        if self.config.enable_adaptive_fec:
            policies.append(AdaptiveFecPolicy())
        if not policies:
            policies.append(AdaptiveFecPolicy())
        return CompositePolicy(policies)

    # ------------------------------------------------------------------ #
    # One pass around the ring
    # ------------------------------------------------------------------ #
    def observe(
        self,
        now: float,
        link_utilisation: Optional[Dict[LinkKey, float]] = None,
        pending_demand_bits: float = 0.0,
        hot_pairs: Sequence[Tuple[str, str, float]] = (),
        active_flow_count: int = 0,
    ) -> Observation:
        """Assemble the observation for this iteration and update link stats."""
        canonical = merge_directed_values(link_utilisation or {})
        power_report = self.fabric.power_report()
        for key in self.fabric.topology.link_keys():
            link = self.fabric.topology.link_between(*key)
            self.fabric.stats_for(*key).observe(
                latency=link.one_way_latency,
                utilisation=canonical.get(key, 0.0),
                post_fec_ber=link.post_fec_ber,
                power_watts=link.power_watts,
            )
        prices = self.tagger.price_map(self.fabric, canonical)
        return Observation(
            time=now,
            fabric=self.fabric,
            link_utilisation=canonical,
            link_prices=prices,
            power_report=power_report,
            active_flow_count=active_flow_count,
            pending_demand_bits=pending_demand_bits,
            hot_pairs=list(hot_pairs),
        )

    def control_step(
        self,
        now: float,
        link_utilisation: Optional[Dict[LinkKey, float]] = None,
        pending_demand_bits: float = 0.0,
        hot_pairs: Sequence[Tuple[str, str, float]] = (),
        active_flow_count: int = 0,
    ) -> List[PLPResult]:
        """Run one full iteration of the closed loop and return PLP results."""
        observation = self.observe(
            now,
            link_utilisation=link_utilisation,
            pending_demand_bits=pending_demand_bits,
            hot_pairs=hot_pairs,
            active_flow_count=active_flow_count,
        )
        commands = self.policy.decide(observation)
        results = self.executor.execute_batch(commands, now=now) if commands else []
        reconfigured = any(
            result.success and result.command.type in _TOPOLOGY_AFFECTING
            for result in results
        )
        if reconfigured:
            self.reconfiguration_times.append(now)
            self.fabric.invalidate_routes()
        self._iteration_counter += 1
        record = ControlIteration(
            time=now,
            iteration=self._iteration_counter,
            max_utilisation=observation.max_utilisation(),
            commands_issued=len(commands),
            commands_failed=sum(1 for result in results if result.failed),
            reconfigured=reconfigured,
            power_watts=observation.power_report.total_watts
            if observation.power_report
            else 0.0,
        )
        self.iterations.append(record)
        self.fabric.power_budget.record(now, record.power_watts)
        self.trace.record(
            now,
            "control_tick",
            iteration=record.iteration,
            max_utilisation=record.max_utilisation,
            commands=record.commands_issued,
            reconfigured=reconfigured,
        )
        return results

    # ------------------------------------------------------------------ #
    # Fluid-simulation attachment
    # ------------------------------------------------------------------ #
    def attach(self, simulator: FluidFlowSimulator, period: Optional[float] = None) -> None:
        """Register the CRC as a periodic controller of *simulator*.

        On every tick the controller reads the live utilisation and the
        active flows, runs :meth:`control_step`, and -- when any command
        changed capacity or connectivity -- synchronises the fluid link set
        with the fabric topology and re-routes every active flow onto the
        cheapest path of the updated fabric.
        """
        interval = period if period is not None else self.config.control_period

        def callback(sim: FluidFlowSimulator, now: float) -> None:
            utilisation = merge_directed_values(sim.instantaneous_link_utilisation())
            active = sim.active_flows()
            pending = sum(flow.bits_remaining for flow in active)
            by_pair: Dict[Tuple[str, str], float] = {}
            for flow in active:
                by_pair[(flow.src, flow.dst)] = (
                    by_pair.get((flow.src, flow.dst), 0.0) + flow.bits_remaining
                )
            hot_pairs = [
                (src, dst, bits)
                for (src, dst), bits in sorted(
                    by_pair.items(), key=lambda kv: kv[1], reverse=True
                )
            ]
            results = self.control_step(
                now,
                link_utilisation=utilisation,
                pending_demand_bits=pending,
                hot_pairs=hot_pairs,
                active_flow_count=len(active),
            )
            if any(
                result.success and result.command.type in _TOPOLOGY_AFFECTING
                for result in results
            ):
                self.sync_fluid_links(sim)
                self.reroute_active_flows(sim)

        simulator.add_controller(interval, callback, start_offset=interval)

    def sync_fluid_links(self, simulator: FluidFlowSimulator) -> None:
        """Push the fabric's current per-direction capacities into the fluid sim."""
        for key, capacity in self.fabric.directed_capacities().items():
            if simulator.has_link(key):
                simulator.set_capacity(key, capacity)
            else:
                simulator.add_link(key, capacity)

    def reroute_active_flows(self, simulator: FluidFlowSimulator) -> None:
        """Re-route every active flow over the updated fabric."""
        for flow in simulator.active_flows():
            try:
                keys = self.fabric.route_keys(flow.src, flow.dst, flow_id=flow.flow_id)
            except Exception:
                continue  # pair temporarily disconnected mid-reconfiguration
            if keys and all(simulator.has_link(key) for key in keys):
                simulator.reroute(flow.flow_id, keys)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Headline counters for experiment reports."""
        return {
            "iterations": float(len(self.iterations)),
            "commands_executed": float(self.executor.commands_executed),
            "commands_failed": float(self.executor.commands_failed),
            "reconfigurations": float(len(self.reconfiguration_times)),
            "total_reconfiguration_time": self.executor.total_reconfiguration_time,
            "peak_power_watts": self.fabric.power_budget.peak_watts(),
        }
