"""Physical Layer Primitives: the command set and its executor.

Section 3.1 of the paper enumerates five primitives; they map onto the
command types below as follows:

1. *Link breaking / bundling* -- :attr:`PLPCommandType.SPLIT_LINK` harvests
   lanes from an existing bundle into the executor's free-lane pool;
   :attr:`PLPCommandType.BUNDLE_LANES` adds pooled lanes to an existing
   bundle; :attr:`PLPCommandType.CREATE_LINK` builds a brand-new bundle
   between two elements out of pooled lanes (the lanes are re-pointed
   through the rack's circuit layer); :attr:`PLPCommandType.REMOVE_LINK`
   tears a bundle down entirely and pools its lanes.
2. *High speed bypass* -- :attr:`PLPCommandType.CREATE_BYPASS` /
   :attr:`PLPCommandType.RELEASE_BYPASS`.
3. *Turning a link on or off* -- :attr:`PLPCommandType.SET_LANE_COUNT`,
   :attr:`PLPCommandType.LINK_ON`, :attr:`PLPCommandType.LINK_OFF`.
4. *Adaptive forward error correction* -- :attr:`PLPCommandType.SET_FEC`.
5. *Per-lane statistics* -- :attr:`PLPCommandType.QUERY_STATS`.

The executor applies commands to a :class:`~repro.fabric.fabric.Fabric`,
charging each a reconfiguration delay drawn from
:class:`ReconfigurationDelays`.  Delays matter: they are the "cost" side of
the break-even optimisation the CRC solves before reconfiguring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.fabric.fabric import Fabric
from repro.phy.fec import FecScheme, scheme_by_name
from repro.phy.lane import Lane
from repro.phy.link import Link
from repro.sim.units import microseconds, nanoseconds


class PLPCommandType(enum.Enum):
    """The PLP command vocabulary."""

    SPLIT_LINK = "split-link"
    BUNDLE_LANES = "bundle-lanes"
    CREATE_LINK = "create-link"
    REMOVE_LINK = "remove-link"
    SET_LANE_COUNT = "set-lane-count"
    LINK_ON = "link-on"
    LINK_OFF = "link-off"
    SET_FEC = "set-fec"
    CREATE_BYPASS = "create-bypass"
    RELEASE_BYPASS = "release-bypass"
    QUERY_STATS = "query-stats"


@dataclass(frozen=True)
class PLPCommand:
    """One instruction from the CRC to the physical layer.

    ``endpoints`` identifies the link (or node pair) the command targets;
    ``params`` carries type-specific arguments:

    * SPLIT_LINK: ``lanes`` -- how many lanes to harvest,
    * BUNDLE_LANES: ``lanes`` -- how many pooled lanes to attach,
    * CREATE_LINK: ``lanes`` -- bundle size, optional ``length_meters``,
    * SET_LANE_COUNT: ``count``,
    * SET_FEC: ``scheme`` (name) or ``fec`` (:class:`FecScheme`),
    * CREATE_BYPASS: ``through`` (sequence of bypassed elements),
      ``capacity_bps``.
    """

    type: PLPCommandType
    endpoints: Tuple[str, str]
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.endpoints) != 2 or self.endpoints[0] == self.endpoints[1]:
            raise ValueError(f"endpoints must be two distinct names, got {self.endpoints!r}")

    def describe(self) -> str:
        """Short human-readable description for traces."""
        return f"{self.type.value} {self.endpoints[0]}<->{self.endpoints[1]} {self.params}"


@dataclass(frozen=True)
class ReconfigurationDelays:
    """How long each class of physical-layer change takes.

    The defaults sit at the *electrical* end of the design space (Shoal-like
    sub-microsecond lane retraining, microsecond-scale circuit re-pointing).
    The optical end (ProjecToR-like, tens of microseconds to milliseconds)
    is exercised by the break-even benchmark, which sweeps these values.
    """

    lane_on_off: float = nanoseconds(500)
    lane_rebundle: float = microseconds(1.0)
    link_create: float = microseconds(10.0)
    link_remove: float = microseconds(1.0)
    fec_change: float = microseconds(1.0)
    bypass_setup: float = microseconds(1.0)
    bypass_teardown: float = microseconds(0.5)
    stats_query: float = 0.0

    def for_command(self, command_type: PLPCommandType) -> float:
        """The delay charged for one command of the given type."""
        mapping = {
            PLPCommandType.SPLIT_LINK: self.lane_rebundle,
            PLPCommandType.BUNDLE_LANES: self.lane_rebundle,
            PLPCommandType.CREATE_LINK: self.link_create,
            PLPCommandType.REMOVE_LINK: self.link_remove,
            PLPCommandType.SET_LANE_COUNT: self.lane_on_off,
            PLPCommandType.LINK_ON: self.lane_on_off,
            PLPCommandType.LINK_OFF: self.lane_on_off,
            PLPCommandType.SET_FEC: self.fec_change,
            PLPCommandType.CREATE_BYPASS: self.bypass_setup,
            PLPCommandType.RELEASE_BYPASS: self.bypass_teardown,
            PLPCommandType.QUERY_STATS: self.stats_query,
        }
        return mapping[command_type]

    def scaled(self, factor: float) -> "ReconfigurationDelays":
        """A copy with every delay multiplied by *factor* (for sweeps)."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return ReconfigurationDelays(
            lane_on_off=self.lane_on_off * factor,
            lane_rebundle=self.lane_rebundle * factor,
            link_create=self.link_create * factor,
            link_remove=self.link_remove * factor,
            fec_change=self.fec_change * factor,
            bypass_setup=self.bypass_setup * factor,
            bypass_teardown=self.bypass_teardown * factor,
            stats_query=self.stats_query,
        )


@dataclass
class PLPResult:
    """Outcome of executing one PLP command."""

    command: PLPCommand
    success: bool
    completes_at: float
    detail: str = ""

    @property
    def failed(self) -> bool:
        """Whether the command was rejected."""
        return not self.success


class PLPExecutor:
    """Applies PLP commands to a fabric and accounts for their cost.

    The executor owns the *free lane pool*: lanes harvested by SPLIT_LINK or
    REMOVE_LINK wait there until a CREATE_LINK or BUNDLE_LANES command
    re-deploys them.  The pool is how the lane (and therefore power) budget
    is conserved across reconfigurations -- the Figure 2 scenario moves
    lanes from grid links into torus wrap-around links without ever
    exceeding the initial lane count.

    Parameters
    ----------
    fabric:
        The fabric the commands mutate.
    delays:
        Per-command-type reconfiguration delays
        (:class:`ReconfigurationDelays`); defaults to the electrical end of
        the design space.
    """

    def __init__(
        self,
        fabric: Fabric,
        delays: Optional[ReconfigurationDelays] = None,
    ) -> None:
        self.fabric = fabric
        self.delays = delays if delays is not None else ReconfigurationDelays()
        self.free_lanes: List[Lane] = []
        self.results: List[PLPResult] = []
        self.commands_executed = 0
        self.commands_failed = 0
        self.total_reconfiguration_time = 0.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(self, command: PLPCommand, now: float = 0.0) -> PLPResult:
        """Execute one command at time *now* and return its result."""
        handler = {
            PLPCommandType.SPLIT_LINK: self._split_link,
            PLPCommandType.BUNDLE_LANES: self._bundle_lanes,
            PLPCommandType.CREATE_LINK: self._create_link,
            PLPCommandType.REMOVE_LINK: self._remove_link,
            PLPCommandType.SET_LANE_COUNT: self._set_lane_count,
            PLPCommandType.LINK_ON: self._link_on,
            PLPCommandType.LINK_OFF: self._link_off,
            PLPCommandType.SET_FEC: self._set_fec,
            PLPCommandType.CREATE_BYPASS: self._create_bypass,
            PLPCommandType.RELEASE_BYPASS: self._release_bypass,
            PLPCommandType.QUERY_STATS: self._query_stats,
        }[command.type]
        delay = self.delays.for_command(command.type)
        try:
            detail = handler(command, now)
            result = PLPResult(
                command=command, success=True, completes_at=now + delay, detail=detail
            )
            self.commands_executed += 1
            self.total_reconfiguration_time += delay
        except (KeyError, ValueError) as error:
            result = PLPResult(
                command=command, success=False, completes_at=now, detail=str(error)
            )
            self.commands_failed += 1
        self.results.append(result)
        if result.success and command.type is not PLPCommandType.QUERY_STATS:
            self.fabric.invalidate_routes()
        return result

    def execute_batch(self, commands: List[PLPCommand], now: float = 0.0) -> List[PLPResult]:
        """Execute a batch; returns every result (failures do not abort the batch).

        The batch is assumed to be applied in parallel by the physical layer,
        so its completion time is the *maximum* of the individual completion
        times, available via :meth:`batch_completion_time`.
        """
        return [self.execute(command, now) for command in commands]

    @staticmethod
    def batch_completion_time(results: List[PLPResult]) -> float:
        """Completion time of a batch applied in parallel."""
        successful = [result.completes_at for result in results if result.success]
        return max(successful) if successful else 0.0

    @property
    def free_lane_count(self) -> int:
        """Lanes currently waiting in the pool."""
        return len(self.free_lanes)

    # ------------------------------------------------------------------ #
    # Command handlers
    # ------------------------------------------------------------------ #
    def _link(self, command: PLPCommand) -> Link:
        return self.fabric.topology.link_between(*command.endpoints)

    def _split_link(self, command: PLPCommand, now: float) -> str:
        lanes_requested = int(command.params.get("lanes", 1))
        link = self._link(command)
        removed = link.remove_lanes(lanes_requested)
        self.free_lanes.extend(removed)
        return f"harvested {len(removed)} lanes; pool={len(self.free_lanes)}"

    def _bundle_lanes(self, command: PLPCommand, now: float) -> str:
        lanes_requested = int(command.params.get("lanes", 1))
        if lanes_requested > len(self.free_lanes):
            raise ValueError(
                f"pool has {len(self.free_lanes)} lanes, need {lanes_requested}"
            )
        link = self._link(command)
        lanes = [self.free_lanes.pop() for _ in range(lanes_requested)]
        for lane in lanes:
            lane.turn_on(now)
            lane.complete_training(now + lane.training_time)
        link.add_lanes(lanes)
        return f"bundled {lanes_requested} lanes into {link.a}<->{link.b}"

    def _create_link(self, command: PLPCommand, now: float) -> str:
        lanes_requested = int(command.params.get("lanes", 1))
        if lanes_requested <= 0:
            raise ValueError("a new link needs at least one lane")
        if lanes_requested > len(self.free_lanes):
            raise ValueError(
                f"pool has {len(self.free_lanes)} lanes, need {lanes_requested}"
            )
        a, b = command.endpoints
        if self.fabric.topology.has_link(a, b):
            raise ValueError(f"a link between {a!r} and {b!r} already exists")
        lanes = [self.free_lanes.pop() for _ in range(lanes_requested)]
        for lane in lanes:
            lane.turn_on(now)
            lane.complete_training(now + lane.training_time)
        length = command.params.get("length_meters")
        if length is None:
            length = self.fabric.topology.node(a).distance_to(self.fabric.topology.node(b))
        template = lanes[0]
        link = Link(
            a=a,
            b=b,
            lanes=lanes,
            fec=command.params.get("fec", self._default_fec()),
            length_meters=float(length),
            media=template.media,
        )
        for lane in lanes:
            lane.length_meters = float(length)
        self.fabric.topology.add_link(link)
        self.fabric.stats_for(a, b)
        return f"created {a}<->{b} with {lanes_requested} lanes"

    @staticmethod
    def _default_fec() -> FecScheme:
        from repro.phy.fec import FEC_RS528

        return FEC_RS528

    def _remove_link(self, command: PLPCommand, now: float) -> str:
        a, b = command.endpoints
        link = self.fabric.topology.remove_link(a, b)
        for lane in link.lanes:
            lane.turn_off()
        self.free_lanes.extend(link.lanes)
        return f"removed {a}<->{b}; pooled {link.num_lanes} lanes"

    def _set_lane_count(self, command: PLPCommand, now: float) -> str:
        count = int(command.params["count"])
        link = self._link(command)
        link.set_active_lane_count(count, now)
        return f"{link.a}<->{link.b} now {link.num_active_lanes} active lanes"

    def _link_on(self, command: PLPCommand, now: float) -> str:
        link = self._link(command)
        link.enable(now)
        return f"{link.a}<->{link.b} enabled"

    def _link_off(self, command: PLPCommand, now: float) -> str:
        link = self._link(command)
        link.disable()
        return f"{link.a}<->{link.b} disabled"

    def _set_fec(self, command: PLPCommand, now: float) -> str:
        link = self._link(command)
        if "fec" in command.params:
            scheme = command.params["fec"]
            if not isinstance(scheme, FecScheme):
                raise ValueError("params['fec'] must be a FecScheme")
        else:
            scheme = scheme_by_name(str(command.params["scheme"]))
        link.set_fec(scheme)
        return f"{link.a}<->{link.b} fec={scheme.name}"

    def _create_bypass(self, command: PLPCommand, now: float) -> str:
        src, dst = command.endpoints
        through = tuple(command.params.get("through", ()))
        capacity = float(command.params["capacity_bps"])
        propagation = float(command.params.get("propagation_delay", 0.0))
        circuit = self.fabric.bypasses.establish(
            src=src,
            dst=dst,
            through=through,
            capacity_bps=capacity,
            now=now,
            propagation_delay=propagation,
        )
        if circuit is None:
            raise ValueError(
                f"bypass {src}<->{dst} rejected (budget exhausted or duplicate)"
            )
        return f"bypass {src}<->{dst} via {len(through)} elements"

    def _release_bypass(self, command: PLPCommand, now: float) -> str:
        src, dst = command.endpoints
        if not self.fabric.bypasses.release_pair(src, dst, now):
            raise ValueError(f"no bypass between {src!r} and {dst!r}")
        return f"bypass {src}<->{dst} released"

    def _query_stats(self, command: PLPCommand, now: float) -> str:
        link = self._link(command)
        stats = self.fabric.stats_for(*command.endpoints)
        snapshot = stats.snapshot()
        snapshot["capacity_bps"] = link.capacity_bps
        snapshot["post_fec_ber"] = link.post_fec_ber
        return str(snapshot)
