"""Flow scheduling subject to PLP availability.

The CRC "orchestrates PLPs ... and also schedules flows according to the
availability of PLPs".  The scheduler is the piece that turns a flow
arrival into a concrete forwarding decision:

* pick the cheapest path under the current per-link price tags (falling
  back to hop count when no utilisation information exists yet),
* prefer an established bypass circuit when one serves the flow's pair,
* flag flows that are large enough to justify reconfiguration (the
  break-even test), so the CRC can treat them as triggers.

The scheduler also keeps an estimate of the load it has admitted onto each
link, which gives the price tagger a congestion signal even between
telemetry updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import networkx as nx

from repro.core.cost import LinkPriceTagger
from repro.core.reconfiguration import break_even_flow_size
from repro.fabric.fabric import Fabric
from repro.fabric.routing import k_shortest_paths, path_links
from repro.fabric.topology import merge_directed_values
from repro.sim.flow import Flow

LinkKey = Tuple[str, str]


@dataclass
class SchedulingDecision:
    """What the scheduler decided for one flow."""

    flow: Flow
    path: List[str]
    directed_keys: List[Tuple[str, str]]
    used_bypass: bool = False
    estimated_rate_bps: float = 0.0
    estimated_fct: float = 0.0
    reconfiguration_worthy: bool = False
    price: float = 0.0


class FlowScheduler:
    """Price-aware flow admission and re-pricing.

    Parameters
    ----------
    fabric:
        The fabric whose topology and bypass circuits the scheduler routes
        over.
    tagger:
        Price-tag computer; a default-weighted one is created when omitted.
    candidate_paths:
        How many loop-free shortest paths to price per flow (the ``k`` of
        the k-shortest-path candidate set).
    reconfiguration_delay:
        Delay charged when estimating whether a flow is large enough to
        justify a reconfiguration (the break-even flag on decisions).
    reconfiguration_speedup:
        Rate multiplier a reconfiguration is assumed to buy when computing
        that flag; must be > 1 or no flow would ever qualify.
    """

    def __init__(
        self,
        fabric: Fabric,
        tagger: Optional[LinkPriceTagger] = None,
        candidate_paths: int = 3,
        reconfiguration_delay: float = 1e-5,
        reconfiguration_speedup: float = 2.0,
    ) -> None:
        if candidate_paths <= 0:
            raise ValueError("candidate_paths must be positive")
        if reconfiguration_delay < 0:
            raise ValueError("reconfiguration_delay must be >= 0")
        if reconfiguration_speedup <= 1.0:
            raise ValueError("reconfiguration_speedup must be > 1.0")
        self.fabric = fabric
        self.tagger = tagger if tagger is not None else LinkPriceTagger()
        self.candidate_paths = candidate_paths
        self.reconfiguration_delay = reconfiguration_delay
        self.reconfiguration_speedup = reconfiguration_speedup
        #: Load the scheduler believes it has admitted onto each canonical link.
        self.admitted_load_bps: Dict[LinkKey, float] = {}
        self.decisions: List[SchedulingDecision] = []

    # ------------------------------------------------------------------ #
    # Load accounting
    # ------------------------------------------------------------------ #
    def _canonical(self, a: str, b: str) -> LinkKey:
        return (a, b) if a <= b else (b, a)

    def _estimated_utilisation(self, a: str, b: str) -> float:
        link = self.fabric.topology.link_between(a, b)
        capacity = link.capacity_bps
        if capacity <= 0:
            return 1.0
        return min(1.0, self.admitted_load_bps.get(self._canonical(a, b), 0.0) / capacity)

    def record_admission(self, path: List[str], rate_bps: float) -> None:
        """Account an admitted flow's estimated rate onto its path."""
        for i in range(len(path) - 1):
            key = self._canonical(path[i], path[i + 1])
            self.admitted_load_bps[key] = self.admitted_load_bps.get(key, 0.0) + rate_bps

    def record_completion(self, path: List[str], rate_bps: float) -> None:
        """Remove a completed flow's estimated rate from its path."""
        for i in range(len(path) - 1):
            key = self._canonical(path[i], path[i + 1])
            self.admitted_load_bps[key] = max(
                0.0, self.admitted_load_bps.get(key, 0.0) - rate_bps
            )

    def sync_observed_load(self, directed_load_bps: Mapping[Tuple[str, str], float]) -> None:
        """Replace the admitted-load estimate with measured per-link load.

        *directed_load_bps* is keyed by directed ``(upstream, downstream)``
        pairs (the fluid simulator's
        :meth:`~repro.sim.fluid.FluidFlowSimulator.instantaneous_link_load`
        shape); for each physical link the busier direction wins.  The
        control loop calls this every tick so the scheduler's path prices
        reflect live congestion rather than its own admission bookkeeping.
        """
        self.admitted_load_bps = merge_directed_values(directed_load_bps)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def path_price(self, path: List[str]) -> float:
        """Total price of a path under the current estimated utilisation."""
        total = 0.0
        for i in range(len(path) - 1):
            a, b = path[i], path[i + 1]
            link = self.fabric.topology.link_between(a, b)
            total += self.tagger.price(
                link, utilisation=self._estimated_utilisation(a, b)
            )
        return total

    def cheapest_path(
        self,
        src: str,
        dst: str,
        exclude_directed: FrozenSet[Tuple[str, str]] = frozenset(),
    ) -> Optional[Tuple[List[str], float]]:
        """Cheapest of the candidate paths for a pair, with its price.

        Parameters
        ----------
        src, dst:
            The endpoints to route between.
        exclude_directed:
            Directed link keys that must not appear on the returned path --
            the control loop passes the keys of links still training after a
            reconfiguration, which exist in the topology but cannot carry
            traffic yet.

        Returns ``None`` when no candidate path avoids the excluded links
        (or the pair is disconnected).
        """
        try:
            candidates = k_shortest_paths(
                self.fabric.topology, src, dst, self.candidate_paths
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None  # pair disconnected (e.g. mid-reconfiguration)
        viable = [
            path
            for path in candidates
            if not any(
                (path[i], path[i + 1]) in exclude_directed
                for i in range(len(path) - 1)
            )
        ]
        if not viable:
            return None
        # Price each candidate once; ties keep the earliest (shortest) path.
        best_price, _, best = min(
            (self.path_price(path), index, path) for index, path in enumerate(viable)
        )
        return best, best_price

    def admit(self, flow: Flow) -> SchedulingDecision:
        """Choose a forwarding decision for *flow*.

        The flow is routed on the cheapest of the ``candidate_paths``
        loop-free shortest paths under the current price tags, unless an
        established bypass circuit serves its pair, in which case the
        circuit wins (it skips every intermediate switch).
        """
        circuit = self.fabric.bypasses.circuit_for(flow.src, flow.dst)
        if circuit is not None and circuit.active:
            path = [flow.src, *circuit.through, flow.dst]
            decision = SchedulingDecision(
                flow=flow,
                path=path,
                directed_keys=[(path[i], path[i + 1]) for i in range(len(path) - 1)],
                used_bypass=True,
                estimated_rate_bps=circuit.capacity_bps,
                estimated_fct=circuit.transfer_latency(flow.size_bits),
                price=0.0,
            )
            self.decisions.append(decision)
            return decision

        candidates = k_shortest_paths(
            self.fabric.topology, flow.src, flow.dst, self.candidate_paths
        )
        best_path = min(candidates, key=self.path_price)
        links = path_links(self.fabric.topology, best_path)
        bottleneck = min(link.capacity_bps for link in links)
        estimated_rate = bottleneck
        estimated_fct = (
            flow.size_bits / estimated_rate if estimated_rate > 0 else float("inf")
        )
        threshold = break_even_flow_size(
            max(estimated_rate, 1.0),
            max(estimated_rate, 1.0) * self.reconfiguration_speedup,
            self.reconfiguration_delay,
        )
        decision = SchedulingDecision(
            flow=flow,
            path=best_path,
            directed_keys=[
                (best_path[i], best_path[i + 1]) for i in range(len(best_path) - 1)
            ],
            used_bypass=False,
            estimated_rate_bps=estimated_rate,
            estimated_fct=estimated_fct,
            reconfiguration_worthy=flow.size_bits >= threshold,
            price=self.path_price(best_path),
        )
        self.decisions.append(decision)
        return decision
