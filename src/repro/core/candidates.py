"""Reconfiguration candidates and the per-topology-family candidate registry.

A :class:`PlanCandidate` is a standing offer the control loop re-evaluates
every congested tick: *given the fabric's current state, here is a concrete
PLP batch and the service rates before/after it*.  This module owns the
candidate interface, the built-in moves, and the registry that maps a
topology family name to its **legal** moves:

* ``grid`` -> :class:`GridToTorusCandidate` (the paper's Figure 2 move,
  unchanged and numerically bit-identical to the pre-registry code path),
* ``fat-tree`` -> :class:`FatTreeUplinkRebalanceCandidate` (thin every
  pod's edge->aggregation bundles by one lane and rebundle the harvest
  onto the aggregation->core uplinks),
* ``dragonfly`` -> :class:`DragonflyGlobalRehomeCandidate` (harvest one
  lane per intra-group local link and re-home the pool as a second,
  rotated global link per group pair).

Moves register with the :func:`register_candidate` decorator, keyed by the
family name a built topology carries in :attr:`Topology.kind`; the control
loop resolves candidates through :func:`candidates_for_topology` instead of
hard-coding :class:`GridToTorusCandidate`.  Every candidate *refuses* a
fabric from a different family with a ``ValueError`` naming both families
-- proposing a grid move against a dragonfly would silently emit geometric
nonsense otherwise.

This module sits below :mod:`repro.core.control` (which re-exports the
candidate classes for backward compatibility) and must not import it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.plp import PLPCommand, PLPCommandType, ReconfigurationDelays
from repro.core.reconfiguration import GridToTorusPlan, ReconfigurationPlan
from repro.fabric.fabric import Fabric
from repro.fabric.topology import Topology, TopologyBuilder


@dataclass
class PlanProposal:
    """A candidate's offer to the planner: a plan plus its rate estimates."""

    plan: ReconfigurationPlan
    current_rate_bps: float
    reconfigured_rate_bps: float


class PlanCandidate:
    """Interface of a reconfiguration candidate the loop keeps evaluating.

    Subclasses build a concrete :class:`ReconfigurationPlan` from the
    fabric's *current* state and estimate the service rates before and
    after it; the loop's planner makes the go/no-go call.  A candidate that
    has nothing (left) to offer returns ``None``.
    """

    name: str = "candidate"

    def propose(self, fabric: Fabric, delays: ReconfigurationDelays) -> Optional[PlanProposal]:
        """Return a proposal for the fabric's current state, or ``None``."""
        raise NotImplementedError

    def committed(self, now: float) -> None:
        """Notification that the loop applied this candidate's plan."""


def _require_family(
    topology: Topology, candidate_name: str, applies_to: Sequence[str]
) -> None:
    """Reject fabrics from a family the candidate's geometry does not fit.

    Hand-built topologies (``kind is None``) are let through for backward
    compatibility -- the candidate's own feasibility checks still apply.
    """
    kind = getattr(topology, "kind", None)
    if kind is not None and kind not in applies_to:
        raise ValueError(
            f"candidate {candidate_name!r} applies to topology family "
            f"{' / '.join(applies_to)}, not to {kind!r} fabric {topology.name!r}"
        )


class GridToTorusCandidate(PlanCandidate):
    """The paper's Figure 2 move, offered as a standing candidate.

    Harvest one lane from every grid link and redeploy the freed lanes as
    torus wrap-around links.  The candidate retires itself once applied (or
    once the wrap-around links already exist).

    Parameters
    ----------
    rows, columns:
        Grid dimensions of the fabric the candidate watches.
    harvest_per_link:
        Lanes taken from every grid link.
    lanes_per_wraparound:
        Bundle size of each created wrap-around link.  ``None`` (the
        default) sizes the bundles to spend the whole harvested budget --
        ``harvested // wraparounds`` lanes each -- so the reconfiguration
        conserves aggregate capacity instead of stranding lanes in the
        executor's pool (on a 3x3 rack: 12 harvested lanes over 6
        wrap-around links = 2 lanes each).  Any remainder that does not
        divide evenly stays pooled.
    """

    name = "grid-to-torus"

    def __init__(
        self,
        rows: int,
        columns: int,
        harvest_per_link: int = 1,
        lanes_per_wraparound: Optional[int] = None,
    ) -> None:
        if lanes_per_wraparound is None:
            grid_links = rows * (columns - 1) + columns * (rows - 1)
            harvested = grid_links * harvest_per_link
            wraparounds = len(TopologyBuilder.torus_wraparound_pairs(rows, columns))
            lanes_per_wraparound = max(1, harvested // max(wraparounds, 1))
        self.builder = GridToTorusPlan(
            rows=rows,
            columns=columns,
            harvest_per_link=harvest_per_link,
            lanes_per_wraparound=lanes_per_wraparound,
        )
        self.applied = False

    def propose(self, fabric: Fabric, delays: ReconfigurationDelays) -> Optional[PlanProposal]:
        """Build the grid-to-torus plan if it is still feasible and useful."""
        if self.applied:
            return None
        topology = fabric.topology
        _require_family(topology, self.name, ("grid", "torus"))
        dims = getattr(topology, "dimensions", {})
        if dims and (
            dims.get("rows") != self.builder.rows
            or dims.get("columns") != self.builder.columns
        ):
            raise ValueError(
                f"candidate {self.name!r} was built for a "
                f"{self.builder.rows}x{self.builder.columns} grid but fabric "
                f"{topology.name!r} is {dims.get('rows')}x{dims.get('columns')}"
            )
        try:
            plan = self.builder.build(topology, delays)
        except ValueError:
            return None  # not a (thick enough) grid any more
        if not any(cmd.type.value == "create-link" for cmd in plan.commands):
            self.applied = True  # the wrap-around links already exist
            return None
        current_rate, reconfigured_rate = self._estimate_rates(topology)
        return PlanProposal(
            plan=plan,
            current_rate_bps=current_rate,
            reconfigured_rate_bps=reconfigured_rate,
        )

    def committed(self, now: float) -> None:
        """Retire the candidate once its plan has been applied."""
        self.applied = True

    def _estimate_rates(self, topology) -> Tuple[float, float]:
        """Aggregate service rates before/after, from the hop-count bound.

        The plan conserves the lane budget, so aggregate capacity is
        unchanged and the sustainable-throughput ratio reduces to the ratio
        of average shortest-path hop counts -- the paper's "fewer switch
        traversals" argument in one line.
        """
        total_capacity = sum(link.capacity_bps for link in topology.links())
        current_hops = topology.average_shortest_path_hops()
        target = TopologyBuilder(lanes_per_link=1).torus(
            self.builder.rows, self.builder.columns
        )
        target_hops = target.average_shortest_path_hops()
        return (
            total_capacity / max(current_hops, 1e-9),
            total_capacity / max(target_hops, 1e-9),
        )


class FatTreeUplinkRebalanceCandidate(PlanCandidate):
    """Shift one lane per pod downlink onto the aggregation->core uplinks.

    In a k-pod fat-tree the edge->aggregation and aggregation->core tiers
    have the *same* link count (``pods * (pods/2)^2``), so harvesting
    ``harvest_per_link`` lanes from every edge->aggregation bundle and
    rebundling the same count onto every aggregation->core uplink conserves
    the lane budget exactly while thickening the tier that carries all
    inter-pod traffic -- the move a loaded permutation or uniform workload
    wants.  Applied at most once per attach.
    """

    name = "pod-uplink-rebalance"

    def __init__(self, pods: int, harvest_per_link: int = 1) -> None:
        if pods < 2 or pods % 2 != 0:
            raise ValueError("pods must be an even number >= 2")
        if harvest_per_link <= 0:
            raise ValueError("harvest_per_link must be positive")
        self.pods = pods
        self.harvest_per_link = harvest_per_link
        self.applied = False

    def _tier_pairs(self) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
        """(edge->aggregation, aggregation->core) link endpoint pairs."""
        half = self.pods // 2
        downlinks: List[Tuple[str, str]] = []
        uplinks: List[Tuple[str, str]] = []
        for pod in range(self.pods):
            for agg_position in range(half):
                agg_name = f"agg{pod}_{agg_position}"
                for edge_position in range(half):
                    downlinks.append((agg_name, f"edge{pod}_{edge_position}"))
                for core_position in range(half):
                    uplinks.append(
                        (agg_name, f"core{agg_position * half + core_position}")
                    )
        return downlinks, uplinks

    def propose(self, fabric: Fabric, delays: ReconfigurationDelays) -> Optional[PlanProposal]:
        """Offer the rebalance while every tier link can still afford it."""
        if self.applied:
            return None
        topology = fabric.topology
        _require_family(topology, self.name, ("fat-tree",))
        downlinks, uplinks = self._tier_pairs()
        commands: List[PLPCommand] = []
        harvested_bps = 0.0
        for a, b in downlinks:
            if not topology.has_link(a, b):
                return None  # tree already mutated away from the template
            link = topology.link_between(a, b)
            if link.num_lanes <= self.harvest_per_link:
                return None  # would kill a downlink; nothing to offer
            harvested_bps += self.harvest_per_link * (
                link.capacity_bps / max(link.num_lanes, 1)
            )
            commands.append(
                PLPCommand(
                    type=PLPCommandType.SPLIT_LINK,
                    endpoints=(a, b),
                    params={"lanes": self.harvest_per_link},
                )
            )
        current_rate = 0.0
        for a, b in uplinks:
            if not topology.has_link(a, b):
                return None
            current_rate += topology.link_between(a, b).capacity_bps
            commands.append(
                PLPCommand(
                    type=PLPCommandType.BUNDLE_LANES,
                    endpoints=(a, b),
                    params={"lanes": self.harvest_per_link},
                )
            )
        plan = ReconfigurationPlan(
            name=f"pod-uplink-rebalance-{self.pods}",
            commands=commands,
            rationale=(
                f"move {self.harvest_per_link} lane(s) from each of "
                f"{len(downlinks)} edge->aggregation links onto "
                f"{len(uplinks)} aggregation->core uplinks"
            ),
        )
        plan.expected_duration = plan.duration_with(delays)
        return PlanProposal(
            plan=plan,
            current_rate_bps=current_rate,
            reconfigured_rate_bps=current_rate + harvested_bps,
        )

    def committed(self, now: float) -> None:
        """Retire the candidate once its plan has been applied."""
        self.applied = True


class DragonflyGlobalRehomeCandidate(PlanCandidate):
    """Double the global plane by re-homing local lanes as new global links.

    Harvests ``harvest_per_link`` lanes from every intra-group local link
    (the all-to-all mesh inside each group) and creates **one additional
    global link per group pair** at attachment points rotated away from the
    originals -- groups ``i < j`` gain a link between router ``j % a`` in
    group *i* and router ``(i + 1) % a`` in group *j*, which with ``a >= 2``
    never collides with the builder's original ``(j - 1) % a`` / ``i % a``
    attachment.  Every new link gets ``harvested // pairs`` lanes (the whole
    budget, remainder pooled); the move is infeasible -- the candidate
    returns ``None`` -- when that quotient is zero, i.e. unless
    ``a * (a - 1) >= groups - 1``.
    """

    name = "global-link-rehome"

    def __init__(
        self, groups: int, routers_per_group: int, harvest_per_link: int = 1
    ) -> None:
        if groups < 2:
            raise ValueError("a dragonfly needs at least 2 groups")
        if routers_per_group < 1:
            raise ValueError("routers_per_group must be >= 1")
        if harvest_per_link <= 0:
            raise ValueError("harvest_per_link must be positive")
        self.groups = groups
        self.routers_per_group = routers_per_group
        self.harvest_per_link = harvest_per_link
        self.applied = False

    def rehomed_global_pairs(self) -> List[Tuple[str, str]]:
        """Attachment points of the additional global links, per group pair."""
        router = TopologyBuilder.dragonfly_router_name
        a = self.routers_per_group
        return [
            (router(i, j % a), router(j, (i + 1) % a))
            for i, j in itertools.combinations(range(self.groups), 2)
        ]

    def propose(self, fabric: Fabric, delays: ReconfigurationDelays) -> Optional[PlanProposal]:
        """Offer the re-homing if the local mesh can fund it."""
        if self.applied:
            return None
        topology = fabric.topology
        _require_family(topology, self.name, ("dragonfly",))
        a = self.routers_per_group
        if a < 2:
            return None  # single-router groups: rotation lands on the original
        router = TopologyBuilder.dragonfly_router_name
        local_pairs = [
            (router(group, left), router(group, right))
            for group in range(self.groups)
            for left, right in itertools.combinations(range(a), 2)
        ]
        pair_count = self.groups * (self.groups - 1) // 2
        lanes_per_new = (len(local_pairs) * self.harvest_per_link) // pair_count
        if lanes_per_new == 0:
            return None  # a * (a - 1) < groups - 1: harvest cannot fund the plane
        new_pairs = [
            (left, right)
            for left, right in self.rehomed_global_pairs()
            if not topology.has_link(left, right)
        ]
        if not new_pairs:
            self.applied = True  # the re-homed links already exist
            return None
        commands: List[PLPCommand] = []
        lane_rate_bps = 0.0
        for left, right in local_pairs:
            if not topology.has_link(left, right):
                return None  # group mesh already mutated; nothing safe to offer
            link = topology.link_between(left, right)
            if link.num_lanes <= self.harvest_per_link:
                return None
            lane_rate_bps = link.capacity_bps / max(link.num_lanes, 1)
            commands.append(
                PLPCommand(
                    type=PLPCommandType.SPLIT_LINK,
                    endpoints=(left, right),
                    params={"lanes": self.harvest_per_link},
                )
            )
        for left, right in new_pairs:
            commands.append(
                PLPCommand(
                    type=PLPCommandType.CREATE_LINK,
                    endpoints=(left, right),
                    params={"lanes": lanes_per_new},
                )
            )
        current_rate = sum(
            topology.link_between(left, right).capacity_bps
            for left, right in TopologyBuilder.dragonfly_global_pairs(self.groups, a)
            if topology.has_link(left, right)
        )
        plan = ReconfigurationPlan(
            name=f"global-link-rehome-{self.groups}x{a}",
            commands=commands,
            rationale=(
                f"harvest {self.harvest_per_link} lane(s) from {len(local_pairs)} "
                f"local links, create {len(new_pairs)} rotated global links of "
                f"{lanes_per_new} lane(s)"
            ),
        )
        plan.expected_duration = plan.duration_with(delays)
        return PlanProposal(
            plan=plan,
            current_rate_bps=current_rate,
            reconfigured_rate_bps=current_rate
            + len(new_pairs) * lanes_per_new * lane_rate_bps,
        )

    def committed(self, now: float) -> None:
        """Retire the candidate once its plan has been applied."""
        self.applied = True


# --------------------------------------------------------------------------- #
# The candidate registry: topology family name -> legal moves
# --------------------------------------------------------------------------- #
#: A factory builds a fresh candidate from the family's validated dimensions.
CandidateFactory = Callable[[Mapping[str, int]], PlanCandidate]

_CANDIDATES: Dict[str, List[Tuple[str, CandidateFactory]]] = {}


def register_candidate(
    topology: str, move: str
) -> Callable[[CandidateFactory], CandidateFactory]:
    """Register a candidate *factory* as a legal move of topology family.

    The factory receives the family's validated dimension mapping (e.g.
    ``{"rows": 3, "columns": 3}``) and returns a fresh
    :class:`PlanCandidate`.  Third-party families register their moves the
    same way the built-ins below do::

        @register_candidate("ring", "ring-shortcut")
        def _ring_shortcut(dims):
            return RingShortcutCandidate(dims["nodes"])
    """
    if not topology or not move:
        raise ValueError("topology and move names must be non-empty")

    def decorator(factory: CandidateFactory) -> CandidateFactory:
        moves = _CANDIDATES.setdefault(topology, [])
        if any(existing == move for existing, _ in moves):
            raise ValueError(
                f"move {move!r} is already registered for topology {topology!r}"
            )
        moves.append((move, factory))
        return factory

    return decorator


def candidate_moves(topology: str) -> List[str]:
    """Names of the moves registered for *topology*, in registration order.

    Raises the topology registry's error for unknown family names, so a
    typo surfaces as "unknown topology" rather than "no moves".
    """
    from repro.fabric.topologies import get_topology

    get_topology(topology)
    return [move for move, _ in _CANDIDATES.get(topology, [])]


def candidates_for_topology(
    topology: str, params: Mapping[str, object]
) -> List[PlanCandidate]:
    """Fresh candidate instances for every registered move of *topology*.

    *params* is the flat scenario parameter mapping; the topology family
    extracts and validates its own dimensions from it, so factories see
    exactly the ints the builder saw.  Families with no registered moves
    (e.g. ``torus``, already the paper's target shape) yield an empty list.
    """
    from repro.fabric.topologies import get_topology

    family = get_topology(topology)
    dims = family.dimensions(params)
    return [factory(dims) for _, factory in _CANDIDATES.get(topology, [])]


@register_candidate("grid", "grid-to-torus")
def _grid_to_torus_factory(dims: Mapping[str, int]) -> PlanCandidate:
    return GridToTorusCandidate(int(dims["rows"]), int(dims["columns"]))


@register_candidate("fat-tree", "pod-uplink-rebalance")
def _pod_uplink_rebalance_factory(dims: Mapping[str, int]) -> PlanCandidate:
    return FatTreeUplinkRebalanceCandidate(int(dims["pods"]))


@register_candidate("dragonfly", "global-link-rehome")
def _global_link_rehome_factory(dims: Mapping[str, int]) -> PlanCandidate:
    return DragonflyGlobalRehomeCandidate(
        int(dims["groups"]), int(dims["routers_per_group"])
    )
