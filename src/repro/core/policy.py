"""Control policies: how the CRC turns observations into PLP commands.

Each policy looks at one concern; the :class:`CompositePolicy` stacks them.
The paper names latency reduction as the running example ("the CRC issues
PLP instructions to improve the target metric, e.g. latency, by reducing the
amount of switching logic that a packet has to go through") and power as the
binding constraint; adaptive FEC and bypass allocation are the other two
primitives a policy can spend.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plp import PLPCommand, PLPCommandType
from repro.core.reconfiguration import GridToTorusPlan, ReconfigurationPlanner
from repro.fabric.fabric import Fabric
from repro.fabric.topology import TopologyBuilder
from repro.phy.fec import AdaptiveFecController
from repro.phy.power import PowerReport
from repro.phy.stats import EwmaEstimator
from repro.sim.units import milliseconds

LinkKey = Tuple[str, str]


@dataclass
class Observation:
    """Everything a policy is allowed to look at on one control iteration."""

    time: float
    fabric: Fabric
    #: Smoothed or instantaneous utilisation per canonical link key.
    link_utilisation: Dict[LinkKey, float] = field(default_factory=dict)
    #: Price tags per canonical link key (computed by the CRC).
    link_prices: Dict[LinkKey, float] = field(default_factory=dict)
    #: Instantaneous fabric power breakdown.
    power_report: Optional[PowerReport] = None
    #: Number of flows currently in the fabric.
    active_flow_count: int = 0
    #: Bits of demand still to be served (remaining bits of active flows).
    pending_demand_bits: float = 0.0
    #: Heaviest communicating pairs: ``(src, dst, pending_bits)``.
    hot_pairs: List[Tuple[str, str, float]] = field(default_factory=list)

    def max_utilisation(self) -> float:
        """Largest observed link utilisation (zero when nothing observed)."""
        if not self.link_utilisation:
            return 0.0
        return max(self.link_utilisation.values())

    def hottest_links(self, count: int = 5) -> List[Tuple[LinkKey, float]]:
        """The *count* most utilised links, hottest first."""
        ranked = sorted(self.link_utilisation.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]

    def coldest_links(self, count: int = 5) -> List[Tuple[LinkKey, float]]:
        """The *count* least utilised links, coldest first."""
        ranked = sorted(self.link_utilisation.items(), key=lambda kv: kv[1])
        return ranked[:count]


class ControlPolicy(abc.ABC):
    """A pure decision function from observation to PLP commands."""

    name: str = "policy"

    @abc.abstractmethod
    def decide(self, observation: Observation) -> List[PLPCommand]:
        """Return the PLP commands to issue for this observation."""


class CompositePolicy(ControlPolicy):
    """Run several policies and concatenate their commands, in order.

    Order matters: a power-cap policy placed last can veto nothing, placed
    first it shapes the fabric before the latency policy spends lanes.
    Duplicate commands targeting the same link are de-duplicated keeping the
    first occurrence.
    """

    name = "composite"

    def __init__(self, policies: Sequence[ControlPolicy]) -> None:
        if not policies:
            raise ValueError("CompositePolicy needs at least one policy")
        self.policies = list(policies)

    def decide(self, observation: Observation) -> List[PLPCommand]:  # noqa: D102
        commands: List[PLPCommand] = []
        seen: set = set()
        for policy in self.policies:
            for command in policy.decide(observation):
                key = (command.type, command.endpoints)
                if key in seen:
                    continue
                seen.add(key)
                commands.append(command)
        return commands


class LatencyMinimizationPolicy(ControlPolicy):
    """Reconfigure the topology to cut hop counts when congestion appears.

    Concretely: when the hottest link exceeds ``utilisation_threshold`` and
    the grid-to-torus plan is feasible and clears the planner's break-even
    test, emit the plan's command batch.  This is the policy that drives the
    paper's Figure 2 scenario.
    """

    name = "latency-minimization"

    def __init__(
        self,
        rows: int,
        columns: int,
        utilisation_threshold: float = 0.7,
        planner: Optional[ReconfigurationPlanner] = None,
        harvest_per_link: int = 1,
        lanes_per_wraparound: int = 1,
        demand_alpha: float = 0.25,
    ) -> None:
        """Create the policy.

        Parameters
        ----------
        rows, columns:
            Grid dimensions the plan reconfigures from.
        utilisation_threshold:
            Hottest-link utilisation at which the plan is considered.
        planner:
            Shared go/no-go planner (the CRC passes its own so hysteresis
            state is global); a private one is created when omitted.
        harvest_per_link, lanes_per_wraparound:
            Lane budget of the grid-to-torus plan.
        demand_alpha:
            EWMA coefficient for smoothing the observed pending demand; the
            smoothed estimate is threaded into the planner so a one-tick
            demand spike cannot trigger a reconfiguration.
        """
        if not 0 < utilisation_threshold <= 1:
            raise ValueError("utilisation_threshold must be in (0, 1]")
        self.utilisation_threshold = utilisation_threshold
        self.planner = planner if planner is not None else ReconfigurationPlanner()
        self.plan_builder = GridToTorusPlan(
            rows=rows,
            columns=columns,
            harvest_per_link=harvest_per_link,
            lanes_per_wraparound=lanes_per_wraparound,
        )
        # Seeded at zero so a spike on the very first iteration is damped
        # like any other one-tick transient.
        self.demand_ewma = EwmaEstimator(alpha=demand_alpha, initial=0.0)
        self.applied = False
        self.attempts = 0

    def decide(self, observation: Observation) -> List[PLPCommand]:  # noqa: D102
        if self.applied:
            return []
        # Keep the demand average warm on every iteration, including the
        # quiet ones -- that is what makes a sudden spike stand out from it.
        self.demand_ewma.update(observation.pending_demand_bits)
        if observation.max_utilisation() < self.utilisation_threshold:
            return []
        self.attempts += 1
        topology = observation.fabric.topology
        try:
            plan = self.plan_builder.build(topology, self.planner.delays)
        except ValueError:
            # Not a (thick enough) grid any more; nothing to do.
            return []
        if not any(cmd.type is PLPCommandType.CREATE_LINK for cmd in plan.commands):
            # Wrap-around links already exist; the fabric is already a torus.
            self.applied = True
            return []

        current_rate, reconfigured_rate = self._estimate_rates(observation)
        demand = observation.pending_demand_bits
        smoothed: Optional[float] = self.demand_ewma.value
        if demand <= 0:
            # Without demand information assume the congestion persists for at
            # least one control interval worth of traffic on the hottest link.
            # The EWMA has only seen zeros in this case, so applying it would
            # veto the fallback it is meant to smooth -- skip it.
            hottest = observation.hottest_links(1)
            if hottest:
                key, _ = hottest[0]
                demand = topology.link_between(*key).capacity_bps * milliseconds(1)
            smoothed = None
        if not self.planner.should_apply(
            plan,
            demand,
            current_rate,
            reconfigured_rate,
            now=observation.time,
            smoothed_demand_bits=smoothed,
        ):
            return []
        self.planner.commit(observation.time)
        self.applied = True
        return plan.commands

    def _estimate_rates(self, observation: Observation) -> Tuple[float, float]:
        """Estimate aggregate service rates before/after the reconfiguration.

        The estimate uses the classic uniform-traffic capacity bound: the
        aggregate throughput a topology sustains is proportional to the total
        link capacity divided by the average path length in hops.  The lane
        budget is conserved by the plan, so the capacity term is unchanged
        and the ratio reduces to the ratio of average hop counts -- exactly
        the "fewer switch traversals" argument of the paper.
        """
        topology = observation.fabric.topology
        total_capacity = sum(link.capacity_bps for link in topology.links())
        current_hops = topology.average_shortest_path_hops()
        target = TopologyBuilder(
            lanes_per_link=1
        ).torus(self.plan_builder.rows, self.plan_builder.columns)
        target_hops = target.average_shortest_path_hops()
        current_rate = total_capacity / max(current_hops, 1e-9)
        reconfigured_rate = total_capacity / max(target_hops, 1e-9)
        return current_rate, reconfigured_rate


class BypassPolicy(ControlPolicy):
    """Spend bypass circuits on the heaviest communicating pairs.

    For every hot pair whose pending demand exceeds ``min_demand_bits`` and
    whose routed path crosses at least one intermediate element, establish a
    physical-layer bypass (if the crosspoint budget allows), and release
    circuits whose pair has gone cold.
    """

    name = "bypass"

    def __init__(self, min_demand_bits: float = 8e6, max_new_per_step: int = 2) -> None:
        if min_demand_bits < 0:
            raise ValueError("min_demand_bits must be >= 0")
        if max_new_per_step <= 0:
            raise ValueError("max_new_per_step must be positive")
        self.min_demand_bits = min_demand_bits
        self.max_new_per_step = max_new_per_step

    def decide(self, observation: Observation) -> List[PLPCommand]:  # noqa: D102
        fabric = observation.fabric
        commands: List[PLPCommand] = []
        hot = {
            (src, dst): bits
            for src, dst, bits in observation.hot_pairs
            if bits >= self.min_demand_bits
        }

        # Release circuits whose pair is no longer hot.
        for circuit in fabric.bypasses.active_circuits():
            pair = (circuit.src, circuit.dst)
            reverse = (circuit.dst, circuit.src)
            if pair not in hot and reverse not in hot:
                commands.append(
                    PLPCommand(
                        type=PLPCommandType.RELEASE_BYPASS,
                        endpoints=(circuit.src, circuit.dst),
                    )
                )

        created = 0
        for (src, dst), _bits in sorted(hot.items(), key=lambda kv: kv[1], reverse=True):
            if created >= self.max_new_per_step:
                break
            if not fabric.bypasses.has_capacity():
                break
            if fabric.bypasses.circuit_for(src, dst) is not None:
                continue
            try:
                path = fabric.router.path(src, dst)
            except Exception:  # disconnected pair; nothing to bypass
                continue
            if len(path) < 3:
                continue  # already adjacent, a bypass buys nothing
            links = [
                fabric.topology.link_between(path[i], path[i + 1])
                for i in range(len(path) - 1)
            ]
            capacity = min(link.capacity_bps for link in links)
            if capacity <= 0:
                continue
            propagation = sum(link.propagation_delay for link in links)
            commands.append(
                PLPCommand(
                    type=PLPCommandType.CREATE_BYPASS,
                    endpoints=(src, dst),
                    params={
                        "through": tuple(path[1:-1]),
                        "capacity_bps": capacity,
                        "propagation_delay": propagation,
                    },
                )
            )
            created += 1
        return commands


class PowerCapPolicy(ControlPolicy):
    """Keep the fabric under the rack power envelope.

    Over budget: turn lanes off on the coldest links (never below one active
    lane, never disconnecting the fabric).  Under budget with headroom:
    restore lanes on links whose utilisation indicates they need the
    capacity back.
    """

    name = "power-cap"

    def __init__(
        self,
        cap_watts: float,
        restore_threshold: float = 0.6,
        headroom_margin_watts: float = 5.0,
    ) -> None:
        if cap_watts <= 0:
            raise ValueError("cap_watts must be positive")
        if not 0 <= restore_threshold <= 1:
            raise ValueError("restore_threshold must be in [0, 1]")
        if headroom_margin_watts < 0:
            raise ValueError("headroom_margin_watts must be >= 0")
        self.cap_watts = cap_watts
        self.restore_threshold = restore_threshold
        self.headroom_margin_watts = headroom_margin_watts

    def decide(self, observation: Observation) -> List[PLPCommand]:  # noqa: D102
        report = observation.power_report
        if report is None:
            report = observation.fabric.power_report()
        fabric = observation.fabric
        commands: List[PLPCommand] = []

        if report.total_watts > self.cap_watts:
            overshoot = report.total_watts - self.cap_watts
            savings = 0.0
            for key, _utilisation in observation.coldest_links(len(observation.link_utilisation) or 1):
                if savings >= overshoot:
                    break
                link = fabric.topology.link_between(*key)
                if link.num_active_lanes <= 1:
                    continue
                lane = link.active_lanes[-1]
                per_lane = lane.power_watts + link.fec.power_watts
                commands.append(
                    PLPCommand(
                        type=PLPCommandType.SET_LANE_COUNT,
                        endpoints=key,
                        params={"count": link.num_active_lanes - 1},
                    )
                )
                savings += per_lane
            return commands

        headroom = self.cap_watts - report.total_watts
        if headroom <= self.headroom_margin_watts:
            return []
        budget = headroom - self.headroom_margin_watts
        for key, utilisation in observation.hottest_links(len(observation.link_utilisation) or 1):
            if budget <= 0:
                break
            if utilisation < self.restore_threshold:
                break
            link = fabric.topology.link_between(*key)
            if link.num_active_lanes >= link.num_lanes:
                continue
            inactive = [lane for lane in link.lanes if not lane.usable]
            if not inactive:
                continue
            per_lane = inactive[0].active_power_watts + link.fec.power_watts
            if per_lane > budget:
                continue
            commands.append(
                PLPCommand(
                    type=PLPCommandType.SET_LANE_COUNT,
                    endpoints=key,
                    params={"count": link.num_active_lanes + 1},
                )
            )
            budget -= per_lane
        return commands


class AdaptiveFecPolicy(ControlPolicy):
    """Match each link's FEC scheme to its measured raw BER."""

    name = "adaptive-fec"

    def __init__(self, controller: Optional[AdaptiveFecController] = None) -> None:
        self.controller = controller if controller is not None else AdaptiveFecController()

    def decide(self, observation: Observation) -> List[PLPCommand]:  # noqa: D102
        commands: List[PLPCommand] = []
        for key in observation.fabric.topology.link_keys():
            link = observation.fabric.topology.link_between(*key)
            if not link.up:
                continue
            chosen = self.controller.select(link.worst_raw_ber, current=link.fec)
            if chosen.name != link.fec.name:
                commands.append(
                    PLPCommand(
                        type=PLPCommandType.SET_FEC,
                        endpoints=key,
                        params={"fec": chosen},
                    )
                )
        return commands
