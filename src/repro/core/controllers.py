"""The Controller protocol and its registry.

The paper's core claim is comparative: one fabric, several interchangeable
control strategies.  Historically each strategy had its own hand-wired
runner (``run_fluid_experiment``, ``run_control_loop_experiment``, the
baselines package, ...).  This module makes the strategy itself the
pluggable unit instead: a :class:`Controller` walks through a fixed
four-step lifecycle driven by :func:`repro.experiments.api.run_experiment`,

1. :meth:`Controller.prepare` -- see the fabric *before* any flow is
   routed (swap the router, construct the inner control object, ...),
2. :meth:`Controller.attach` -- hook into the freshly built fluid
   simulation (register periodic callbacks, bind an event engine, ...),
3. :meth:`Controller.run` -- drive the simulation to completion (the
   default just runs the fluid model; co-simulating controllers override),
4. :meth:`Controller.summary` -- report typed headline counters.

Implementations register by name with the :func:`register_controller`
decorator (mirroring the scenario registry), so third-party controllers
plug in without touching this package:

    @register_controller("my-controller")
    class MyController(Controller):
        name = "my-controller"
        ...

    run_experiment(ExperimentSpec(..., controller="my-controller"))

The built-in catalog covers the paper's comparison space: ``none`` and
``static`` (no control), ``ecmp`` (per-flow equal-cost multi-path
hashing), ``crc`` (the Closed Ring Control policy stack) and ``loop``
(the closed-loop adaptive control runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.control import ControlLoop, ControlLoopConfig, PlanCandidate
from repro.core.crc import ClosedRingControl, CRCConfig
from repro.fabric.fabric import Fabric
from repro.fabric.routing import Router, RoutingPolicy
from repro.sim.fluid import FluidFlowSimulator, FluidResult
from repro.telemetry.collector import TelemetryCollector


class ControllerError(ValueError):
    """Raised for unknown controller names, duplicates or bad configs."""


@dataclass(frozen=True)
class ControllerSummary:
    """Typed headline counters of one controller run.

    ``data`` carries the controller's raw counter dictionary (the same
    numbers the legacy ``crc_summary`` dict held); the named properties
    expose the counters every controller shares, defaulting to zero for
    controllers that do not track them.
    """

    name: str
    data: Mapping[str, float] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Control iterations (ticks) the controller executed."""
        return int(self.data.get("iterations", 0))

    @property
    def reconfigurations(self) -> int:
        """Topology reconfigurations the controller committed."""
        return int(self.data.get("reconfigurations", 0))

    @property
    def flows_rerouted(self) -> int:
        """Active flows the controller moved to a different path."""
        return int(self.data.get("flows_rerouted", 0))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (one schema with sweep rows)."""
        return {"name": self.name, "data": dict(self.data)}


class Controller:
    """Interface every control strategy implements (see module docstring).

    The base class is a complete "no control" implementation: it remembers
    the fabric and simulator it is given and lets the fluid model run
    undisturbed.  Subclasses override the lifecycle steps they care about.
    """

    name: str = "controller"

    def __init__(self) -> None:
        self._fabric: Optional[Fabric] = None
        self._simulator: Optional[FluidFlowSimulator] = None

    @property
    def fabric(self) -> Optional[Fabric]:
        """The fabric under control (after :meth:`prepare`)."""
        return self._fabric

    @property
    def simulator(self) -> Optional[FluidFlowSimulator]:
        """The attached fluid simulator (after :meth:`attach`)."""
        return self._simulator

    @property
    def telemetry(self) -> Optional[TelemetryCollector]:
        """Per-tick telemetry series, for controllers that record them."""
        return None

    def prepare(self, fabric: Fabric) -> None:
        """Inspect or mutate *fabric* before any flow is routed on it."""
        self._fabric = fabric

    def attach(self, simulator: FluidFlowSimulator) -> None:
        """Hook into the fluid simulation the flows were just loaded into."""
        self._simulator = simulator

    def run(self, until: Optional[float] = None) -> FluidResult:
        """Drive the simulation until the workload drains (or *until*)."""
        if self._simulator is None:
            raise RuntimeError("attach() the controller to a simulator first")
        return self._simulator.run(until=until)

    def summary(self) -> ControllerSummary:
        """Headline counters for experiment reports."""
        return ControllerSummary(name=self.name)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
#: ``factory(**config) -> Controller``; classes themselves qualify.
ControllerFactory = Callable[..., Controller]

_REGISTRY: Dict[str, ControllerFactory] = {}


def register_controller(name: str) -> Callable[[ControllerFactory], ControllerFactory]:
    """Decorator registering a :class:`Controller` factory under *name*.

    The factory's keyword arguments define the controller's configuration
    surface; :func:`create_controller` passes the ``controller_config``
    mapping of an :class:`~repro.experiments.api.ExperimentSpec` straight
    through, so a registered controller is immediately reachable from
    ``run_experiment``, ``run_scenario``, the sweep engine and the CLI.
    """

    def decorate(factory: ControllerFactory) -> ControllerFactory:
        if name in _REGISTRY:
            raise ControllerError(f"controller {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorate


def controller_names() -> List[str]:
    """Registered controller names, in registration order."""
    return list(_REGISTRY)


def controller_catalog() -> List[Dict[str, str]]:
    """``{"name", "description"}`` rows for the CLI catalog listing."""
    rows = []
    for name, factory in _REGISTRY.items():
        doc = (factory.__doc__ or "").strip()
        rows.append(
            {"name": name, "description": doc.splitlines()[0] if doc else ""}
        )
    return rows


def create_controller(
    name: str, config: Optional[Mapping[str, object]] = None
) -> Controller:
    """Instantiate the controller registered as *name* with *config* kwargs."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ControllerError(
            f"unknown controller {name!r} (known: {known})"
        ) from None
    try:
        return factory(**dict(config or {}))
    except TypeError as error:
        raise ControllerError(
            f"bad configuration for controller {name!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Built-in controllers
# --------------------------------------------------------------------------- #
@register_controller("none")
class NoneController(Controller):
    """No control at all: initial routing and topology stay untouched."""

    name = "none"


@register_controller("static")
class StaticController(NoneController):
    """Static baseline: same hardware, no control loop (alias of ``none``
    kept as a distinct name so comparison tables label it honestly)."""

    name = "static"


@register_controller("ecmp")
class EcmpController(Controller):
    """Per-flow ECMP hashing over equal-cost paths, no reconfiguration."""

    name = "ecmp"

    def __init__(self, k: int = 4) -> None:
        super().__init__()
        self.k = int(k)

    def prepare(self, fabric: Fabric) -> None:
        """Swap the fabric's router for an ECMP one before flows route."""
        super().prepare(fabric)
        fabric.router = Router(fabric.topology, policy=RoutingPolicy.ECMP, k=self.k)


@register_controller("crc")
class CrcController(Controller):
    """The Closed Ring Control policy stack attached as a periodic callback."""

    name = "crc"

    def __init__(
        self,
        config: Optional[CRCConfig] = None,
        instance: Optional[ClosedRingControl] = None,
        control_period: Optional[float] = None,
        **kwargs: object,
    ) -> None:
        """Configure via a :class:`CRCConfig` (``config=``), loose
        :class:`CRCConfig` keyword arguments, or a pre-built
        :class:`ClosedRingControl` (``instance=``, the legacy-shim path).
        """
        super().__init__()
        if instance is not None and (config is not None or kwargs):
            raise ControllerError(
                "controller 'crc': pass either instance= or a configuration, not both"
            )
        if config is not None and kwargs:
            raise ControllerError(
                "controller 'crc': pass either config= or CRCConfig kwargs, not both"
            )
        if kwargs:
            try:
                config = CRCConfig(**kwargs)  # type: ignore[arg-type]
            except TypeError as error:
                raise ControllerError(f"controller 'crc': {error}") from None
        self._config = config
        self._instance = instance
        self.control_period = control_period
        self.crc: Optional[ClosedRingControl] = None

    def prepare(self, fabric: Fabric) -> None:
        """Construct (or adopt) the CRC before the flows are routed."""
        super().prepare(fabric)
        if self._instance is not None:
            if self._instance.fabric is not fabric:
                raise ControllerError(
                    "controller 'crc': instance= was built for a different fabric"
                )
            self.crc = self._instance
        else:
            self.crc = ClosedRingControl(fabric, self._config)

    def attach(self, simulator: FluidFlowSimulator) -> None:
        """Register the CRC as a periodic controller of the fluid model."""
        super().attach(simulator)
        assert self.crc is not None
        self.crc.attach(simulator, period=self.control_period)

    def summary(self) -> ControllerSummary:
        if self.crc is None:
            return ControllerSummary(name=self.name)
        return ControllerSummary(name=self.name, data=self.crc.summary())


@register_controller("loop")
class LoopController(Controller):
    """The closed-loop adaptive runtime co-simulated on the event engine."""

    name = "loop"

    def __init__(
        self,
        config: Optional[ControlLoopConfig] = None,
        candidates: Optional[Sequence[PlanCandidate]] = None,
        grid_rows: Optional[int] = None,
        grid_columns: Optional[int] = None,
        topology: Optional[str] = None,
        topology_params: Optional[Mapping[str, object]] = None,
        telemetry: Optional[TelemetryCollector] = None,
        **kwargs: object,
    ) -> None:
        """Configure via a :class:`ControlLoopConfig` (``config=``) or loose
        :class:`ControlLoopConfig` keyword arguments.  With no explicit
        *candidates*, ``topology``/``topology_params`` resolve the standing
        candidates through the per-family registry in
        :mod:`repro.core.candidates`; ``grid_rows``/``grid_columns`` remain
        as the legacy spelling of ``topology="grid"``.
        """
        super().__init__()
        if config is not None and kwargs:
            raise ControllerError(
                "controller 'loop': pass either config= or ControlLoopConfig "
                "kwargs, not both"
            )
        if kwargs:
            try:
                config = ControlLoopConfig(**kwargs)  # type: ignore[arg-type]
            except TypeError as error:
                raise ControllerError(f"controller 'loop': {error}") from None
        self._config = config if config is not None else ControlLoopConfig()
        self._candidates = candidates
        self._grid_rows = grid_rows
        self._grid_columns = grid_columns
        self._topology = topology
        self._topology_params = dict(topology_params) if topology_params else {}
        self._telemetry = telemetry
        self.loop: Optional[ControlLoop] = None

    @property
    def telemetry(self) -> Optional[TelemetryCollector]:
        """The loop's per-tick telemetry collector."""
        return self.loop.telemetry if self.loop is not None else self._telemetry

    def attach(self, simulator: object) -> None:
        """Build the loop against the loaded simulation and bind it.

        *simulator* is either a fluid simulator or a
        :class:`~repro.fabric.packetsim.PacketBackend`; the loop binds to
        both through the same backend surface
        (:data:`~repro.core.control.SimulationBackend`).  Construction is
        deferred to attach time so the lifecycle matches the original
        ``run_control_loop_experiment`` ordering exactly (flows route
        first, then the loop binds) -- the parity tests pin this.
        """
        super().attach(simulator)
        assert self._fabric is not None, "prepare() must run before attach()"
        from repro.core.candidates import candidates_for_topology

        candidates = self._candidates
        if candidates is None:
            topology = self._topology
            params = dict(self._topology_params)
            if topology is None and (
                self._grid_rows is not None and self._grid_columns is not None
            ):
                # Legacy spelling: grid dimensions imply the grid family.
                topology = "grid"
                params = {"rows": self._grid_rows, "columns": self._grid_columns}
            if topology is not None:
                try:
                    candidates = candidates_for_topology(topology, params)
                except ValueError as error:
                    raise ControllerError(f"controller 'loop': {error}") from None
            else:
                candidates = []
        self.loop = ControlLoop(
            self._fabric,
            candidates=candidates,
            config=self._config,
            telemetry=self._telemetry,
        )
        self.loop.bind(simulator)

    def run(self, until: Optional[float] = None) -> FluidResult:
        """Co-simulate the engine and the simulation backend in lock-step."""
        if self.loop is None:
            raise RuntimeError("attach() the controller to a simulator first")
        return self.loop.run(until=until)

    def summary(self) -> ControllerSummary:
        if self.loop is None:
            return ControllerSummary(name=self.name)
        return ControllerSummary(name=self.name, data=self.loop.summary())
