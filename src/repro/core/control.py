"""The closed-loop adaptive control runtime (the CRC loop).

This module closes the ring *inside a running simulation*.  The pieces have
existed for a while -- price tags (:mod:`repro.core.cost`), the flow
scheduler (:mod:`repro.core.scheduler`), the reconfiguration planner
(:mod:`repro.core.reconfiguration`) and the PLP executor
(:mod:`repro.core.plp`) -- but the Figure 2 experiments drove them from a
pre-scripted plan.  :class:`ControlLoop` instead runs as a periodic process
on the discrete-event engine (:mod:`repro.sim.engine`), co-simulated in
lock-step with a *simulation backend*, and reacts to whatever the traffic
actually does.

The loop is backend-agnostic: it binds to anything exposing the fluid
observation/actuation surface -- the fluid flow simulator
(:mod:`repro.sim.fluid`) or the packet backend
(:class:`repro.fabric.packetsim.PacketBackend`), whose per-port FIFO
occupancy supplies the same instantaneous rate and demand signals.  On
packets the loop's conclusions survive buffer and drop dynamics, which is
where rack-scale latency predictability is actually decided; the
fluid-vs-packet agreement is pinned per scenario by
``tests/test_backend_fidelity.py``.

Every tick the loop walks one lap of the ring:

1. **observe** -- pull instantaneous link utilisation and per-flow state
   from the simulation backend, fold them into the fabric's EWMA-smoothed
   :class:`~repro.phy.stats.LinkStatistics`, and record the headline
   series into a :class:`~repro.telemetry.collector.TelemetryCollector`;
2. **price** -- refresh the :class:`~repro.core.cost.LinkPriceTagger` tags
   from the smoothed utilisation and install them as the fabric's routing
   weight;
3. **schedule** -- re-price every active flow through the
   :class:`~repro.core.scheduler.FlowScheduler` and reroute the ones whose
   current path has become expensive enough to justify moving;
4. **plan** -- offer each registered :class:`PlanCandidate` (resolved for
   the fabric's topology family by the candidate registry in
   :mod:`repro.core.candidates`) to the
   :class:`~repro.core.reconfiguration.ReconfigurationPlanner`, gating on
   the telemetry-smoothed demand so a one-tick spike cannot trigger a
   topology change;
5. **actuate** -- execute an approved plan's PLP commands with their real
   delays: harvested capacity disappears immediately, new links join the
   simulation *disabled* until the batch's completion time, and active
   flows are rerouted both at the start of the transition (off links that
   shrank or vanished) and at its end (onto the freshly trained links).

The loop terminates when the workload drains (no active or pending flows
and no transition in flight), when ``until`` is reached, or after
``max_ticks`` safety-valve iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.candidates import (
    GridToTorusCandidate,
    PlanCandidate,
    PlanProposal,
)
from repro.core.cost import LinkPriceTagger, PriceWeights
from repro.core.plp import PLPExecutor, PLPResult, ReconfigurationDelays
from repro.core.reconfiguration import (
    ReconfigurationPlan,
    ReconfigurationPlanner,
)
from repro.core.scheduler import FlowScheduler
from repro.fabric.fabric import Fabric
from repro.fabric.routing import path_directed_keys
from repro.fabric.topology import canonical_key, merge_directed_values
from repro.phy.stats import EwmaEstimator
from repro.sim.engine import Simulator
from repro.sim.fluid import FluidFlowSimulator, FluidResult
from repro.sim.process import PeriodicProcess
from repro.sim.trace import NullTrace, TraceRecorder
from repro.sim.units import microseconds
from repro.telemetry.collector import TelemetryCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fabric.packetsim import PacketBackend

LinkKey = Tuple[str, str]

#: Any simulation backend the loop can bind to: the fluid flow simulator or
#: the packet backend.  Both expose the observation/actuation surface the
#: loop consumes (``instantaneous_link_utilisation``/``..._load``,
#: ``active_flows``, ``pending_demand_bits``, ``route_of``, ``links``,
#: ``has_link``/``set_capacity``/``add_link``/``set_enabled``, ``reroute``
#: and a resumable ``run(until)`` returning a truncation-aware result).
SimulationBackend = Union[FluidFlowSimulator, "PacketBackend"]


@dataclass
class ControlLoopConfig:
    """Tunable knobs of the control loop (see ``docs/control-loop.md``).

    Attributes
    ----------
    interval:
        Seconds between control ticks (the loop's sampling period).
    utilisation_threshold:
        Smoothed hottest-link utilisation below which reconfiguration plans
        are not even evaluated -- the fabric is not congested enough for a
        topology change to pay.
    hysteresis:
        Benefit/cost factor the planner requires before approving a plan
        (>= 1; larger means more reluctant).
    break_even_margin:
        Extra safety factor on the break-even flow size (>= 1); the
        smoothed demand must clear ``break_even * margin``.
    min_reconfiguration_interval:
        Minimum seconds between committed reconfigurations, so a noisy
        congestion signal cannot flap the topology.
    telemetry_alpha:
        EWMA coefficient for the loop's demand smoothing (the same smoothed
        estimate the planner's spike protection consumes).
    reroute_price_gain:
        A flow is moved only when its current path costs at least this
        factor more than the best alternative (> 1 prevents oscillating
        between near-equal paths).
    max_reroutes_per_tick:
        Cap on flows moved per tick, spreading churn over several ticks.
    candidate_paths:
        ``k`` of the scheduler's k-shortest-path candidate set.
    price_weights:
        Relative weighting of the price-tag terms.
    delays:
        Reconfiguration delay model charged by the PLP executor.
    """

    interval: float = microseconds(100.0)
    utilisation_threshold: float = 0.5
    hysteresis: float = 1.5
    break_even_margin: float = 1.0
    min_reconfiguration_interval: float = microseconds(500.0)
    telemetry_alpha: float = 0.25
    reroute_price_gain: float = 1.1
    max_reroutes_per_tick: int = 8
    candidate_paths: int = 3
    price_weights: PriceWeights = field(default_factory=PriceWeights)
    delays: ReconfigurationDelays = field(default_factory=ReconfigurationDelays)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.utilisation_threshold <= 1:
            raise ValueError("utilisation_threshold must be in (0, 1]")
        if self.hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0")
        if self.break_even_margin < 1.0:
            raise ValueError("break_even_margin must be >= 1.0")
        if self.min_reconfiguration_interval < 0:
            raise ValueError("min_reconfiguration_interval must be >= 0")
        if not 0 < self.telemetry_alpha <= 1:
            raise ValueError("telemetry_alpha must be in (0, 1]")
        if self.reroute_price_gain < 1.0:
            raise ValueError("reroute_price_gain must be >= 1.0")
        if self.max_reroutes_per_tick < 0:
            raise ValueError("max_reroutes_per_tick must be >= 0")
        if self.candidate_paths <= 0:
            raise ValueError("candidate_paths must be positive")


@dataclass
class ControlTick:
    """Record of one lap around the ring, kept for analysis and tests."""

    time: float
    index: int
    #: Hottest smoothed link utilisation seen this tick.
    max_utilisation: float
    #: Hottest raw (instantaneous) link utilisation this tick.
    raw_max_utilisation: float
    active_flows: int
    pending_demand_bits: float
    smoothed_demand_bits: float
    flows_rerouted: int
    plans_evaluated: int
    reconfigured: bool
    plan_name: str = ""
    #: Absolute time the in-flight transition completes (None when idle).
    transition_until: Optional[float] = None


__all__ = [
    "ControlLoop",
    "ControlLoopConfig",
    "ControlTick",
    "GridToTorusCandidate",
    "PlanCandidate",
    "PlanProposal",
    "SimulationBackend",
]


class ControlLoop:
    """The closed-loop controller, bound to an engine and a simulation backend.

    Typical use (the fluid backend; a
    :class:`~repro.fabric.packetsim.PacketBackend` binds identically)::

        fabric = build_grid_fabric(3, 3, lanes_per_link=2)
        fluid = FluidFlowSimulator()
        # ... add links and flows ...
        loop = ControlLoop(fabric, candidates=[GridToTorusCandidate(3, 3)])
        loop.bind(fluid)
        result = loop.run()

    Parameters
    ----------
    fabric:
        The fabric the loop observes and mutates.
    candidates:
        Standing :class:`PlanCandidate` instances evaluated every tick the
        fabric looks congested.
    config:
        Loop knobs; defaults are the ``docs/control-loop.md`` values.
    telemetry:
        Collector the loop records its time series into; a private one is
        created when omitted (exposed as :attr:`telemetry`).
    trace:
        Optional event trace recorder.
    """

    def __init__(
        self,
        fabric: Fabric,
        candidates: Sequence[PlanCandidate] = (),
        config: Optional[ControlLoopConfig] = None,
        telemetry: Optional[TelemetryCollector] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.fabric = fabric
        self.config = config if config is not None else ControlLoopConfig()
        self.telemetry = telemetry if telemetry is not None else TelemetryCollector()
        self.trace = trace if trace is not None else NullTrace()
        self.tagger = LinkPriceTagger(weights=self.config.price_weights)
        self.scheduler = FlowScheduler(
            fabric,
            tagger=self.tagger,
            candidate_paths=self.config.candidate_paths,
        )
        self.executor = PLPExecutor(fabric, delays=self.config.delays)
        self.planner = ReconfigurationPlanner(
            delays=self.config.delays,
            hysteresis=self.config.hysteresis,
            min_interval=self.config.min_reconfiguration_interval,
        )
        self.candidates: List[PlanCandidate] = list(candidates)
        self.ticks: List[ControlTick] = []
        self.reconfiguration_times: List[float] = []
        self.flows_rerouted_total = 0
        # Seeded at zero: an EWMA that adopts its first sample wholesale
        # would let a spike on the very first tick pass the spike filter.
        self.demand_ewma = EwmaEstimator(alpha=self.config.telemetry_alpha, initial=0.0)
        self._sim: Optional[SimulationBackend] = None
        self._engine: Optional[Simulator] = None
        self._process: Optional[PeriodicProcess] = None
        self._transition_until: Optional[float] = None
        self._training_links: List[LinkKey] = []

    # ------------------------------------------------------------------ #
    # Binding and running
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> Optional[Simulator]:
        """The event engine driving the loop's ticks (after :meth:`bind`)."""
        return self._engine

    def bind(self, simulator: SimulationBackend, engine: Optional[Simulator] = None) -> None:
        """Attach the loop to *simulator*, scheduling its ticks on *engine*.

        A fresh :class:`~repro.sim.engine.Simulator` is created when
        *engine* is omitted.  The first tick fires one interval in -- the
        loop observes traffic, it does not precede it.
        """
        if self._sim is not None:
            raise RuntimeError("ControlLoop is already bound")
        self._sim = simulator
        self._engine = engine if engine is not None else Simulator()
        self._process = PeriodicProcess(
            self._engine,
            "control-loop",
            period=self.config.interval,
            callback=self._on_tick,
            start_offset=self.config.interval,
        )
        self._process.start()

    def run(self, until: Optional[float] = None, max_ticks: int = 100_000) -> FluidResult:
        """Co-simulate engine and simulation backend until the workload drains.

        The backend is advanced to each engine event time before the event
        (control tick or transition completion) executes, so every tick
        observes traffic state at exactly its own timestamp; between
        events, rate re-convergence (fluid) or packet forwarding and
        retransmission (packet backend) happens inside the backend.

        Parameters
        ----------
        until:
            Optional absolute stop time (the loop may leave flows
            unfinished).
        max_ticks:
            Safety valve: stop after this many engine events even if
            traffic has not drained (e.g. flows stalled on a partitioned
            fabric with no repair candidate).
        """
        if self._sim is None or self._engine is None or self._process is None:
            raise RuntimeError("bind() the loop to a fluid simulator first")
        sim, engine = self._sim, self._engine
        events = 0
        while True:
            next_event = engine.peek()
            if next_event is None:
                break
            if until is not None and next_event > until:
                sim.run(until=until)
                break
            if sim.run(until=next_event).truncated:
                # The fluid model exhausted its event budget: its clock can
                # no longer follow the engine's, so further control ticks
                # would observe (and mutate against) frozen traffic state.
                break
            engine.run(until=next_event)
            events += 1
            if events >= max_ticks:
                break
            if self._drained():
                break
        self._process.stop()
        if until is not None and sim.now < until:
            sim.run(until=until)
        return sim.run(until=sim.now)

    def _drained(self) -> bool:
        assert self._sim is not None
        return (
            not self._sim.active_flows()
            and self._sim.pending_flow_count == 0
            and self._transition_until is None
        )

    # ------------------------------------------------------------------ #
    # One lap around the ring
    # ------------------------------------------------------------------ #
    def _on_tick(self, now: float) -> None:
        assert self._sim is not None
        sim = self._sim

        # 1. observe ---------------------------------------------------- #
        raw_utilisation = self._canonical_utilisation(sim)
        raw_max = max(raw_utilisation.values()) if raw_utilisation else 0.0
        for key in self.fabric.topology.link_keys():
            link = self.fabric.topology.link_between(*key)
            self.fabric.stats_for(*key).observe(
                latency=link.one_way_latency,
                utilisation=raw_utilisation.get(key, 0.0),
                post_fec_ber=link.post_fec_ber,
                power_watts=link.power_watts,
            )
        smoothed = {
            key: self.fabric.stats_for(*key).utilisation.value_or(0.0)
            for key in self.fabric.topology.link_keys()
        }
        smoothed_max = max(smoothed.values()) if smoothed else 0.0
        active = sim.active_flows()
        # Exact remaining demand at the tick instant: the fluid model
        # advances flow progress lazily from rate-change anchors, and
        # pending_demand_bits() evaluates the anchors at the current clock
        # rather than trusting whenever bits_remaining was last published.
        pending_bits = sim.pending_demand_bits()
        self.demand_ewma.update(pending_bits)
        power = self.fabric.power_report().total_watts
        self.fabric.power_budget.record(now, power)
        self.telemetry.record("max_utilisation", now, raw_max)
        self.telemetry.record("smoothed_max_utilisation", now, smoothed_max)
        self.telemetry.record("active_flows", now, float(len(active)))
        self.telemetry.record("pending_demand_bits", now, pending_bits)
        self.telemetry.record("fabric_power_watts", now, power)

        # 2. price ------------------------------------------------------ #
        self.scheduler.sync_observed_load(sim.instantaneous_link_load())
        self.fabric.set_router_weight(self.tagger.weight_fn(smoothed))

        # 3. schedule (re-price active flows) --------------------------- #
        # A transition never ends on a tick: its completion runs as its own
        # engine event at priority -1, which fires before any same-time tick.
        exclude = frozenset(self._training_directed_keys())
        rerouted = self._reprice_active_flows(sim, exclude)

        # 4. plan + 5. actuate ------------------------------------------ #
        plans_evaluated = 0
        reconfigured = False
        plan_name = ""
        if smoothed_max >= self.config.utilisation_threshold and self._transition_until is None:
            for candidate in self.candidates:
                proposal = candidate.propose(self.fabric, self.config.delays)
                if proposal is None:
                    continue
                plans_evaluated += 1
                if not self.planner.should_apply(
                    proposal.plan,
                    pending_bits,
                    proposal.current_rate_bps,
                    proposal.reconfigured_rate_bps,
                    now=now,
                    smoothed_demand_bits=self.demand_ewma.value,
                    margin=self.config.break_even_margin,
                ):
                    continue
                self._apply_plan(now, candidate, proposal.plan, sim)
                reconfigured = True
                plan_name = proposal.plan.name
                break  # at most one reconfiguration per tick

        record = ControlTick(
            time=now,
            index=len(self.ticks) + 1,
            max_utilisation=smoothed_max,
            raw_max_utilisation=raw_max,
            active_flows=len(active),
            pending_demand_bits=pending_bits,
            smoothed_demand_bits=self.demand_ewma.value_or(0.0),
            flows_rerouted=rerouted,
            plans_evaluated=plans_evaluated,
            reconfigured=reconfigured,
            plan_name=plan_name,
            transition_until=self._transition_until,
        )
        self.ticks.append(record)
        self.flows_rerouted_total += rerouted
        self.trace.record(
            now,
            "control_tick",
            index=record.index,
            max_utilisation=smoothed_max,
            rerouted=rerouted,
            reconfigured=reconfigured,
        )

    # ------------------------------------------------------------------ #
    # Observation helpers
    # ------------------------------------------------------------------ #
    def _canonical_utilisation(self, sim: SimulationBackend) -> Dict[LinkKey, float]:
        return merge_directed_values(sim.instantaneous_link_utilisation())

    def _training_directed_keys(self) -> List[LinkKey]:
        keys: List[LinkKey] = []
        for a, b in self._training_links:
            keys.append((a, b))
            keys.append((b, a))
        return keys

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _reprice_active_flows(
        self,
        sim: SimulationBackend,
        exclude: FrozenSet[LinkKey],
        force_all: bool = False,
    ) -> int:
        """Move flows whose path price justifies it; returns the count moved.

        With *force_all* (right after a transition completed) every flow is
        re-priced and moved to its cheapest path regardless of the gain
        threshold and the per-tick cap -- the topology just changed under
        them, so their current paths carry no inertia worth respecting.
        """
        moved = 0
        candidates: List[Tuple[float, int, List[str], float]] = []
        for flow in sim.active_flows():
            current_keys = sim.route_of(flow.flow_id)
            current_price = self._directed_price(current_keys)
            best = self.scheduler.cheapest_path(flow.src, flow.dst, exclude)
            if best is None:
                continue
            best_path, best_price = best
            new_keys = path_directed_keys(best_path)
            if new_keys == current_keys:
                continue
            if not all(sim.has_link(key) for key in new_keys):
                continue
            if force_all or (
                math.isinf(current_price)
                or current_price > best_price * self.config.reroute_price_gain
            ):
                candidates.append(
                    (current_price - best_price, flow.flow_id, best_path, best_price)
                )
        candidates.sort(key=lambda item: (-item[0], item[1]))
        limit = len(candidates) if force_all else self.config.max_reroutes_per_tick
        for _gain, flow_id, best_path, _price in candidates[:limit]:
            sim.reroute(flow_id, path_directed_keys(best_path))
            moved += 1
        return moved

    def _directed_price(self, keys: Sequence[LinkKey]) -> float:
        """Price of a route given as directed keys (inf on a broken route)."""
        total = 0.0
        for a, b in keys:
            if not self.fabric.topology.has_link(str(a), str(b)):
                return math.inf
            path_price = self.scheduler.path_price([str(a), str(b)])
            total += path_price
        return total

    # ------------------------------------------------------------------ #
    # Actuation
    # ------------------------------------------------------------------ #
    def _apply_plan(
        self,
        now: float,
        candidate: PlanCandidate,
        plan: ReconfigurationPlan,
        sim: SimulationBackend,
    ) -> List[PLPResult]:
        """Execute *plan* and start its transition window.

        A batch may partially fail (e.g. a command targeting a link that a
        concurrent failure just took down).  The fabric has still changed,
        so the reconfiguration is recorded and the transition proceeds, but
        the failures are traced and counted; only a batch that failed
        *entirely* is treated as a no-op (nothing changed, the candidate
        stays live for the next tick).
        """
        results = self.executor.execute_batch(plan.commands, now=now)
        failed = [result for result in results if result.failed]
        if len(failed) == len(results):
            self.trace.record(
                now, "reconfiguration_rejected", plan=plan.name,
                detail=failed[0].detail if failed else "",
            )
            return results
        completion = PLPExecutor.batch_completion_time(results)
        self.planner.commit(now)
        candidate.committed(now)
        self.reconfiguration_times.append(now)
        self.fabric.invalidate_routes()
        if failed:
            self.trace.record(
                now,
                "reconfiguration_partial",
                plan=plan.name,
                failed=len(failed),
                detail="; ".join(result.detail for result in failed),
            )

        # Push new capacities into the fluid model.  Links that shrank take
        # effect immediately (the lanes are gone); links created by the plan
        # join disabled -- they are training until the batch completes.
        # Every mutation goes through the simulator API, which feeds the
        # incremental allocator's dirty set (unchanged capacities are
        # no-ops, so the blanket push below re-solves only what moved).
        before = set(sim.links())
        for key, capacity in self.fabric.directed_capacities().items():
            if sim.has_link(key):
                sim.set_capacity(key, capacity)
            else:
                sim.add_link(key, capacity)
                sim.set_enabled(key, False)
        canonical_new = sorted(
            {canonical_key(*key) for key in self.fabric.directed_capacities() if key not in before}
        )
        self._training_links = list(canonical_new)
        self._transition_until = max(completion, now)

        # Flows whose route lost a link (or all capacity) must move now;
        # everyone else is re-priced on the next tick.
        exclude = frozenset(self._training_directed_keys())
        for flow in sim.active_flows():
            keys = sim.route_of(flow.flow_id)
            if math.isinf(self._directed_price(keys)):
                best = self.scheduler.cheapest_path(flow.src, flow.dst, exclude)
                if best is not None:
                    sim.reroute(flow.flow_id, path_directed_keys(best[0]))

        if self._engine is not None and completion > now:
            # Priority -1: a completion coinciding with a tick applies first,
            # so the tick already sees the trained links.
            self._engine.schedule_at(
                completion, self._on_transition_complete, priority=-1
            )
        elif completion <= now:
            self._finish_transition(now)

        self.telemetry.record("reconfigurations", now, float(len(self.reconfiguration_times)))
        self.trace.record(
            now,
            "reconfiguration_started",
            plan=plan.name,
            commands=plan.command_count,
            completes_at=completion,
        )
        return results

    def _on_transition_complete(self) -> None:
        assert self._engine is not None
        self._finish_transition(self._engine.now)
        if self._sim is not None:
            # The forced wave onto the freshly trained links counts toward
            # the loop's reroute total (it is usually the largest move of
            # the run), even though it happens between tick records.
            self.flows_rerouted_total += self._reprice_active_flows(
                self._sim, frozenset(), force_all=True
            )

    def _finish_transition(self, now: float) -> None:
        """Enable trained links and close the transition window."""
        if self._sim is None or self._transition_until is None:
            return
        for a, b in self._training_links:
            for key in ((a, b), (b, a)):
                if self._sim.has_link(key):
                    self._sim.set_enabled(key, True)
        self._training_links = []
        self._transition_until = None
        for key, capacity in self.fabric.directed_capacities().items():
            if self._sim.has_link(key):
                self._sim.set_capacity(key, capacity)
        self.fabric.invalidate_routes()
        self.trace.record(now, "reconfiguration_complete")

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Headline counters for experiment reports."""
        return {
            "iterations": float(len(self.ticks)),
            "commands_executed": float(self.executor.commands_executed),
            "commands_failed": float(self.executor.commands_failed),
            "reconfigurations": float(len(self.reconfiguration_times)),
            "flows_rerouted": float(self.flows_rerouted_total),
            "total_reconfiguration_time": self.executor.total_reconfiguration_time,
            "peak_power_watts": self.fabric.power_budget.peak_watts(),
        }
