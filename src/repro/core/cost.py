"""Per-link price tags.

The Closed Ring Control "uses per-link price tags, with respect to metrics
such as latency, congestion, link health etc. to allocate PLPs and schedule
flows" (paper, section 3.2).  A price tag is a single scalar per link that
folds together:

* **latency** -- the fixed one-way latency of the link (propagation, SerDes,
  FEC), normalised by a reference latency,
* **congestion** -- smoothed utilisation and queue occupancy,
* **health** -- how far the post-FEC error rate is from the target (a sick
  link should be priced out of the routing even if it is idle),
* **power** -- the bundle's power draw, so a power-capped rack prefers
  routes over already-lit lanes.

Routing then becomes shortest-path under the price, and PLP allocation
becomes "spend primitives where the price is highest" -- both of which the
paper frames as bringing the tools of control theory to the fabric.

The relative weighting of the four terms is the main ablation knob
(experiment A1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.fabric.fabric import Fabric
from repro.phy.link import Link
from repro.phy.stats import LinkStatistics
from repro.sim.units import microseconds


@dataclass(frozen=True)
class PriceWeights:
    """Relative importance of the price-tag components.

    The defaults weight latency and congestion equally, with health and
    power as tie-breakers; the A1 ablation benchmark sweeps these.
    """

    latency: float = 1.0
    congestion: float = 1.0
    health: float = 0.5
    power: float = 0.25

    def __post_init__(self) -> None:
        for name in ("latency", "congestion", "health", "power"):
            if getattr(self, name) < 0:
                raise ValueError(f"weight {name!r} must be >= 0")
        if self.latency + self.congestion + self.health + self.power == 0:
            raise ValueError("at least one weight must be positive")

    @classmethod
    def latency_only(cls) -> "PriceWeights":
        """Price = normalised latency only (the naive baseline)."""
        return cls(latency=1.0, congestion=0.0, health=0.0, power=0.0)

    @classmethod
    def congestion_aware(cls) -> "PriceWeights":
        """Latency plus congestion, no health/power terms."""
        return cls(latency=1.0, congestion=1.0, health=0.0, power=0.0)

    @classmethod
    def health_aware(cls) -> "PriceWeights":
        """Latency, congestion and health."""
        return cls(latency=1.0, congestion=1.0, health=1.0, power=0.0)

    @classmethod
    def power_aware(cls) -> "PriceWeights":
        """All four terms, power emphasised."""
        return cls(latency=1.0, congestion=1.0, health=0.5, power=1.0)


@dataclass(frozen=True)
class PriceNormalisation:
    """Reference scales that map raw metrics onto comparable unitless terms."""

    #: Latency considered "expensive" (1.0 on the latency axis).
    reference_latency: float = microseconds(1.0)
    #: Utilisation above which the congestion term saturates towards its knee.
    utilisation_knee: float = 0.8
    #: Post-FEC BER target; health cost grows with orders of magnitude above it.
    target_ber: float = 1e-12
    #: Power considered "expensive" per link (1.0 on the power axis).
    reference_power_watts: float = 10.0

    def __post_init__(self) -> None:
        if self.reference_latency <= 0:
            raise ValueError("reference_latency must be positive")
        if not 0 < self.utilisation_knee < 1:
            raise ValueError("utilisation_knee must be in (0, 1)")
        if not 0 < self.target_ber < 1:
            raise ValueError("target_ber must be in (0, 1)")
        if self.reference_power_watts <= 0:
            raise ValueError("reference_power_watts must be positive")


class LinkPriceTagger:
    """Computes the CRC's per-link price tags.

    Parameters
    ----------
    weights:
        Relative importance of the latency / congestion / health / power
        terms (:class:`PriceWeights`); the default weights latency and
        congestion equally.
    normalisation:
        Reference scales (:class:`PriceNormalisation`) that map the raw
        metrics onto comparable unitless terms.
    """

    def __init__(
        self,
        weights: Optional[PriceWeights] = None,
        normalisation: Optional[PriceNormalisation] = None,
    ) -> None:
        self.weights = weights if weights is not None else PriceWeights()
        self.normalisation = (
            normalisation if normalisation is not None else PriceNormalisation()
        )

    # ------------------------------------------------------------------ #
    # Component terms
    # ------------------------------------------------------------------ #
    def latency_term(self, link: Link) -> float:
        """Fixed one-way latency normalised by the reference latency."""
        return link.one_way_latency / self.normalisation.reference_latency

    def congestion_term(self, utilisation: float, queue_occupancy: float = 0.0) -> float:
        """Convex congestion cost, M/M/1-style: ``u / (1 - u)`` capped.

        Utilisation is clipped just below 1 so a saturated link gets a very
        large but finite price (an infinite price would make shortest-path
        computations brittle).  Queue occupancy (a fraction of the buffer)
        is added linearly on top.
        """
        utilisation = min(max(utilisation, 0.0), 0.999)
        knee = self.normalisation.utilisation_knee
        # Scale so that utilisation == knee costs exactly 1.0.
        scale = (1.0 - knee) / knee
        cost = scale * utilisation / (1.0 - utilisation)
        return cost + max(0.0, queue_occupancy)

    def health_term(self, post_fec_ber: float) -> float:
        """Orders of magnitude by which the residual BER misses the target."""
        if post_fec_ber <= 0:
            return 0.0
        target = self.normalisation.target_ber
        if post_fec_ber <= target:
            return 0.0
        return math.log10(post_fec_ber / target)

    def power_term(self, power_watts: float) -> float:
        """Link power normalised by the reference power."""
        return max(0.0, power_watts) / self.normalisation.reference_power_watts

    # ------------------------------------------------------------------ #
    # Price tags
    # ------------------------------------------------------------------ #
    def price(
        self,
        link: Link,
        utilisation: float = 0.0,
        queue_occupancy: float = 0.0,
        post_fec_ber: Optional[float] = None,
        power_watts: Optional[float] = None,
    ) -> float:
        """Price of *link* given its current observed state.

        A link with no active capacity is priced at infinity: it cannot be
        routed over until the CRC restores it.
        """
        if link.capacity_bps <= 0:
            return math.inf
        weights = self.weights
        ber = post_fec_ber if post_fec_ber is not None else link.post_fec_ber
        power = power_watts if power_watts is not None else link.power_watts
        return (
            weights.latency * self.latency_term(link)
            + weights.congestion * self.congestion_term(utilisation, queue_occupancy)
            + weights.health * self.health_term(ber)
            + weights.power * self.power_term(power)
        )

    def price_from_stats(self, link: Link, stats: LinkStatistics) -> float:
        """Price computed from a link's smoothed statistics stream."""
        snapshot = stats.snapshot()
        return self.price(
            link,
            utilisation=snapshot["utilisation"],
            queue_occupancy=snapshot["queue_occupancy"],
            post_fec_ber=snapshot["post_fec_ber"] or None,
            power_watts=snapshot["power_watts"] or None,
        )

    def price_map(
        self,
        fabric: Fabric,
        utilisation: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> Dict[Tuple[str, str], float]:
        """Price every link of *fabric*, optionally with live utilisation.

        *utilisation* may be keyed by directed or canonical link keys; for a
        full-duplex link the worse direction sets the price.
        """
        prices: Dict[Tuple[str, str], float] = {}
        for key in fabric.topology.link_keys():
            link = fabric.topology.link_between(*key)
            observed = 0.0
            if utilisation is not None:
                a, b = key
                observed = max(
                    utilisation.get((a, b), 0.0),
                    utilisation.get((b, a), 0.0),
                    utilisation.get(key, 0.0),
                )
            else:
                observed = fabric.stats_for(*key).utilisation.value_or(0.0)
            prices[key] = self.price(link, utilisation=observed)
        return prices

    def weight_fn(
        self, utilisation: Optional[Dict[Tuple[str, str], float]] = None
    ) -> Callable[[Link], float]:
        """A routing weight function using current prices.

        The returned callable closes over *utilisation* keyed by canonical
        endpoints; links absent from the map are priced as idle.
        """

        def weight(link: Link) -> float:
            observed = 0.0
            if utilisation is not None:
                a, b = link.endpoints
                observed = max(
                    utilisation.get((a, b), 0.0), utilisation.get((b, a), 0.0)
                )
            return self.price(link, utilisation=observed)

        return weight
