"""Reconfiguration economics and concrete reconfiguration plans.

Section 3.2 of the paper: "The problem that arises in all reconfigurable
fabrics is finding the minimum flow size for which reconfiguration is worth
the cost.  This could be formulated as an optimization problem and solved
distributively by the CRC."

This module provides

* the closed-form break-even analysis for a single flow
  (:func:`break_even_flow_size`, :func:`reconfiguration_gain`),
* :class:`ReconfigurationPlanner` -- the go/no-go decision for a plan given
  the demand it would serve, with hysteresis to prevent flapping,
* :class:`GridToTorusPlan` -- the concrete plan behind the paper's Figure 2:
  harvest one lane from every grid link and redeploy the freed lanes as
  torus wrap-around links, keeping the total lane budget constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.plp import PLPCommand, PLPCommandType, ReconfigurationDelays
from repro.fabric.topology import Topology, TopologyBuilder


# --------------------------------------------------------------------------- #
# Break-even analysis (experiment E4)
# --------------------------------------------------------------------------- #
def break_even_flow_size(
    current_rate_bps: float,
    reconfigured_rate_bps: float,
    reconfiguration_delay: float,
) -> float:
    """Smallest flow size (bits) for which reconfiguring pays off.

    A flow of size ``S`` completes in ``S / r_old`` without reconfiguration
    and in ``delay + S / r_new`` with it.  Reconfiguration wins when::

        S >= delay * r_old * r_new / (r_new - r_old)

    Returns ``inf`` when the reconfigured rate is not an improvement, and
    ``0`` when the reconfiguration is free.
    """
    if current_rate_bps <= 0 or reconfigured_rate_bps <= 0:
        raise ValueError("rates must be positive")
    if reconfiguration_delay < 0:
        raise ValueError("reconfiguration_delay must be >= 0")
    if reconfigured_rate_bps <= current_rate_bps:
        return math.inf
    if reconfiguration_delay == 0:
        return 0.0
    return (
        reconfiguration_delay
        * current_rate_bps
        * reconfigured_rate_bps
        / (reconfigured_rate_bps - current_rate_bps)
    )


def reconfiguration_gain(
    flow_size_bits: float,
    current_rate_bps: float,
    reconfigured_rate_bps: float,
    reconfiguration_delay: float,
) -> float:
    """Completion-time saving (seconds, positive = reconfiguring is faster)."""
    if flow_size_bits < 0:
        raise ValueError("flow_size_bits must be >= 0")
    if current_rate_bps <= 0 or reconfigured_rate_bps <= 0:
        raise ValueError("rates must be positive")
    baseline = flow_size_bits / current_rate_bps
    reconfigured = reconfiguration_delay + flow_size_bits / reconfigured_rate_bps
    return baseline - reconfigured


def worthwhile(
    flow_size_bits: float,
    current_rate_bps: float,
    reconfigured_rate_bps: float,
    reconfiguration_delay: float,
    margin: float = 1.0,
) -> bool:
    """Whether a flow clears the break-even threshold by a *margin* factor."""
    if margin < 1.0:
        raise ValueError("margin must be >= 1.0")
    threshold = break_even_flow_size(
        current_rate_bps, reconfigured_rate_bps, reconfiguration_delay
    )
    return flow_size_bits >= threshold * margin


# --------------------------------------------------------------------------- #
# Reconfiguration plans
# --------------------------------------------------------------------------- #
@dataclass
class ReconfigurationPlan:
    """A named batch of PLP commands with its expected cost and benefit."""

    name: str
    commands: List[PLPCommand] = field(default_factory=list)
    #: Expected time until the fabric is stable after issuing the batch.
    expected_duration: float = 0.0
    #: Free-form description of the expected benefit, for traces.
    rationale: str = ""

    @property
    def command_count(self) -> int:
        """Number of PLP commands in the plan."""
        return len(self.commands)

    def duration_with(self, delays: ReconfigurationDelays) -> float:
        """Duration of the plan if applied in parallel under *delays*."""
        if not self.commands:
            return 0.0
        return max(delays.for_command(command.type) for command in self.commands)


class GridToTorusPlan:
    """Builds the Figure 2 reconfiguration: grid @ N lanes/link -> torus.

    The plan harvests ``harvest_per_link`` lanes from every existing grid
    link (default: half of a 2-lane bundle) and creates each missing
    wrap-around link with ``lanes_per_wraparound`` lanes taken from the
    harvested pool.  The plan refuses to run if the harvest cannot cover the
    wrap-around links -- conservation of the lane budget is exactly the
    paper's "even up within a heavily populated system" constraint.

    Parameters
    ----------
    rows, columns:
        Dimensions of the grid the plan starts from (both >= 2).
    harvest_per_link:
        Lanes removed from every grid link; each link must keep at least
        one lane alive.
    lanes_per_wraparound:
        Bundle size of every created wrap-around link.  (The control
        loop's :class:`~repro.core.control.GridToTorusCandidate` sizes
        this to spend the whole harvested budget.)
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        harvest_per_link: int = 1,
        lanes_per_wraparound: int = 1,
    ) -> None:
        if rows < 2 or columns < 2:
            raise ValueError("grid dimensions must be at least 2x2")
        if harvest_per_link <= 0 or lanes_per_wraparound <= 0:
            raise ValueError("lane counts must be positive")
        self.rows = rows
        self.columns = columns
        self.harvest_per_link = harvest_per_link
        self.lanes_per_wraparound = lanes_per_wraparound

    def wraparound_pairs(self) -> List[Tuple[str, str]]:
        """The wrap-around links a torus adds over the grid."""
        return TopologyBuilder.torus_wraparound_pairs(self.rows, self.columns)

    def build(self, topology: Topology, delays: Optional[ReconfigurationDelays] = None) -> ReconfigurationPlan:
        """Create the command batch for *topology* (which must be the grid).

        Raises :class:`ValueError` if the topology does not look like the
        expected grid (missing links) or if the lane budget does not cover
        the wrap-around links.
        """
        delays = delays if delays is not None else ReconfigurationDelays()
        commands: List[PLPCommand] = []
        harvested = 0
        grid_links: List[Tuple[str, str]] = []
        for row in range(self.rows):
            for column in range(self.columns):
                here = TopologyBuilder.grid_node_name(row, column)
                if column + 1 < self.columns:
                    grid_links.append((here, TopologyBuilder.grid_node_name(row, column + 1)))
                if row + 1 < self.rows:
                    grid_links.append((here, TopologyBuilder.grid_node_name(row + 1, column)))

        for a, b in grid_links:
            if not topology.has_link(a, b):
                raise ValueError(f"topology is missing expected grid link {a}<->{b}")
            link = topology.link_between(a, b)
            if link.num_lanes <= self.harvest_per_link:
                raise ValueError(
                    f"link {a}<->{b} has only {link.num_lanes} lanes; cannot harvest "
                    f"{self.harvest_per_link} and keep it alive"
                )
            commands.append(
                PLPCommand(
                    type=PLPCommandType.SPLIT_LINK,
                    endpoints=(a, b),
                    params={"lanes": self.harvest_per_link},
                )
            )
            harvested += self.harvest_per_link

        missing_pairs = [
            (a, b) for a, b in self.wraparound_pairs() if not topology.has_link(a, b)
        ]
        required = len(missing_pairs) * self.lanes_per_wraparound
        if required > harvested:
            raise ValueError(
                f"plan needs {required} lanes for wrap-around links but only "
                f"{harvested} can be harvested"
            )
        for a, b in missing_pairs:
            commands.append(
                PLPCommand(
                    type=PLPCommandType.CREATE_LINK,
                    endpoints=(a, b),
                    params={"lanes": self.lanes_per_wraparound},
                )
            )

        plan = ReconfigurationPlan(
            name=f"grid-to-torus-{self.rows}x{self.columns}",
            commands=commands,
            rationale=(
                f"harvest {self.harvest_per_link} lane(s) from {len(grid_links)} grid links, "
                f"create {len(missing_pairs)} wrap-around links of "
                f"{self.lanes_per_wraparound} lane(s)"
            ),
        )
        plan.expected_duration = plan.duration_with(delays)
        return plan


class ReconfigurationPlanner:
    """Go/no-go decisions for reconfiguration plans.

    The planner compares the estimated time to drain the offered demand
    before and after the plan, charges the plan's duration as its cost, and
    requires the benefit to exceed the cost by a hysteresis factor.  It also
    enforces a minimum interval between reconfigurations so that a noisy
    congestion signal cannot flap the topology.

    Parameters
    ----------
    delays:
        Delay model used to cost each plan's command batch.
    hysteresis:
        Benefit/cost factor (>= 1) a plan must clear; 1.0 approves any
        net-positive plan, larger values demand a safety margin.
    min_interval:
        Minimum seconds between committed reconfigurations; go/no-go calls
        inside the window are refused outright.
    """

    def __init__(
        self,
        delays: Optional[ReconfigurationDelays] = None,
        hysteresis: float = 1.5,
        min_interval: float = 0.0,
    ) -> None:
        if hysteresis < 1.0:
            raise ValueError("hysteresis must be >= 1.0")
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        self.delays = delays if delays is not None else ReconfigurationDelays()
        self.hysteresis = hysteresis
        self.min_interval = min_interval
        self.last_reconfiguration_at: Optional[float] = None
        self.decisions: List[Dict[str, float]] = []

    def should_apply(
        self,
        plan: ReconfigurationPlan,
        demand_bits: float,
        current_rate_bps: float,
        reconfigured_rate_bps: float,
        now: float = 0.0,
        smoothed_demand_bits: Optional[float] = None,
        margin: float = 1.0,
    ) -> bool:
        """Whether *plan* should be applied to serve the offered demand.

        Parameters
        ----------
        plan:
            The candidate command batch; its duration (under :attr:`delays`)
            is the cost side of the break-even comparison.
        demand_bits:
            Instantaneous demand estimate (e.g. remaining bits of the
            currently active flows).
        current_rate_bps, reconfigured_rate_bps:
            Effective service rates for the demand before and after the plan
            (for the grid-to-torus case the caller estimates these from the
            bottleneck utilisation or bisection bandwidth).
        now:
            Current simulation time, for the minimum-interval check.
        smoothed_demand_bits:
            Telemetry-smoothed (EWMA) demand estimate.  When given, the
            break-even test uses ``min(demand_bits, smoothed_demand_bits)``
            so that a single-tick demand spike -- instantaneous demand high,
            smoothed demand still low -- cannot trigger a reconfiguration;
            the spike has to persist long enough to lift the average.
        margin:
            Extra break-even safety factor (>= 1).  The *effective* demand
            must exceed the closed-form break-even flow size scaled by this
            factor, on top of the hysteresis test.
        """
        if demand_bits < 0:
            raise ValueError("demand_bits must be >= 0")
        if smoothed_demand_bits is not None and smoothed_demand_bits < 0:
            raise ValueError("smoothed_demand_bits must be >= 0")
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        if self.last_reconfiguration_at is not None and (
            now - self.last_reconfiguration_at < self.min_interval
        ):
            self._record(now, plan, 0.0, False, "within min interval")
            return False
        effective_demand = demand_bits
        if smoothed_demand_bits is not None:
            effective_demand = min(demand_bits, smoothed_demand_bits)
        duration = plan.duration_with(self.delays)
        gain = reconfiguration_gain(
            effective_demand, current_rate_bps, reconfigured_rate_bps, duration
        )
        # The gain must cover the cost (already subtracted) scaled by the
        # hysteresis margin of the *remaining* benefit.
        required_margin = duration * (self.hysteresis - 1.0)
        decision = gain > required_margin
        if decision and margin > 1.0:
            decision = worthwhile(
                effective_demand,
                current_rate_bps,
                reconfigured_rate_bps,
                duration,
                margin=margin,
            )
        self._record(now, plan, gain, decision, "", demand_bits=effective_demand)
        return decision

    def commit(self, now: float) -> None:
        """Record that a reconfiguration was actually applied at *now*."""
        self.last_reconfiguration_at = now

    def _record(
        self,
        now: float,
        plan: ReconfigurationPlan,
        gain: float,
        decision: bool,
        note: str,
        demand_bits: float = 0.0,
    ) -> None:
        self.decisions.append(
            {
                "time": now,
                "plan_commands": float(plan.command_count),
                "gain": gain,
                "demand_bits": demand_bits,
                "applied": 1.0 if decision else 0.0,
            }
        )
