"""The paper's contribution: Physical Layer Primitives + Closed Ring Control.

* :mod:`repro.core.plp` -- the PLP command set and the executor that applies
  commands to a fabric, modelling reconfiguration delays and the lane pool.
* :mod:`repro.core.cost` -- per-link price tags over latency, congestion,
  health and power, the currency of the control loop.
* :mod:`repro.core.reconfiguration` -- the break-even optimisation ("what is
  the minimum flow size for which reconfiguration is worth the cost?") and
  concrete reconfiguration plans such as the Figure 2 grid-to-torus plan.
* :mod:`repro.core.candidates` -- reconfiguration candidates and the
  per-topology-family candidate registry: each registered topology family
  (grid, fat-tree, dragonfly, ...) declares its legal moves, and the loop
  controller resolves them by family name instead of hard-coding the
  grid-to-torus move.
* :mod:`repro.core.policy` -- control policies (latency minimisation, power
  cap, adaptive FEC, composites).
* :mod:`repro.core.scheduler` -- flow scheduling subject to PLP availability.
* :mod:`repro.core.crc` -- the Closed Ring Control itself: the periodic
  feedback loop that observes link statistics, prices links, asks the
  policies for PLP commands, executes them and re-routes traffic.
* :mod:`repro.core.control` -- the closed-loop adaptive control *runtime*:
  a :class:`~repro.core.control.ControlLoop` process on the event engine
  that drives telemetry, pricing, scheduling and reconfiguration inside a
  running fluid simulation.
* :mod:`repro.core.controllers` -- the :class:`Controller` protocol and its
  name registry: every control strategy (``none``, ``static``, ``ecmp``,
  ``crc``, ``loop``, or a third-party registration) becomes interchangeable
  behind :func:`repro.experiments.api.run_experiment`.
"""

from repro.core.candidates import (
    DragonflyGlobalRehomeCandidate,
    FatTreeUplinkRebalanceCandidate,
    GridToTorusCandidate,
    PlanCandidate,
    PlanProposal,
    candidate_moves,
    candidates_for_topology,
    register_candidate,
)
from repro.core.control import (
    ControlLoop,
    ControlLoopConfig,
    ControlTick,
)
from repro.core.controllers import (
    Controller,
    ControllerError,
    ControllerSummary,
    controller_names,
    create_controller,
    register_controller,
)
from repro.core.cost import LinkPriceTagger, PriceWeights
from repro.core.crc import ClosedRingControl, CRCConfig
from repro.core.plp import (
    PLPCommand,
    PLPCommandType,
    PLPExecutor,
    PLPResult,
    ReconfigurationDelays,
)
from repro.core.policy import (
    AdaptiveFecPolicy,
    BypassPolicy,
    CompositePolicy,
    ControlPolicy,
    LatencyMinimizationPolicy,
    Observation,
    PowerCapPolicy,
)
from repro.core.reconfiguration import (
    GridToTorusPlan,
    ReconfigurationPlan,
    ReconfigurationPlanner,
    break_even_flow_size,
    reconfiguration_gain,
)
from repro.core.scheduler import FlowScheduler, SchedulingDecision

__all__ = [
    "Controller",
    "ControllerError",
    "ControllerSummary",
    "controller_names",
    "create_controller",
    "register_controller",
    "ControlLoop",
    "ControlLoopConfig",
    "ControlTick",
    "GridToTorusCandidate",
    "FatTreeUplinkRebalanceCandidate",
    "DragonflyGlobalRehomeCandidate",
    "PlanCandidate",
    "PlanProposal",
    "candidate_moves",
    "candidates_for_topology",
    "register_candidate",
    "LinkPriceTagger",
    "PriceWeights",
    "ClosedRingControl",
    "CRCConfig",
    "PLPCommand",
    "PLPCommandType",
    "PLPExecutor",
    "PLPResult",
    "ReconfigurationDelays",
    "AdaptiveFecPolicy",
    "BypassPolicy",
    "CompositePolicy",
    "ControlPolicy",
    "LatencyMinimizationPolicy",
    "Observation",
    "PowerCapPolicy",
    "GridToTorusPlan",
    "ReconfigurationPlan",
    "ReconfigurationPlanner",
    "break_even_flow_size",
    "reconfiguration_gain",
    "FlowScheduler",
    "SchedulingDecision",
]
