"""Command-line interface: run the headline experiments from a shell.

Examples
--------
::

    repro-fabric figure1
    repro-fabric figure2 --rows 4 --columns 4
    repro-fabric mapreduce --rows 4 --columns 8
    repro-fabric breakeven
    repro-fabric validate
    repro-fabric list-scenarios
    repro-fabric list-controllers
    repro-fabric list-topologies
    repro-fabric run mapreduce-skewed --set rows=4 --set skew_factor=3.0
    repro-fabric run fattree_uniform --set num_flows=256
    repro-fabric run dragonfly_permutation --set backend=packet
    repro-fabric run hotspot_migration --set controller=ecmp
    repro-fabric run uniform-burst --set backend=packet
    repro-fabric run uniform-burst --set backend=packet --set engine=batched
    repro-fabric run uniform-burst --set backend=packet --set engine=sharded \\
        --set shards=4
    repro-fabric run hotspot_migration --set backend=packet
    repro-fabric compare hotspot_migration
    repro-fabric compare uniform-burst --set backend=packet
    repro-fabric sweep --scenario permutation --scenario incast \\
        --grid rows=3,4 --grid controller=none,crc --workers 4 --output sweep.jsonl
    repro-fabric sweep --scenario uniform-burst --grid backend=fluid,packet \\
        --output backends.jsonl
    repro-fabric sweep --scenario uniform-burst --grid backend=packet \\
        --grid engine=sharded --grid shards=1,2,4 --output shards.jsonl
    repro-fabric lint --strict
    repro-fabric lint --list-rules

Every ``run``/``compare``/``sweep`` invocation goes through the single
experiment entrypoint (:func:`repro.experiments.api.run_experiment`); the
``controller`` parameter selects any controller registered in
:mod:`repro.core.controllers` by name, and the ``backend`` parameter picks
the simulation backend (``fluid`` flow-level rates, or ``packet`` for the
packetised transport over per-port FIFO buffers -- packet rows carry the
extra drop/retransmission/queueing metrics).  Every controller runs on
both backends, including the closed control loop (``controller=loop``,
the default for the dynamic scenarios).  On the packet backend,
``engine=batched`` selects the train-batched execution engine and
``engine=sharded`` (with ``shards=N``) the spatially-sharded one --
metrics are bit-identical to the default ``engine=event``, only faster.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.breakeven import break_even_curve
from repro.analysis.validation import validate_against_analytical, validation_summary
from repro.core.candidates import candidate_moves
from repro.core.controllers import controller_catalog
from repro.experiments.comparison import adaptive_vs_static
from repro.fabric.topologies import topology_catalog
from repro.experiments.figures import figure1_rows, figure2_rows, mapreduce_comparison_rows
from repro.experiments.scenarios import ScenarioError, list_scenarios, run_scenario
from repro.experiments.sweep import run_sweep
from repro.sim.units import GBPS, megabytes, microseconds
from repro.telemetry.report import format_table


def _print_rows(title: str, rows: Sequence[dict]) -> None:
    if not rows:
        print(f"{title}: no data")
        return
    headers = list(rows[0].keys())
    table = format_table(headers, [[row.get(h) for h in headers] for row in rows], title=title)
    print(table)


def _cmd_figure1(args: argparse.Namespace) -> int:
    distances = list(range(2, args.max_distance + 1, 2))
    rows = figure1_rows(distances_meters=distances, packet_size_bytes=args.packet_bytes)
    _print_rows("Figure 1: media propagation vs cut-through switching latency", rows)
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    rows = figure2_rows(
        rows=args.rows,
        columns=args.columns,
        flow_size_bits=megabytes(args.flow_megabytes),
        seed=args.seed,
        workload=args.workload,
    )
    _print_rows("Figure 2: grid -> torus reconfiguration under the CRC", rows)
    return 0


def _cmd_mapreduce(args: argparse.Namespace) -> int:
    rows = mapreduce_comparison_rows(
        rows=args.rows,
        columns=args.columns,
        flow_size_bits=megabytes(args.flow_megabytes),
        seed=args.seed,
        skew_factor=args.skew,
    )
    _print_rows("MapReduce shuffle: static grid vs adaptive fabric", rows)
    return 0


def _cmd_breakeven(args: argparse.Namespace) -> int:
    delays = [microseconds(value) for value in (1, 5, 10, 50, 100, 500, 1000, 10000)]
    rows = break_even_curve(
        delays,
        current_rate_bps=args.current_gbps * GBPS,
        reconfigured_rate_bps=args.reconfigured_gbps * GBPS,
    )
    _print_rows("Break-even flow size vs reconfiguration delay", rows)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    results = validate_against_analytical()
    rows = [
        {
            "scenario": result.scenario,
            "hops": result.hops,
            "packet_bytes": result.packet_size_bytes,
            "simulated": result.simulated_latency,
            "analytical": result.analytical_latency,
            "relative_error": result.relative_error,
        }
        for result in results
    ]
    _print_rows("Packet-level simulation vs analytical model (POC substitute)", rows)
    summary = validation_summary(results)
    print()
    print(f"max relative error:  {summary['max_relative_error']:.3e}")
    print(f"mean relative error: {summary['mean_relative_error']:.3e}")
    return 0 if summary["max_relative_error"] <= args.tolerance else 1


def _parse_value(text: str) -> object:
    """Parse one ``--set``/``--grid`` value: int, float, bool or string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text.strip()


def _parse_assignment(text: str) -> tuple:
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    key, _, value = text.partition("=")
    return key.strip(), value


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    scenarios = list_scenarios()
    rows = [
        {
            "name": scenario.name,
            "workload": scenario.workload,
            "description": scenario.description,
        }
        for scenario in scenarios
    ]
    _print_rows(f"Registered scenarios ({len(scenarios)})", rows)
    if args.verbose:
        print()
        for scenario in scenarios:
            print(f"{scenario.name}:")
            print(f"  pattern:  {scenario.workload_summary()}")
            print(f"  defaults: {json.dumps(scenario.parameters(), sort_keys=True)}")
    return 0


def _cmd_list_controllers(args: argparse.Namespace) -> int:
    rows = controller_catalog()
    _print_rows(f"Registered controllers ({len(rows)})", rows)
    return 0


def _cmd_list_topologies(args: argparse.Namespace) -> int:
    families = topology_catalog()
    rows = [
        {
            "name": family.name,
            "family": family.family,
            "endpoints": family.size_formula,
            "parameters": ", ".join(family.parameters),
            "moves": ", ".join(candidate_moves(family.name)) or "-",
            "description": family.description,
        }
        for family in families
    ]
    _print_rows(f"Registered topology families ({len(rows)})", rows)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    overrides: Dict[str, object] = {}
    for key, value in args.set or []:
        overrides[key] = _parse_value(value)
    try:
        row = run_scenario(args.scenario, overrides, base_seed=args.base_seed)
    except (ScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(json.dumps(row, indent=2, sort_keys=True))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    overrides: Dict[str, object] = {}
    for key, value in args.set or []:
        overrides[key] = _parse_value(value)
    try:
        rows = adaptive_vs_static(args.scenario, overrides, base_seed=args.base_seed)
    except (ScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _print_rows(
        f"{args.scenario}: static vs ECMP vs adaptive (identical flows)", rows
    )
    by_label = {row["label"]: row for row in rows}
    static_fct = by_label["static"]["mean_fct"]
    adaptive_fct = by_label["adaptive"]["mean_fct"]
    if static_fct and adaptive_fct:
        print(f"\nadaptive / static mean FCT: {adaptive_fct / static_fct:.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    grid: Dict[str, List[object]] = {}
    for key, value in args.grid or []:
        grid[key] = [_parse_value(token) for token in value.split(",") if token.strip()]
    try:
        rows = run_sweep(
            scenarios=args.scenario or None,
            grid=grid or None,
            workers=args.workers,
            base_seed=args.base_seed,
            output=args.output,
        )
    except (ScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    summary = [
        {
            "scenario": row["scenario"],
            "overrides": json.dumps(
                {k: v for k, v in row["params"].items() if k in grid}, sort_keys=True
            ),
            "makespan": row["metrics"]["makespan"],
            "p99_fct": row["metrics"]["p99_fct"],
            "completion": row["metrics"]["completion_fraction"],
        }
        for row in rows
    ]
    _print_rows(f"Sweep: {len(rows)} runs, {args.workers} worker(s)", summary)
    if args.output:
        print(f"\nwrote {len(rows)} JSON rows to {args.output}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main([])


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-fabric",
        description="Adaptive rack-scale fabrics: experiments from the command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig1 = sub.add_parser("figure1", help="media vs switching latency (Figure 1)")
    fig1.add_argument("--max-distance", type=int, default=40, help="largest path length in meters")
    fig1.add_argument("--packet-bytes", type=float, default=1500.0)
    fig1.set_defaults(func=_cmd_figure1)

    fig2 = sub.add_parser("figure2", help="grid-to-torus reconfiguration (Figure 2)")
    fig2.add_argument("--rows", type=int, default=4)
    fig2.add_argument("--columns", type=int, default=4)
    fig2.add_argument("--flow-megabytes", type=float, default=4.0)
    fig2.add_argument("--seed", type=int, default=1)
    fig2.add_argument("--workload", choices=("hotspot", "shuffle"), default="hotspot")
    fig2.set_defaults(func=_cmd_figure2)

    mapreduce = sub.add_parser("mapreduce", help="shuffle makespan, static vs adaptive")
    mapreduce.add_argument("--rows", type=int, default=4)
    mapreduce.add_argument("--columns", type=int, default=8)
    mapreduce.add_argument("--flow-megabytes", type=float, default=8.0)
    mapreduce.add_argument("--seed", type=int, default=2)
    mapreduce.add_argument("--skew", type=float, default=2.0)
    mapreduce.set_defaults(func=_cmd_mapreduce)

    breakeven = sub.add_parser("breakeven", help="break-even flow size analysis")
    breakeven.add_argument("--current-gbps", type=float, default=50.0)
    breakeven.add_argument("--reconfigured-gbps", type=float, default=100.0)
    breakeven.set_defaults(func=_cmd_breakeven)

    validate = sub.add_parser("validate", help="simulation vs analytical validation")
    validate.add_argument("--tolerance", type=float, default=0.01)
    validate.set_defaults(func=_cmd_validate)

    ls = sub.add_parser("list-scenarios", help="enumerate the scenario catalog")
    ls.add_argument(
        "--verbose", action="store_true",
        help="also print each scenario's traffic pattern and default parameters",
    )
    ls.set_defaults(func=_cmd_list_scenarios)

    lc = sub.add_parser("list-controllers", help="enumerate the controller registry")
    lc.set_defaults(func=_cmd_list_controllers)

    lt = sub.add_parser(
        "list-topologies",
        help="enumerate the topology-family registry and each family's moves",
    )
    lt.set_defaults(func=_cmd_list_topologies)

    run = sub.add_parser("run", help="run one registered scenario, print its JSON row")
    run.add_argument("scenario", help="scenario name (see list-scenarios)")
    run.add_argument(
        "--set", action="append", type=_parse_assignment, metavar="KEY=VALUE",
        help="override one scenario parameter (repeatable)",
    )
    run.add_argument("--base-seed", type=int, default=0)
    run.set_defaults(func=_cmd_run)

    compare = sub.add_parser(
        "compare",
        help="run one scenario under static / ECMP / adaptive control, same flows",
    )
    compare.add_argument("scenario", help="scenario name (see list-scenarios)")
    compare.add_argument(
        "--set", action="append", type=_parse_assignment, metavar="KEY=VALUE",
        help="override one scenario parameter (repeatable)",
    )
    compare.add_argument("--base-seed", type=int, default=0)
    compare.set_defaults(func=_cmd_compare)

    sweep = sub.add_parser(
        "sweep", help="run scenarios x parameter grid across worker processes"
    )
    sweep.add_argument(
        "--scenario", action="append", metavar="NAME",
        help="scenario to include (repeatable; default: all registered scenarios)",
    )
    sweep.add_argument(
        "--grid", action="append", type=_parse_assignment, metavar="KEY=V1,V2,...",
        help="one grid axis as comma-separated values (repeatable)",
    )
    sweep.add_argument("--workers", type=int, default=1, help="process fan-out")
    sweep.add_argument("--output", help="write result rows to this JSON-lines file")
    sweep.add_argument("--base-seed", type=int, default=0)
    sweep.set_defaults(func=_cmd_sweep)

    # `lint` forwards everything verbatim to the repro.lint parser; it is
    # intercepted in main() because argparse.REMAINDER cannot hand leading
    # option tokens (e.g. `lint --strict`) through a subparser.  The stub
    # here keeps the subcommand in --help.
    lint = sub.add_parser(
        "lint",
        add_help=False,
        help="static determinism/parity/units checks (see python -m repro.lint)",
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    tokens = list(sys.argv[1:] if argv is None else argv)
    try:
        if tokens and tokens[0] == "lint":
            # Forward verbatim; argparse.REMAINDER cannot pass leading
            # option tokens (e.g. `lint --strict`) through a subparser.
            from repro.lint.cli import main as lint_main

            return lint_main(tokens[1:])
        parser = build_parser()
        args = parser.parse_args(tokens)
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly
        # instead of tracebacking, but give Python a writable fd so the
        # interpreter's stdout-flush at exit does not complain either.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
