"""Adaptive-versus-static comparison over one scenario.

The paper's claim is comparative: an adaptive fabric must beat the same
hardware left alone.  This module runs a registered scenario three ways on
*identical* flows (same derived seed, same flow ids, same failure plan),
all through the single experiment entrypoint
(:func:`repro.experiments.api.run_experiment`) with a different registered
controller per run:

* ``static``  -- the ``"static"`` controller: fixed shortest-path routing,
  no control;
* ``ecmp``    -- the ``"ecmp"`` controller: per-flow equal-cost multi-path
  hashing, the "software-only" answer to congestion;
* ``adaptive``-- the ``"loop"`` controller: the closed control loop with
  price-based rerouting and the grid-to-torus candidate.

``repro-fabric compare <scenario>`` prints the resulting table; the bundled
benchmark (``benchmarks/bench_adaptive_vs_static.py``) asserts the adaptive
run wins on mean FCT for the hotspot scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.experiments.api import ExperimentSpec, RunRecord, run_experiment
from repro.experiments.scenarios import (
    Scenario,
    controller_config_from_params,
    derive_run_seed,
    get_scenario,
    materialize_run,
    resolve_params,
)

#: The comparison's run labels, in report order.
COMPARISON_LABELS = ("static", "ecmp", "adaptive")

#: Registered controller behind each comparison label.  The adaptive leg
#: is the closed control loop on *both* backends: the loop co-simulates
#: with whichever backend the scenario's ``backend`` parameter selects
#: (``tests/test_backend_fidelity.py`` pins how far the two backends'
#: loop-controlled headline numbers may diverge).
CONTROLLER_BY_LABEL = {"static": "static", "ecmp": "ecmp", "adaptive": "loop"}


def _result_row(label: str, record: RunRecord) -> Dict[str, object]:
    return {
        "label": label,
        "mean_fct": record.mean_fct,
        "p99_fct": record.p99_fct,
        "makespan": record.makespan,
        "straggler_ratio": record.straggler,
        "completion_fraction": record.metrics["completion_fraction"],
        "power_watts": record.power_watts,
        "reconfigurations": record.metrics["reconfigurations"],
    }


def adaptive_vs_static(
    scenario: "Scenario | str",
    overrides: Optional[Mapping[str, object]] = None,
    base_seed: int = 0,
) -> List[Dict[str, object]]:
    """Run *scenario* under static / ECMP / adaptive control, same flows.

    Parameters
    ----------
    scenario:
        Registered scenario (name or instance).  Its ``controller``
        parameter is ignored -- this function pins the controller per run.
    overrides:
        Parameter overrides, as for
        :func:`repro.experiments.scenarios.run_scenario`.
    base_seed:
        Seed the per-run workload seed is derived from.

    Returns one result row per label in :data:`COMPARISON_LABELS`.  Every
    run regenerates the flow list from the same derived seed with the flow
    id counter reset, so all three controllers serve bit-identical
    workloads (and identical failure plans, when the scenario declares
    one).  The ``backend`` parameter selects the simulation backend for
    all three legs; the controller-to-label mapping is the same on both
    backends (see :data:`CONTROLLER_BY_LABEL`).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    merged = dict(overrides or {})
    merged["controller"] = "none"  # resolve/validate once, without a controller
    params = resolve_params(scenario, merged)
    seed = derive_run_seed(base_seed, scenario.name, params)

    backend = str(params["backend"])
    rows: List[Dict[str, object]] = []
    for label in COMPARISON_LABELS:
        fabric, flows, failure_events = materialize_run(scenario, params, seed)
        controller = CONTROLLER_BY_LABEL[label]
        record = run_experiment(
            ExperimentSpec(
                fabric=fabric,
                flows=flows,
                label=label,
                controller=controller,
                controller_config=controller_config_from_params(controller, params),
                failures=tuple(failure_events or ()),
                backend=backend,
                allocator=str(params["allocator"]),
            )
        )
        rows.append(_result_row(label, record))
    return rows
