"""Adaptive-versus-static comparison over one scenario.

The paper's claim is comparative: an adaptive fabric must beat the same
hardware left alone.  This module runs a registered scenario three ways on
*identical* flows (same derived seed, same flow ids, same failure plan):

* ``static``  -- :func:`repro.baselines.static_fabric.run_static_baseline`:
  fixed shortest-path routing, no control;
* ``ecmp``    -- :func:`repro.baselines.ecmp.run_ecmp_baseline`: per-flow
  equal-cost multi-path hashing, the "software-only" answer to congestion;
* ``adaptive``-- :func:`repro.experiments.harness.run_control_loop_experiment`:
  the closed control loop with price-based rerouting and the grid-to-torus
  candidate.

``repro-fabric compare <scenario>`` prints the resulting table; the bundled
benchmark (``benchmarks/bench_adaptive_vs_static.py``) asserts the adaptive
run wins on mean FCT for the hotspot scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.experiments.harness import ExperimentResult, run_control_loop_experiment
from repro.experiments.scenarios import (
    Scenario,
    derive_run_seed,
    get_scenario,
    loop_config_from_params,
    materialize_run,
    resolve_params,
)

#: The comparison's run labels, in report order.
COMPARISON_LABELS = ("static", "ecmp", "adaptive")


def _result_row(label: str, result: ExperimentResult, reconfigurations: int) -> Dict[str, object]:
    return {
        "label": label,
        "mean_fct": result.mean_fct,
        "p99_fct": result.p99_fct,
        "makespan": result.makespan,
        "straggler_ratio": result.straggler,
        "completion_fraction": result.flows.completion_fraction(),
        "power_watts": result.power_watts,
        "reconfigurations": reconfigurations,
    }


def adaptive_vs_static(
    scenario: "Scenario | str",
    overrides: Optional[Mapping[str, object]] = None,
    base_seed: int = 0,
) -> List[Dict[str, object]]:
    """Run *scenario* under static / ECMP / adaptive control, same flows.

    Parameters
    ----------
    scenario:
        Registered scenario (name or instance).  Its ``controller``
        parameter is ignored -- this function pins the controller per run.
    overrides:
        Parameter overrides, as for
        :func:`repro.experiments.scenarios.run_scenario`.
    base_seed:
        Seed the per-run workload seed is derived from.

    Returns one result row per label in :data:`COMPARISON_LABELS`.  Every
    run regenerates the flow list from the same derived seed with the flow
    id counter reset, so all three controllers serve bit-identical
    workloads (and identical failure plans, when the scenario declares
    one).
    """
    # Imported here: the baselines import the experiments harness, so a
    # module-level import would be circular through the package __init__.
    from repro.baselines.ecmp import run_ecmp_baseline
    from repro.baselines.static_fabric import run_static_baseline

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    merged = dict(overrides or {})
    merged["controller"] = "none"  # resolve/validate once, without a controller
    params = resolve_params(scenario, merged)
    seed = derive_run_seed(base_seed, scenario.name, params)
    grid = params["topology"] == "grid"

    rows: List[Dict[str, object]] = []
    for label in COMPARISON_LABELS:
        fabric, flows, failure_events = materialize_run(scenario, params, seed)
        reconfigurations = 0
        if label == "static":
            result = run_static_baseline(
                fabric, flows, label=label, failure_events=failure_events
            )
        elif label == "ecmp":
            result = run_ecmp_baseline(
                fabric.topology, flows, label=label, failure_events=failure_events
            )
        else:
            result, loop = run_control_loop_experiment(
                fabric,
                flows,
                label=label,
                loop_config=loop_config_from_params(params),
                grid_rows=int(params["rows"]) if grid else None,
                grid_columns=int(params["columns"]) if grid else None,
                failure_events=failure_events,
            )
            reconfigurations = len(loop.reconfiguration_times)
        rows.append(_result_row(label, result, reconfigurations))
    return rows
