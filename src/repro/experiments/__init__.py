"""Shared experiment layer used by the benchmarks, examples and the CLI.

The layers, bottom up:

* :mod:`repro.experiments.harness` -- fabric builders, fabric-state
  statistics, and the deprecated legacy runner shims,
* :mod:`repro.experiments.api` -- the single experiment entrypoint:
  :func:`~repro.experiments.api.run_experiment` over a declarative
  :class:`~repro.experiments.api.ExperimentSpec`, returning a typed
  :class:`~repro.experiments.api.RunRecord`,
* :mod:`repro.experiments.scenarios` -- the declarative scenario registry
  (named workload x fabric configurations, with defaults and validation),
* :mod:`repro.experiments.sweep` -- the parallel sweep engine that crosses
  scenarios with parameter grids and persists JSON result rows.

:mod:`repro.experiments.figures` sits on top: the paper's figure rows are
thin queries over sweep results.  :mod:`repro.experiments.comparison` runs
one scenario under static / ECMP / adaptive control on identical flows.
"""

from repro.experiments.api import (
    ExperimentSpec,
    FabricSpec,
    RunRecord,
    run_experiment,
)
from repro.experiments.comparison import COMPARISON_LABELS, adaptive_vs_static
from repro.experiments.harness import (
    ExperimentResult,
    run_adaptive_experiment,
    run_control_loop_experiment,
    run_fluid_experiment,
    build_fabric,
    build_grid_fabric,
    build_torus_fabric,
    fabric_state_row,
)
from repro.experiments.figures import (
    figure1_rows,
    figure2_rows,
    mapreduce_comparison_rows,
)
from repro.experiments.scenarios import (
    Scenario,
    ScenarioError,
    controller_config_from_params,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.experiments.sweep import (
    SweepRun,
    build_runs,
    execute_runs,
    expand_grid,
    filter_rows,
    load_rows,
    run_sweep,
    strip_timing,
    write_rows,
)

__all__ = [
    "ExperimentSpec",
    "FabricSpec",
    "RunRecord",
    "run_experiment",
    "COMPARISON_LABELS",
    "adaptive_vs_static",
    "ExperimentResult",
    "run_adaptive_experiment",
    "run_control_loop_experiment",
    "run_fluid_experiment",
    "build_fabric",
    "build_grid_fabric",
    "build_torus_fabric",
    "fabric_state_row",
    "figure1_rows",
    "figure2_rows",
    "mapreduce_comparison_rows",
    "Scenario",
    "ScenarioError",
    "controller_config_from_params",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "SweepRun",
    "build_runs",
    "execute_runs",
    "expand_grid",
    "filter_rows",
    "load_rows",
    "run_sweep",
    "strip_timing",
    "write_rows",
]
