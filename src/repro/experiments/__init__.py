"""Shared experiment harness used by the benchmarks and the examples."""

from repro.experiments.harness import (
    ExperimentResult,
    run_adaptive_experiment,
    run_fluid_experiment,
    build_grid_fabric,
    build_torus_fabric,
)
from repro.experiments.figures import (
    figure1_rows,
    figure2_rows,
    mapreduce_comparison_rows,
)

__all__ = [
    "ExperimentResult",
    "run_adaptive_experiment",
    "run_fluid_experiment",
    "build_grid_fabric",
    "build_torus_fabric",
    "figure1_rows",
    "figure2_rows",
    "mapreduce_comparison_rows",
]
