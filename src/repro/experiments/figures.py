"""Row generators for the paper's figures.

These functions produce the exact rows/series the benchmarks print and
EXPERIMENTS.md quotes.  Keeping them importable (rather than inline in the
benchmark files) lets the unit tests assert the qualitative claims -- e.g.
"switching dominates propagation at every rack-scale distance" -- without
going through pytest-benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.latency import LatencyModel, media_vs_switching_series
from repro.core.crc import ClosedRingControl, CRCConfig
from repro.experiments.harness import (
    ExperimentResult,
    build_grid_fabric,
    build_torus_fabric,
    run_fluid_experiment,
)
from repro.sim.flow import Flow
from repro.sim.units import GBPS, megabytes
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.mapreduce import MapReduceShuffleWorkload


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
def figure1_rows(
    distances_meters: Sequence[float] = tuple(range(2, 42, 2)),
    packet_size_bytes: float = 1500.0,
    model: Optional[LatencyModel] = None,
) -> List[Dict[str, float]]:
    """Figure 1: media propagation vs cut-through switching latency.

    One row per path distance (a switching element every 2 m), with the two
    curves of the figure plus their ratio.
    """
    return media_vs_switching_series(
        distances_meters, packet_size_bytes=packet_size_bytes, model=model
    )


# --------------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------------- #
def _shuffle_flows(rows: int, columns: int, flow_size_bits: float, seed: int) -> List[Flow]:
    from repro.fabric.topology import TopologyBuilder

    names = [
        TopologyBuilder.grid_node_name(row, column)
        for row in range(rows)
        for column in range(columns)
    ]
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=flow_size_bits, seed=seed)
    return MapReduceShuffleWorkload(spec).generate()


def _hotspot_flows(rows: int, columns: int, flow_size_bits: float, seed: int) -> List[Flow]:
    from repro.fabric.topology import TopologyBuilder

    names = [
        TopologyBuilder.grid_node_name(row, column)
        for row in range(rows)
        for column in range(columns)
    ]
    # Hot pairs across the grid's long diagonal: exactly the traffic that the
    # torus wrap-around links shorten.
    hot_pairs = [
        (TopologyBuilder.grid_node_name(0, 0), TopologyBuilder.grid_node_name(rows - 1, columns - 1)),
        (TopologyBuilder.grid_node_name(0, columns - 1), TopologyBuilder.grid_node_name(rows - 1, 0)),
    ]
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=flow_size_bits, seed=seed)
    return HotspotWorkload(
        spec, num_flows=4 * rows * columns, hot_fraction=0.6, hot_pairs=hot_pairs
    ).generate()


def _fabric_latency_power_row(fabric, packet_size_bytes: float = 1500.0) -> Dict[str, float]:
    """Hop, latency and power statistics of a fabric in its *current* state.

    The latency columns are closed-form per-packet latencies on an idle
    fabric (the quantity the paper's Figure 1/2 narrative is about: how many
    cut-through switching elements sit on the critical path).
    """
    from repro.sim.units import bits_from_bytes

    topology = fabric.topology
    endpoints = topology.endpoints()
    packet_bits = bits_from_bytes(packet_size_bytes)
    latencies: List[float] = []
    hop_counts: List[int] = []
    for i, src in enumerate(endpoints):
        for dst in endpoints[i + 1 :]:
            path = fabric.router.path(src, dst)
            hop_counts.append(len(path) - 1)
            latencies.append(fabric.path_latency(path, packet_bits)["total"])
    report = fabric.power_report()
    return {
        "links": float(len(topology.links())),
        "active_lanes": float(topology.total_active_lanes()),
        "diameter_hops": float(max(hop_counts)),
        "mean_hops": sum(hop_counts) / len(hop_counts),
        "mean_latency": sum(latencies) / len(latencies),
        "max_latency": max(latencies),
        "fabric_power_watts": report.links_watts + report.switches_watts,
    }


def figure2_rows(
    rows: int = 4,
    columns: int = 4,
    flow_size_bits: float = megabytes(4),
    seed: int = 1,
    workload: str = "hotspot",
    control_period: float = 0.0005,
) -> List[Dict[str, object]]:
    """Figure 2: grid @ 2 lanes/link vs CRC-adaptive vs static torus @ 1 lane.

    Three configurations are evaluated over the same workload:

    * ``grid-static``   -- the paper's initial configuration, no CRC,
    * ``adaptive-crc``  -- starts as the grid; the CRC detects congestion and
      reconfigures to the torus at runtime (the paper's Figure 2 scenario),
    * ``torus-static``  -- the target configuration from time zero (what the
      CRC should converge to).

    The columns follow the paper's claims: the torus reached by the CRC cuts
    the number of switching elements on the critical path (diameter and mean
    hops, and therefore per-packet latency) and lights fewer lanes (fabric
    power), while the workload still completes.  The fluid makespan is
    reported for completeness -- a pure bandwidth model does not credit the
    per-hop switching latency the reconfiguration removes, so the grid's
    thicker links keep it competitive on that column.
    """
    if workload == "hotspot":
        flow_factory = _hotspot_flows
    elif workload == "shuffle":
        flow_factory = _shuffle_flows
    else:
        raise ValueError(f"unknown workload {workload!r}")

    rows_out: List[Dict[str, object]] = []

    grid_fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    grid_result = run_fluid_experiment(
        grid_fabric, flow_factory(rows, columns, flow_size_bits, seed), label="grid-static"
    )
    grid_row: Dict[str, object] = {"configuration": "grid-static"}
    grid_row.update(_fabric_latency_power_row(grid_fabric))
    grid_row.update({"makespan": grid_result.makespan, "reconfigurations": 0})
    rows_out.append(grid_row)

    adaptive_fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    crc = ClosedRingControl(
        adaptive_fabric,
        CRCConfig(
            enable_topology_reconfiguration=True,
            grid_rows=rows,
            grid_columns=columns,
            utilisation_threshold=0.5,
            control_period=control_period,
        ),
    )
    adaptive_result = run_fluid_experiment(
        adaptive_fabric,
        flow_factory(rows, columns, flow_size_bits, seed),
        label="adaptive-crc",
        crc=crc,
        control_period=control_period,
    )
    adaptive_row: Dict[str, object] = {"configuration": "adaptive-crc"}
    adaptive_row.update(_fabric_latency_power_row(adaptive_fabric))
    adaptive_row.update(
        {
            "makespan": adaptive_result.makespan,
            "reconfigurations": len(crc.reconfiguration_times),
        }
    )
    rows_out.append(adaptive_row)

    torus_fabric = build_torus_fabric(rows, columns, lanes_per_link=1)
    torus_result = run_fluid_experiment(
        torus_fabric, flow_factory(rows, columns, flow_size_bits, seed), label="torus-static"
    )
    torus_row: Dict[str, object] = {"configuration": "torus-static"}
    torus_row.update(_fabric_latency_power_row(torus_fabric))
    torus_row.update({"makespan": torus_result.makespan, "reconfigurations": 0})
    rows_out.append(torus_row)

    return rows_out


# --------------------------------------------------------------------------- #
# MapReduce comparison (experiment E3)
# --------------------------------------------------------------------------- #
def mapreduce_comparison_rows(
    rows: int = 4,
    columns: int = 8,
    flow_size_bits: float = megabytes(8),
    seed: int = 2,
    skew_factor: float = 2.0,
) -> List[Dict[str, object]]:
    """Shuffle makespan and straggler ratio: static grid vs adaptive fabric.

    The reducer waits for the slowest mapper, so the metric the paper cares
    about is the makespan (and how far the straggler lags the median).
    """
    from repro.fabric.topology import TopologyBuilder

    names = [
        TopologyBuilder.grid_node_name(row, column)
        for row in range(rows)
        for column in range(columns)
    ]
    spec = WorkloadSpec(nodes=names, mean_flow_size_bits=flow_size_bits, seed=seed)
    workload = MapReduceShuffleWorkload(spec, skew_factor=skew_factor)

    static_fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    static_result = run_fluid_experiment(
        static_fabric, workload.generate(), label="grid-static"
    )

    adaptive_fabric = build_grid_fabric(rows, columns, lanes_per_link=2)
    crc = ClosedRingControl(
        adaptive_fabric,
        CRCConfig(
            enable_topology_reconfiguration=True,
            grid_rows=rows,
            grid_columns=columns,
            utilisation_threshold=0.5,
        ),
    )
    adaptive_result = run_fluid_experiment(
        adaptive_fabric,
        MapReduceShuffleWorkload(spec, skew_factor=skew_factor).generate(),
        label="adaptive-crc",
        crc=crc,
    )

    output: List[Dict[str, object]] = []
    for result in (static_result, adaptive_result):
        output.append(
            {
                "configuration": result.label,
                "makespan": result.makespan,
                "mean_fct": result.mean_fct,
                "p99_fct": result.p99_fct,
                "straggler_ratio": result.straggler,
            }
        )
    return output
