"""Row generators for the paper's figures.

These functions produce the exact rows/series the benchmarks print and
EXPERIMENTS.md quotes.  Since the scenario registry landed they are thin
queries over sweep results: each figure expands the configurations it
compares into :class:`~repro.experiments.sweep.SweepRun` units, executes
them through the sweep engine, and selects its columns from the returned
rows.  Keeping them importable (rather than inline in the benchmark files)
lets the unit tests assert the qualitative claims -- e.g. "switching
dominates propagation at every rack-scale distance" -- without going
through pytest-benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.latency import LatencyModel, media_vs_switching_series
from repro.experiments.sweep import SweepRun, execute_runs
from repro.sim.units import megabytes, to_microseconds


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
def figure1_rows(
    distances_meters: Sequence[float] = tuple(range(2, 42, 2)),
    packet_size_bytes: float = 1500.0,
    model: Optional[LatencyModel] = None,
) -> List[Dict[str, float]]:
    """Figure 1: media propagation vs cut-through switching latency.

    One row per path distance (a switching element every 2 m), with the two
    curves of the figure plus their ratio.  Purely analytical -- no sweep.
    """
    return media_vs_switching_series(
        distances_meters, packet_size_bytes=packet_size_bytes, model=model
    )


# --------------------------------------------------------------------------- #
# Sweep-backed figures
# --------------------------------------------------------------------------- #
#: The three fabric configurations Figure 2 compares, as (label, overrides).
#: Exported so the benchmark that reproduces the figure swept over larger
#: racks uses the exact same configurations.
FIGURE2_CONFIGURATIONS = (
    ("grid-static", {"topology": "grid", "lanes_per_link": 2, "controller": "none"}),
    ("adaptive-crc", {"topology": "grid", "lanes_per_link": 2, "controller": "crc"}),
    ("torus-static", {"topology": "torus", "lanes_per_link": 1, "controller": "none"}),
)

#: Columns the fabric-comparison figures project out of a sweep row.
_FABRIC_COLUMNS = (
    "links",
    "active_lanes",
    "diameter_hops",
    "mean_hops",
    "mean_latency",
    "max_latency",
    "fabric_power_watts",
)


def _comparison_rows(
    scenario: str,
    configurations: Sequence[tuple],
    base_overrides: Dict[str, object],
    columns: Sequence[str],
    base_seed: int,
) -> List[Dict[str, object]]:
    """Run one scenario under several labelled fabric configurations and
    project the requested metric columns, one output row per configuration.

    The workload seed ignores fabric-side parameters, so every
    configuration sees the same flows -- the like-for-like comparison the
    figures are about.
    """
    runs = [
        SweepRun(scenario, {**base_overrides, **overrides}, base_seed=base_seed)
        for _, overrides in configurations
    ]
    results = execute_runs(runs, workers=1)
    rows_out: List[Dict[str, object]] = []
    for (label, _), result in zip(configurations, results):
        row: Dict[str, object] = {"configuration": label}
        row.update({column: result["metrics"][column] for column in columns})
        rows_out.append(row)
    return rows_out


def figure2_rows(
    rows: int = 4,
    columns: int = 4,
    flow_size_bits: float = megabytes(4),
    seed: int = 1,
    workload: str = "hotspot",
    control_period: float = 0.0005,
) -> List[Dict[str, object]]:
    """Figure 2: grid @ 2 lanes/link vs CRC-adaptive vs static torus @ 1 lane.

    Three configurations are evaluated over the same workload:

    * ``grid-static``   -- the paper's initial configuration, no CRC,
    * ``adaptive-crc``  -- starts as the grid; the CRC detects congestion and
      reconfigures to the torus at runtime (the paper's Figure 2 scenario),
    * ``torus-static``  -- the target configuration from time zero (what the
      CRC should converge to).

    The columns follow the paper's claims: the torus reached by the CRC cuts
    the number of switching elements on the critical path (diameter and mean
    hops, and therefore per-packet latency) and lights fewer lanes (fabric
    power), while the workload still completes.  The fluid makespan is
    reported for completeness -- a pure bandwidth model does not credit the
    per-hop switching latency the reconfiguration removes, so the grid's
    thicker links keep it competitive on that column.
    """
    scenario_by_workload = {"hotspot": "hotspot-diagonal", "shuffle": "mapreduce-shuffle"}
    if workload not in scenario_by_workload:
        raise ValueError(f"unknown workload {workload!r}")
    base = {
        "rows": rows,
        "columns": columns,
        "mean_flow_mb": flow_size_bits / megabytes(1),
        "control_period_us": to_microseconds(control_period),
    }
    return _comparison_rows(
        scenario_by_workload[workload],
        FIGURE2_CONFIGURATIONS,
        base,
        columns=list(_FABRIC_COLUMNS) + ["makespan", "reconfigurations"],
        base_seed=seed,
    )


# --------------------------------------------------------------------------- #
# MapReduce comparison (experiment E3)
# --------------------------------------------------------------------------- #
def mapreduce_comparison_rows(
    rows: int = 4,
    columns: int = 8,
    flow_size_bits: float = megabytes(8),
    seed: int = 2,
    skew_factor: float = 2.0,
) -> List[Dict[str, object]]:
    """Shuffle makespan and straggler ratio: static grid vs adaptive fabric.

    The reducer waits for the slowest mapper, so the metric the paper cares
    about is the makespan (and how far the straggler lags the median).
    """
    base = {
        "rows": rows,
        "columns": columns,
        "mean_flow_mb": flow_size_bits / megabytes(1),
        "skew_factor": skew_factor,
        "control_period_us": 100.0,
    }
    configurations = [
        ("grid-static", {"controller": "none"}),
        ("adaptive-crc", {"controller": "crc"}),
    ]
    return _comparison_rows(
        "mapreduce-skewed",
        configurations,
        base,
        columns=["makespan", "mean_fct", "p99_fct", "straggler_ratio"],
        base_seed=seed,
    )
