"""The one way to run an experiment: ``run_experiment(ExperimentSpec)``.

Every layer of the repo -- the scenario registry, the parallel sweep
engine, the static/ECMP/adaptive comparison, the baselines package, the
CLI, the benchmarks and the examples -- funnels through this module.  An
:class:`ExperimentSpec` declares *what* to run (fabric, flows, controller
name + configuration, failure plan, stop time); :func:`run_experiment`
walks the fixed controller lifecycle
(:meth:`~repro.core.controllers.Controller.prepare` ->
route flows -> :meth:`~repro.core.controllers.Controller.attach` ->
:meth:`~repro.core.controllers.Controller.run`) and returns a typed,
JSON-serialisable :class:`RunRecord`.

Keeping one path is what makes cross-scheme comparisons fair (identical
harness, identical failure injection, identical metric computation) and is
what lets a new controller registered with
:func:`~repro.core.controllers.register_controller` reach every surface --
scenarios, sweeps, the CLI -- without a bespoke runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.controllers import (
    Controller,
    ControllerSummary,
    create_controller,
)
from repro.experiments.harness import build_fabric
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.failures import FailureEvent, FailureInjector
from repro.fabric.packetsim import PacketBackend
from repro.sim.flow import Flow, FlowSet
from repro.sim.fluid import FluidFlowSimulator, FluidResult
from repro.sim.transport import TransportConfig
from repro.sim.units import GBPS
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.metrics import straggler_ratio

#: JSON-safe scalar types allowed verbatim in provenance dictionaries.
_JSON_SCALARS = (bool, int, float, str, type(None))

#: Valid ``ExperimentSpec.backend`` values: the flow-level fluid model and
#: the packet-level simulator (MTU segmentation + windowed injection +
#: drop-triggered retransmission over per-port FIFO buffers).
BACKENDS = ("fluid", "packet")


def _jsonable(value: object) -> object:
    """A JSON-serialisable stand-in for *value* (repr for rich objects)."""
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return repr(value)


@dataclass(frozen=True)
class FabricSpec:
    """Declarative fabric description, buildable anywhere (e.g. in a sweep
    worker process) and serialisable into a run's provenance."""

    topology: str = "grid"
    rows: int = 3
    columns: int = 3
    pods: int = 4
    groups: int = 4
    routers_per_group: int = 4
    hosts_per_router: int = 2
    lanes_per_link: int = 2
    lane_rate_bps: float = 25 * GBPS
    config: Optional[FabricConfig] = None

    def build(self) -> Fabric:
        """Materialise the fabric this spec describes.

        Every registered family's dimensions are carried along; the family
        named by :attr:`topology` picks the ones it declares (``rows`` /
        ``columns`` for the meshes, ``pods`` for fat-tree, ``groups`` /
        ``routers_per_group`` / ``hosts_per_router`` for dragonfly).
        """
        return build_fabric(
            self.topology,
            self.rows,
            self.columns,
            lanes_per_link=self.lanes_per_link,
            lane_rate_bps=self.lane_rate_bps,
            config=self.config,
            pods=self.pods,
            groups=self.groups,
            routers_per_group=self.routers_per_group,
            hosts_per_router=self.hosts_per_router,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable provenance form."""
        return {
            "topology": self.topology,
            "rows": self.rows,
            "columns": self.columns,
            "pods": self.pods,
            "groups": self.groups,
            "routers_per_group": self.routers_per_group,
            "hosts_per_router": self.hosts_per_router,
            "lanes_per_link": self.lanes_per_link,
            "lane_rate_bps": self.lane_rate_bps,
            "config": _jsonable(self.config) if self.config is not None else None,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything :func:`run_experiment` needs, as data.

    Attributes
    ----------
    fabric:
        The fabric under test: a declarative :class:`FabricSpec` (built
        fresh per run) or a pre-built :class:`~repro.fabric.fabric.Fabric`
        (when the caller wants to inspect it afterwards).
    flows:
        The workload.  Flows are routed on the fabric's router at
        admission time, *after* the controller's ``prepare`` step.
    controller:
        Registered controller name (see
        :func:`~repro.core.controllers.controller_names`).
    controller_config:
        Keyword arguments for the controller's factory.
    failures:
        Failure plan injected into the run by a
        :class:`~repro.fabric.failures.FailureInjector`, identically for
        every controller.
    failure_period:
        Failure-injector sampling period (seconds).
    until:
        Optional absolute stop time (flows may be left unfinished).
    flow_rate_limit_bps:
        Per-flow rate cap; default is the slowest endpoint NIC rate.
        Fluid backend only: the packet backend's injection is inherently
        limited by first-link serialization and the transport window, so
        the cap does not apply there.
    backend:
        Simulation backend: ``"fluid"`` (flow-level max-min rates, the
        default) or ``"packet"`` (whole scenario packetised through
        :class:`~repro.fabric.packetsim.PacketBackend` -- MTU-segmented
        flows, windowed injection, per-port FIFO buffers with tail-drop
        and retransmission).  Both return the same ``RunRecord`` metrics
        schema; the packet backend adds packet-only metrics (drop
        fraction, retransmitted bits, p99 queueing delay).  Every
        controller, including ``"loop"``, runs on both backends; the
        loop co-simulates with whichever backend the spec selects.
    transport:
        Optional :class:`~repro.sim.transport.TransportConfig` for the
        packet backend (MTU, window, retransmit backoff); ignored by the
        fluid backend.
    allocator:
        Fluid rate-allocation engine: ``"incremental"`` (dirty-set max-min
        with a completion heap, the default) or ``"reference"`` (full
        recompute per event, the parity oracle).  Both are bit-identical;
        see :mod:`repro.sim.fluid`.  Fluid backend only (the packet
        backend does not allocate rates).
    engine:
        Packet execution engine: ``"event"`` (one calendar event per
        packet-hop, the parity oracle and the default) or ``"batched"``
        (segment trains advanced port-at-a-time, same-instant injections
        coalesced; see :mod:`repro.sim.packet_batch`).  Both are
        bit-identical -- ``tests/test_packet_parity.py`` pins every
        metric -- so ``"batched"`` is a pure speedup.  ``"sharded"``
        partitions the flows by traffic closure across up to ``shards``
        batched cores (:mod:`repro.sim.packet_shard`), also
        bit-identical for every shard count.  Packet backend only (the
        fluid backend selects its engine via ``allocator``).
    shards:
        Spatial shard count for ``engine="sharded"`` -- an upper bound;
        the coordinator never splits a traffic-closure component.  A
        performance knob only: results are bit-identical for every
        value.  Must be 1 (the default) for the other engines.
    max_events:
        Cumulative event budget for the whole run (fluid events, or packet
        backend engine events); an exhausted budget surfaces as
        ``metrics["truncated"]`` instead of silently reporting a prefix.
    label:
        Free-form tag carried into the record (report tables key on it).
    """

    fabric: Union[Fabric, FabricSpec]
    flows: Sequence[Flow]
    label: str = "run"
    controller: str = "none"
    controller_config: Mapping[str, object] = field(default_factory=dict)
    failures: Sequence[FailureEvent] = ()
    failure_period: float = 1e-4
    until: Optional[float] = None
    flow_rate_limit_bps: Optional[float] = None
    backend: str = "fluid"
    transport: Optional[TransportConfig] = None
    allocator: str = "incremental"
    engine: str = "event"
    shards: int = 1
    max_events: int = 10_000_000

    def provenance(self) -> Dict[str, object]:
        """JSON-serialisable description of this spec (sans flow payload)."""
        if isinstance(self.fabric, FabricSpec):
            fabric_info: object = self.fabric.to_dict()
        else:
            fabric_info = repr(self.fabric)
        return {
            "label": self.label,
            "controller": self.controller,
            "controller_config": _jsonable(dict(self.controller_config)),
            "fabric": fabric_info,
            "num_flows": len(self.flows),
            "num_failure_events": len(self.failures),
            "failure_period": self.failure_period,
            "until": self.until,
            "flow_rate_limit_bps": self.flow_rate_limit_bps,
            "backend": self.backend,
            "transport": _jsonable(self.transport) if self.transport is not None else None,
            "allocator": self.allocator,
            "engine": self.engine,
            "shards": self.shards,
            "max_events": self.max_events,
        }


@dataclass
class RunRecord:
    """Typed result of one :func:`run_experiment` call.

    The serialisable triple (``metrics``, ``controller_summary``,
    ``provenance``) shares its schema with sweep rows; the remaining
    fields are in-process handles for callers that want to dig deeper
    (the fluid result, the flow set, the fabric in its final state, the
    controller instance and its per-tick telemetry).
    """

    label: str
    controller: str
    metrics: Dict[str, object]
    controller_summary: ControllerSummary
    provenance: Dict[str, object]
    fluid: FluidResult = field(repr=False)
    flows: FlowSet = field(repr=False)
    fabric: Fabric = field(repr=False)
    controller_instance: Optional[Controller] = field(default=None, repr=False)
    telemetry: Optional[TelemetryCollector] = field(default=None, repr=False)

    @property
    def makespan(self) -> Optional[float]:
        """Time to complete the whole workload."""
        return self.metrics.get("makespan")  # type: ignore[return-value]

    @property
    def mean_fct(self) -> Optional[float]:
        """Mean flow completion time."""
        return self.metrics.get("mean_fct")  # type: ignore[return-value]

    @property
    def p99_fct(self) -> Optional[float]:
        """99th-percentile flow completion time."""
        return self.metrics.get("p99_fct")  # type: ignore[return-value]

    @property
    def straggler(self) -> Optional[float]:
        """Straggler ratio (max FCT / median FCT)."""
        return self.metrics.get("straggler_ratio")  # type: ignore[return-value]

    @property
    def completion_fraction(self) -> float:
        """Fraction of offered flows that completed."""
        return float(self.metrics.get("completion_fraction", 0.0))

    @property
    def truncated(self) -> bool:
        """Whether the fluid run exhausted its event budget mid-workload."""
        return bool(self.metrics.get("truncated", False))

    @property
    def power_watts(self) -> float:
        """Fabric power in its final state."""
        return float(self.metrics.get("power_watts", 0.0))

    def to_dict(self) -> Dict[str, object]:
        """The record's JSON-serialisable part (one schema with sweep rows)."""
        return {
            "label": self.label,
            "controller": self.controller,
            "metrics": dict(self.metrics),
            "controller_summary": self.controller_summary.to_dict(),
            "provenance": dict(self.provenance),
        }


# --------------------------------------------------------------------------- #
# Fluid-simulation assembly (shared by every controller)
# --------------------------------------------------------------------------- #
def _default_flow_rate_limit(fabric: Fabric) -> Optional[float]:
    """Slowest endpoint NIC rate, the per-flow cap the fluid model applies."""
    endpoints = fabric.topology.endpoints()
    if not endpoints:
        return None
    return min(fabric.topology.node(name).nic_rate_bps for name in endpoints)


def _build_fluid(
    fabric: Fabric,
    flows: Sequence[Flow],
    flow_rate_limit_bps: Optional[float],
    failure_events: Optional[Sequence[FailureEvent]],
    failure_period: float,
    allocator: str = "incremental",
    max_events: int = 10_000_000,
) -> Tuple[FluidFlowSimulator, Optional[FailureInjector]]:
    """Fluid simulator preloaded with the fabric's links, flows and failures."""
    if flow_rate_limit_bps is None:
        flow_rate_limit_bps = _default_flow_rate_limit(fabric)
    simulator = FluidFlowSimulator(
        flow_rate_limit_bps=flow_rate_limit_bps,
        allocator=allocator,
        max_events=max_events,
    )
    for key, capacity in fabric.directed_capacities().items():
        simulator.add_link(key, capacity)
    for flow in flows:
        keys = fabric.route_keys(flow.src, flow.dst, flow_id=flow.flow_id)
        simulator.add_flow(flow, keys)
    injector: Optional[FailureInjector] = None
    if failure_events:
        injector = FailureInjector(fabric, failure_events)
        injector.attach(simulator, period=failure_period)
    return simulator, injector


# --------------------------------------------------------------------------- #
# Packet-backend assembly (same controller/failure surface as the fluid one)
# --------------------------------------------------------------------------- #
def _build_packet(
    fabric: Fabric,
    flows: Sequence[Flow],
    transport: Optional[TransportConfig],
    failure_events: Optional[Sequence[FailureEvent]],
    failure_period: float,
    max_events: int = 10_000_000,
    engine: str = "event",
    shards: int = 1,
) -> Tuple[PacketBackend, Optional[FailureInjector]]:
    """Packet backend preloaded with routed flows and the failure plan."""
    backend = PacketBackend(
        fabric, flows, transport=transport, max_events=max_events,
        engine=engine, shards=shards,
    )
    injector: Optional[FailureInjector] = None
    if failure_events:
        injector = FailureInjector(fabric, failure_events)
        injector.attach(backend, period=failure_period)
    return backend, injector


# --------------------------------------------------------------------------- #
# The entrypoint
# --------------------------------------------------------------------------- #
def run_experiment(spec: ExperimentSpec) -> RunRecord:
    """Run *spec* through the controller lifecycle and record the outcome.

    The steps, in order (the order is part of the determinism contract the
    parity tests pin):

    1. build the fabric (when *spec.fabric* is declarative),
    2. instantiate the named controller and let it ``prepare`` the fabric,
    3. load links, flows (routed on the fabric's router) and the failure
       plan into a fresh simulation backend (fluid or packet, per
       ``spec.backend``),
    4. ``attach`` the controller and let it ``run`` the simulation,
    5. summarise flows, power and the controller into a :class:`RunRecord`.

    Both backends produce the same metrics schema;
    ``tests/test_backend_fidelity.py`` pins how far their headline numbers
    may diverge per scenario.  The packet backend appends packet-only
    metrics (drop fraction, retransmitted bits, queueing percentiles).
    """
    if spec.backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {spec.backend!r}"
        )
    fabric = spec.fabric.build() if isinstance(spec.fabric, FabricSpec) else spec.fabric
    controller = create_controller(spec.controller, spec.controller_config)
    controller.prepare(fabric)
    if spec.backend == "packet":
        simulator: object
        simulator, _ = _build_packet(
            fabric,
            spec.flows,
            spec.transport,
            spec.failures or None,
            spec.failure_period,
            max_events=spec.max_events,
            engine=spec.engine,
            shards=spec.shards,
        )
    else:
        simulator, _ = _build_fluid(
            fabric,
            spec.flows,
            spec.flow_rate_limit_bps,
            spec.failures or None,
            spec.failure_period,
            allocator=spec.allocator,
            max_events=spec.max_events,
        )
    controller.attach(simulator)  # type: ignore[arg-type]
    fluid_result = controller.run(until=spec.until)
    flow_set = FlowSet(spec.flows)
    summary = controller.summary()
    metrics: Dict[str, object] = {
        "backend": spec.backend,
        "num_flows": len(spec.flows),
        "total_bits": flow_set.total_bits(),
        "completion_fraction": flow_set.completion_fraction(),
        "makespan": flow_set.makespan(),
        "mean_fct": flow_set.mean_fct(),
        "p99_fct": flow_set.fct_percentile(99.0),
        "straggler_ratio": straggler_ratio(flow_set),
        "power_watts": fabric.power_report().total_watts,
        "reconfigurations": summary.reconfigurations,
        "flows_rerouted": summary.flows_rerouted,
        "truncated": bool(fluid_result.truncated),
    }
    if spec.backend == "packet":
        metrics.update(simulator.packet_metrics())  # type: ignore[attr-defined]
    return RunRecord(
        label=spec.label,
        controller=spec.controller,
        metrics=metrics,
        controller_summary=summary,
        provenance=spec.provenance(),
        fluid=fluid_result,
        flows=flow_set,
        fabric=fabric,
        controller_instance=controller,
        telemetry=controller.telemetry,
    )
