"""Declarative scenario registry.

Every benchmark and example used to hand-roll the same loop: build a
fabric, generate a workload, run it through the fluid simulator, summarise
the flow metrics.  A :class:`Scenario` captures that loop as *data*: a
named workload factory plus a bag of default parameters (topology shape,
rack dimensions, lanes per link, CRC on/off, flow sizes, ...).  Scenarios
are registered with the :func:`register_scenario` decorator and looked up
by name, which is what lets the sweep engine (:mod:`repro.experiments.sweep`)
cross any scenario with any parameter grid, and lets the CLI enumerate the
whole catalog with ``repro-fabric list-scenarios``.

Determinism contract
--------------------
:func:`run_scenario` derives the workload seed from
``(base_seed, scenario name, workload-affecting parameters)`` via SHA-256,
and resets the global flow-id counter before generating flows.  Two
consequences:

* the same scenario/parameter combination produces bit-identical results
  no matter where or in which order it runs (the property the parallel
  sweep engine relies on), and
* fabric-side parameters (``topology``, ``lanes_per_link``, ``controller``,
  the control knobs) do **not** perturb the seed, so a grid/torus/adaptive
  comparison over one scenario sees the *same* flows -- like-for-like, as
  the paper's Figure 2 requires.

Every run goes through the single experiment entrypoint
(:func:`repro.experiments.api.run_experiment`): the scenario's
``controller`` parameter selects a registered
:class:`~repro.core.controllers.Controller` by name, so any controller --
including third-party ones -- is sweepable with no scenario-side changes.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.control import ControlLoopConfig
from repro.core.controllers import controller_names
from repro.core.crc import CRCConfig
from repro.experiments.api import BACKENDS, ExperimentSpec, run_experiment
from repro.experiments.harness import build_fabric, fabric_state_row
from repro.fabric.failures import FailureEvent, FailureKind
from repro.fabric.topologies import TopologyError, get_topology
from repro.fabric.topology import TopologyBuilder
from repro.sim.flow import Flow, reset_flow_ids
from repro.fabric.packetsim import ENGINES as PACKET_ENGINES
from repro.sim.fluid import ALLOCATORS as FLUID_ALLOCATORS
from repro.sim.units import GBPS, megabytes, microseconds
from repro.workloads.base import WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.incast import IncastWorkload
from repro.workloads.mapreduce import MapReduceShuffleWorkload
from repro.workloads.permutation import PermutationWorkload
from repro.workloads.storage import DisaggregatedStorageWorkload
from repro.workloads.trace_replay import TraceRecordSpec, TraceReplayWorkload
from repro.workloads.uniform import UniformRandomWorkload

#: ``(spec, params) -> flows``: how a scenario turns resolved parameters
#: into the flow list the simulator runs.
FlowFactory = Callable[[WorkloadSpec, Mapping[str, object]], List[Flow]]

#: ``(spec, params) -> failure events``: how a dynamic scenario declares the
#: failures injected into its run (applied identically to every controller
#: so comparisons stay like-for-like).
FailureFactory = Callable[[WorkloadSpec, Mapping[str, object]], List[FailureEvent]]


class ScenarioError(ValueError):
    """Raised for unknown scenarios, duplicate names or bad parameters."""


#: Parameters shared by every scenario.  All of them are sweepable.
COMMON_DEFAULTS: Dict[str, object] = {
    "topology": "grid",          # any registered topology family name
    "rows": 3,                   # grid/torus dimensions
    "columns": 3,
    "pods": 4,                   # fat-tree dimension
    "groups": 4,                 # dragonfly dimensions
    "routers_per_group": 4,
    "hosts_per_router": 2,
    "lanes_per_link": 2,
    "crc": False,                # DEPRECATED spelling of controller="crc"
    "controller": "none",        # any registered controller name
    "backend": "fluid",          # simulation backend ("fluid"|"packet")
    "allocator": "incremental",  # fluid rate allocator ("incremental"|"reference")
    "engine": "event",           # packet engine ("event"|"batched"|"sharded")
    "shards": 1,                 # spatial shard count (engine="sharded" only)
    "utilisation_threshold": 0.5,
    "control_period_us": 500.0,
    "mean_flow_mb": 2.0,
}

#: Fabric-side keys: they change how the fabric is built or controlled but
#: must not change which flows the workload generates (see module docstring).
#: The per-family dimension keys (``pods``, ``groups``, ...) are fabric-side
#: too: the workload follows the fabric's endpoint list, not the seed, so a
#: family's dimensions stay seed-neutral the way ``topology`` itself is.
FABRIC_PARAM_KEYS = frozenset(
    {
        "topology",
        "pods",
        "groups",
        "routers_per_group",
        "hosts_per_router",
        "lanes_per_link",
        "crc",
        "controller",
        "backend",
        "allocator",
        "engine",
        "shards",
        "utilisation_threshold",
        "control_period_us",
    }
)

#: Workload-generator classes by their ``name`` attribute; ``list-scenarios``
#: and the docs pull the one-line pattern description from their docstrings.
WORKLOAD_CLASSES: Dict[str, type] = {
    cls.name: cls
    for cls in (
        UniformRandomWorkload,
        PermutationWorkload,
        HotspotWorkload,
        IncastWorkload,
        MapReduceShuffleWorkload,
        DisaggregatedStorageWorkload,
        TraceReplayWorkload,
    )
}


@dataclass(frozen=True)
class Scenario:
    """One named, runnable experiment configuration.

    Attributes
    ----------
    name:
        Registry key (``repro-fabric run <name>``).
    description:
        One line for the catalog.
    workload:
        ``name`` attribute of the :class:`TrafficGenerator` it exercises.
    flows:
        Factory turning ``(spec, params)`` into the flow list.
    defaults:
        Scenario-specific parameter defaults, merged over
        :data:`COMMON_DEFAULTS` (and overridable per run or per sweep axis).
    """

    name: str
    description: str
    workload: str
    flows: FlowFactory = field(repr=False)
    defaults: Mapping[str, object] = field(default_factory=dict)
    #: Optional failure-plan factory for dynamic scenarios; the events are
    #: injected into every run of the scenario regardless of controller.
    failures: Optional[FailureFactory] = field(default=None, repr=False)

    def parameters(self) -> Dict[str, object]:
        """The full default parameter set (common defaults + scenario's own)."""
        merged = dict(COMMON_DEFAULTS)
        merged.update(self.defaults)
        return merged

    def workload_summary(self) -> str:
        """First docstring line of the workload generator class."""
        cls = WORKLOAD_CLASSES.get(self.workload)
        doc = (cls.__doc__ or "") if cls is not None else ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(
    name: str,
    description: str,
    workload: str,
    failures: Optional[FailureFactory] = None,
    **defaults: object,
) -> Callable[[FlowFactory], FlowFactory]:
    """Decorator registering a flow factory as the scenario *name*.

    ``defaults`` become the scenario's extra parameters; any of them (and
    any common parameter) can be overridden per run or swept over a grid.
    *failures* optionally declares the scenario's failure plan (a callable
    from ``(spec, params)`` to :class:`~repro.fabric.failures.FailureEvent`
    lists); the events are injected into every run of the scenario so
    static/adaptive comparisons feel identical failures.
    """

    def decorate(factory: FlowFactory) -> FlowFactory:
        if name in _REGISTRY:
            raise ScenarioError(f"scenario {name!r} is already registered")
        if workload not in WORKLOAD_CLASSES:
            raise ScenarioError(
                f"scenario {name!r} references unknown workload {workload!r}"
            )
        _REGISTRY[name] = Scenario(
            name=name,
            description=description,
            workload=workload,
            flows=factory,
            defaults=dict(defaults),
            failures=failures,
        )
        return factory

    return decorate


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ScenarioError(f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, in registration order."""
    return list(_REGISTRY.values())


# --------------------------------------------------------------------------- #
# Parameter resolution and seeding
# --------------------------------------------------------------------------- #
def resolve_params(
    scenario: Scenario, overrides: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """Merge common defaults, scenario defaults and per-run overrides.

    Unknown override keys are rejected (they are almost always sweep-grid
    typos), as are combinations the runner cannot honour -- the CRC's
    grid-to-torus reconfiguration only makes sense starting from a grid.
    """
    params = scenario.parameters()
    overrides = dict(overrides or {})
    unknown = set(overrides) - set(params)
    if unknown:
        raise ScenarioError(
            f"unknown parameter(s) for scenario {scenario.name!r}: "
            f"{sorted(unknown)} (known: {sorted(params)})"
        )
    defaults = scenario.parameters()
    params.update(overrides)
    try:
        family = get_topology(str(params["topology"]))
    except TopologyError as error:
        raise ScenarioError(str(error)) from None
    # Coerce every value to the type its default declares.  This both gives
    # clean errors for junk input and canonicalises numeric types: the seed
    # is derived from the JSON of these parameters, so `skew_factor=2`
    # (int, e.g. from the CLI) must resolve identically to the default 2.0.
    for key, default in defaults.items():
        value = params[key]
        if isinstance(default, bool):
            if not isinstance(value, bool):
                raise ScenarioError(f"{key} must be true or false, got {value!r}")
        elif isinstance(default, int):
            try:
                params[key] = int(value)
            except (TypeError, ValueError):
                raise ScenarioError(f"{key} must be an integer, got {value!r}") from None
        elif isinstance(default, float):
            try:
                params[key] = float(value)
            except (TypeError, ValueError):
                raise ScenarioError(f"{key} must be a number, got {value!r}") from None
    if params["crc"]:
        # One-release deprecation shim for the legacy spelling; it folds
        # into controller="crc" before any controller validation runs.
        warnings.warn(
            "scenario parameter crc=True is deprecated; use controller='crc'",
            DeprecationWarning,
            stacklevel=2,
        )
        if params["controller"] not in ("none", "crc"):
            raise ScenarioError("crc=True conflicts with controller="
                                f"{params['controller']!r}; pick one")
        params["controller"] = "crc"
    if params["backend"] not in BACKENDS:
        raise ScenarioError(
            f"backend must be one of {sorted(BACKENDS)}, got {params['backend']!r}"
        )
    if params["allocator"] not in FLUID_ALLOCATORS:
        raise ScenarioError(
            f"allocator must be one of {sorted(FLUID_ALLOCATORS)}, "
            f"got {params['allocator']!r}"
        )
    if params["engine"] not in PACKET_ENGINES:
        raise ScenarioError(
            f"engine must be one of {sorted(PACKET_ENGINES)}, "
            f"got {params['engine']!r}"
        )
    if int(params["shards"]) < 1:
        raise ScenarioError(f"shards must be >= 1, got {params['shards']!r}")
    if int(params["shards"]) > 1 and params["engine"] != "sharded":
        raise ScenarioError(
            f"shards={params['shards']!r} requires engine='sharded', "
            f"got engine={params['engine']!r}"
        )
    if params["controller"] not in controller_names():
        raise ScenarioError(
            f"controller must be one of {sorted(controller_names())}, "
            f"got {params['controller']!r}"
        )
    if params["controller"] == "crc" and params["topology"] != "grid":
        raise ScenarioError(
            "controller='crc' drives the grid-to-torus reconfiguration "
            "and requires topology='grid'"
        )
    if int(params["rows"]) < 2 or int(params["columns"]) < 2:
        raise ScenarioError("rows and columns must both be >= 2")
    try:
        family.dimensions(params)
    except TopologyError as error:
        raise ScenarioError(str(error)) from None
    return params


def derive_run_seed(
    base_seed: int, scenario_name: str, params: Mapping[str, object]
) -> int:
    """Deterministic per-run seed from the run's *workload-affecting* config.

    Hashing ``(base_seed, scenario, params - fabric keys)`` keeps the seed
    independent of execution order and worker count, while fabric-side
    parameters leave the workload untouched so topology comparisons run the
    same flows.
    """
    workload_params = {
        key: value for key, value in params.items() if key not in FABRIC_PARAM_KEYS
    }
    canonical = json.dumps(workload_params, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(
        f"{int(base_seed)}:{scenario_name}:{canonical}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


# --------------------------------------------------------------------------- #
# Running one scenario
# --------------------------------------------------------------------------- #
def materialize_run(
    scenario: Scenario, params: Mapping[str, object], seed: int
) -> tuple:
    """Build the fabric, flow list and failure plan for one resolved run.

    This is the single place a (scenario, params, seed) triple turns into
    concrete simulation inputs; :func:`run_scenario` and the
    static-vs-adaptive comparison both call it, so they are guaranteed to
    serve bit-identical workloads.  The global flow-id counter is reset
    first: flow ids feed multipath route selection, so a run's routing is a
    function of its config alone, not of what ran before it.
    """
    reset_flow_ids()
    fabric = build_fabric(
        str(params["topology"]),
        int(params["rows"]),
        int(params["columns"]),
        lanes_per_link=int(params["lanes_per_link"]),
        pods=int(params["pods"]),
        groups=int(params["groups"]),
        routers_per_group=int(params["routers_per_group"]),
        hosts_per_router=int(params["hosts_per_router"]),
    )
    spec = WorkloadSpec(
        nodes=fabric.topology.endpoints(),
        mean_flow_size_bits=megabytes(float(params["mean_flow_mb"])),
        seed=seed,
        tag=scenario.name,
    )
    flows = scenario.flows(spec, params)
    failure_events = (
        scenario.failures(spec, params) if scenario.failures is not None else None
    )
    return fabric, flows, failure_events


def loop_config_from_params(params: Mapping[str, object]) -> ControlLoopConfig:
    """The control-loop configuration a resolved parameter set asks for."""
    return ControlLoopConfig(
        interval=microseconds(float(params["control_period_us"])),
        utilisation_threshold=float(params["utilisation_threshold"]),
    )


def controller_config_from_params(
    controller: str, params: Mapping[str, object]
) -> Dict[str, object]:
    """The ``controller_config`` a resolved parameter set asks for.

    Only the built-in adaptive controllers consume scenario parameters;
    every other registered controller runs on its factory defaults (a
    third-party controller that wants scenario knobs can resolve them in
    its own factory).
    """
    if controller == "crc":
        return {
            "config": CRCConfig(
                enable_topology_reconfiguration=True,
                grid_rows=int(params["rows"]),
                grid_columns=int(params["columns"]),
                utilisation_threshold=float(params["utilisation_threshold"]),
                control_period=microseconds(float(params["control_period_us"])),
            )
        }
    if controller == "loop":
        # The loop resolves its standing candidates from the per-family
        # registry (repro.core.candidates); every family's dimensions ride
        # along and the family picks the ones it declares.
        return {
            "config": loop_config_from_params(params),
            "topology": str(params["topology"]),
            "topology_params": {
                key: int(params[key])
                for key in (
                    "rows",
                    "columns",
                    "pods",
                    "groups",
                    "routers_per_group",
                    "hosts_per_router",
                )
            },
        }
    return {}


def run_scenario(
    scenario: "Scenario | str",
    overrides: Optional[Mapping[str, object]] = None,
    base_seed: int = 0,
) -> Dict[str, object]:
    """Run one scenario once and return a JSON-serialisable result row.

    The row carries full config provenance (resolved parameters and the
    derived seed) next to the metrics, so a sweep output file is
    self-describing; see ``docs/scenarios.md`` for the schema.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    params = resolve_params(scenario, overrides)
    seed = derive_run_seed(base_seed, scenario.name, params)
    fabric, flows, failure_events = materialize_run(scenario, params, seed)

    controller = str(params["controller"])
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=scenario.name,
            controller=controller,
            controller_config=controller_config_from_params(controller, params),
            failures=tuple(failure_events or ()),
            backend=str(params["backend"]),
            allocator=str(params["allocator"]),
            engine=str(params["engine"]),
            shards=int(params["shards"]),
        )
    )

    metrics: Dict[str, object] = dict(record.metrics)
    metrics.update(fabric_state_row(fabric))
    return {
        "scenario": scenario.name,
        "workload": scenario.workload,
        "seed": seed,
        "params": params,
        "metrics": metrics,
    }


# --------------------------------------------------------------------------- #
# The catalog
# --------------------------------------------------------------------------- #
def _grid_corner_pairs(params: Mapping[str, object]) -> List[tuple]:
    """Hot pairs across the rack's long diagonals -- exactly the traffic the
    torus wrap-around links shorten."""
    rows, columns = int(params["rows"]), int(params["columns"])
    name = TopologyBuilder.grid_node_name
    return [
        (name(0, 0), name(rows - 1, columns - 1)),
        (name(0, columns - 1), name(rows - 1, 0)),
    ]


@register_scenario(
    "uniform-burst",
    "Closed burst of uniform random flows, all released at t=0",
    workload="uniform-random",
    num_flows=36,
)
def _uniform_burst(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return UniformRandomWorkload(spec, num_flows=int(params["num_flows"])).generate()


@register_scenario(
    "uniform-poisson",
    "Open-loop uniform random traffic with Poisson arrivals at a target load",
    workload="uniform-random",
    num_flows=36,
    offered_load_gbps=40.0,
)
def _uniform_poisson(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return UniformRandomWorkload(
        spec,
        num_flows=int(params["num_flows"]),
        offered_load_bps=float(params["offered_load_gbps"]) * GBPS,
    ).generate()


@register_scenario(
    "permutation",
    "Random derangement, one fixed-size flow per source node",
    workload="permutation",
)
def _permutation(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return PermutationWorkload(spec).generate()


@register_scenario(
    "permutation-heavy",
    "Permutation traffic with heavy-tailed (Pareto) flow sizes",
    workload="permutation",
    pareto_shape=1.3,
)
def _permutation_heavy(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return PermutationWorkload(
        spec, heavy_tailed=True, pareto_shape=float(params["pareto_shape"])
    ).generate()


@register_scenario(
    "hotspot-diagonal",
    "Hot pairs across the grid's long diagonals over uniform background "
    "(the Figure 2 congestion pattern)",
    workload="hotspot",
    num_flows=0,  # 0 = auto: 4 flows per node
    hot_fraction=0.6,
)
def _hotspot_diagonal(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    num_flows = int(params["num_flows"])
    if num_flows <= 0:
        num_flows = 4 * int(params["rows"]) * int(params["columns"])
    return HotspotWorkload(
        spec,
        num_flows=num_flows,
        hot_fraction=float(params["hot_fraction"]),
        hot_pairs=_grid_corner_pairs(params),
    ).generate()


@register_scenario(
    "hotspot-random",
    "Randomly drawn hot pairs concentrating most of the offered traffic",
    workload="hotspot",
    num_flows=36,
    hot_fraction=0.7,
    num_hot_pairs=2,
)
def _hotspot_random(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return HotspotWorkload(
        spec,
        num_flows=int(params["num_flows"]),
        hot_fraction=float(params["hot_fraction"]),
        num_hot_pairs=int(params["num_hot_pairs"]),
    ).generate()


@register_scenario(
    "incast",
    "All nodes transmit the same-sized block to one receiver simultaneously",
    workload="incast",
)
def _incast(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return IncastWorkload(spec).generate()


@register_scenario(
    "incast-staggered",
    "Incast with a fixed inter-sender start offset (partially desynchronised)",
    workload="incast",
    stagger_us=50.0,
)
def _incast_staggered(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return IncastWorkload(
        spec, stagger=microseconds(float(params["stagger_us"]))
    ).generate()


@register_scenario(
    "mapreduce-shuffle",
    "Balanced all-to-all shuffle, first half of the rack maps, second half "
    "reduces (the paper's motivating example)",
    workload="mapreduce-shuffle",
    size_jitter=0.2,
)
def _mapreduce_shuffle(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return MapReduceShuffleWorkload(
        spec, size_jitter=float(params["size_jitter"])
    ).generate()


@register_scenario(
    "mapreduce-skewed",
    "Shuffle with partitioning skew: the last reducer receives a multiple "
    "of everyone else's data",
    workload="mapreduce-shuffle",
    size_jitter=0.2,
    skew_factor=2.0,
)
def _mapreduce_skewed(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return MapReduceShuffleWorkload(
        spec,
        size_jitter=float(params["size_jitter"]),
        skew_factor=float(params["skew_factor"]),
    ).generate()


@register_scenario(
    "storage-read-heavy",
    "Disaggregated storage, 90% reads: compute sleds pulling blocks off NVMe sleds",
    workload="disaggregated-storage",
    num_requests=60,
    read_fraction=0.9,
    requests_per_second=20000.0,
)
def _storage_read_heavy(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return DisaggregatedStorageWorkload(
        spec,
        num_requests=int(params["num_requests"]),
        read_fraction=float(params["read_fraction"]),
        requests_per_second=float(params["requests_per_second"]),
    ).generate()


@register_scenario(
    "storage-write-heavy",
    "Disaggregated storage, 80% writes: compute sleds flushing to NVMe sleds",
    workload="disaggregated-storage",
    num_requests=60,
    read_fraction=0.2,
    requests_per_second=20000.0,
)
def _storage_write_heavy(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return DisaggregatedStorageWorkload(
        spec,
        num_requests=int(params["num_requests"]),
        read_fraction=float(params["read_fraction"]),
        requests_per_second=float(params["requests_per_second"]),
    ).generate()


@register_scenario(
    "trace-ring",
    "Deterministic replayed trace: every node sends one block to its ring "
    "successor at staggered start times",
    workload="trace-replay",
    stagger_us=100.0,
)
def _trace_ring(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    nodes = list(spec.nodes)
    interval = microseconds(float(params["stagger_us"]))
    records = [
        TraceRecordSpec(
            src=nodes[index],
            dst=nodes[(index + 1) % len(nodes)],
            size_bits=spec.mean_flow_size_bits,
            start_time=index * interval,
        )
        for index in range(len(nodes))
    ]
    return TraceReplayWorkload(spec, records).generate()


# --------------------------------------------------------------------------- #
# Dynamic scenarios (driven by the control loop; see docs/control-loop.md)
# --------------------------------------------------------------------------- #
@register_scenario(
    "hotspot_migration",
    "Hotspot that migrates mid-run: one grid diagonal goes hot, then the "
    "other, over uniform background (the control loop must keep up)",
    workload="hotspot",
    controller="loop",
    num_flows=0,  # 0 = auto: 2 flows per node per phase
    hot_fraction=0.6,
    phase_gap_us=800.0,
)
def _hotspot_migration(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    num_flows = int(params["num_flows"])
    if num_flows <= 0:
        num_flows = 2 * int(params["rows"]) * int(params["columns"])
    gap = microseconds(float(params["phase_gap_us"]))
    pairs = _grid_corner_pairs(params)
    first = HotspotWorkload(
        spec,
        num_flows=num_flows,
        hot_fraction=float(params["hot_fraction"]),
        hot_pairs=[pairs[0]],
    ).generate()
    second = HotspotWorkload(
        replace(spec, seed=spec.seed + 1, start_time=gap),
        num_flows=num_flows,
        hot_fraction=float(params["hot_fraction"]),
        hot_pairs=[pairs[1]],
    ).generate()
    return sorted(first + second, key=lambda flow: (flow.start_time, flow.flow_id))


@register_scenario(
    "load_shift_uniform_to_permutation",
    "Uniform random burst that shifts into a permutation pattern mid-run: "
    "diffuse load first, adversarial point-to-point load second",
    workload="uniform-random",
    controller="loop",
    num_flows=24,
    shift_us=600.0,
)
def _load_shift(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    first = UniformRandomWorkload(spec, num_flows=int(params["num_flows"])).generate()
    second = PermutationWorkload(
        replace(spec, seed=spec.seed + 1, start_time=microseconds(float(params["shift_us"])))
    ).generate()
    return sorted(first + second, key=lambda flow: (flow.start_time, flow.flow_id))


def _central_link(params: Mapping[str, object]) -> tuple:
    """The most central horizontal grid link (exists in grid and torus)."""
    rows, columns = int(params["rows"]), int(params["columns"])
    name = TopologyBuilder.grid_node_name
    row = rows // 2
    column = (columns - 1) // 2
    return (name(row, column), name(row, column + 1))


def _failure_recovery_events(
    spec: WorkloadSpec, params: Mapping[str, object]
) -> List[FailureEvent]:
    """Fail the central link mid-run; bring it back later."""
    endpoints = _central_link(params)
    return [
        FailureEvent(
            time=microseconds(float(params["fail_us"])),
            kind=FailureKind.LINK_FAILURE,
            endpoints=endpoints,
        ),
        FailureEvent(
            time=microseconds(float(params["recover_us"])),
            kind=FailureKind.LINK_RECOVERY,
            endpoints=endpoints,
        ),
    ]


@register_scenario(
    "failure_recovery",
    "Uniform burst with a mid-run central-link failure and later recovery: "
    "the control loop steers flows around the outage and back",
    workload="uniform-random",
    failures=_failure_recovery_events,
    controller="loop",
    num_flows=32,
    fail_us=300.0,
    recover_us=1500.0,
)
def _failure_recovery(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return UniformRandomWorkload(spec, num_flows=int(params["num_flows"])).generate()


# --------------------------------------------------------------------------- #
# Rack-scale scenarios (the incremental allocator's home turf; see
# benchmarks/bench_fluid_scale.py for the speedup guard)
# --------------------------------------------------------------------------- #
@register_scenario(
    "rack_scale_uniform",
    "Rack-scale load test: a 16x16 grid (256 endpoints) under 20k+ uniform "
    "random flows with Poisson arrivals at a target offered load",
    workload="uniform-random",
    rows=16,
    columns=16,
    mean_flow_mb=0.5,
    num_flows=20480,
    offered_load_gbps=2000.0,
)
def _rack_scale_uniform(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return UniformRandomWorkload(
        spec,
        num_flows=int(params["num_flows"]),
        offered_load_bps=float(params["offered_load_gbps"]) * GBPS,
    ).generate()


@register_scenario(
    "trace_replay_dense",
    "Dense deterministic trace replay at rack scale: every endpoint streams "
    "one block to each of its `waves` ring successors, wave starts staggered",
    workload="trace-replay",
    rows=16,
    columns=16,
    mean_flow_mb=0.5,
    waves=40,
    stagger_us=50.0,
)
def _trace_replay_dense(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    nodes = list(spec.nodes)
    waves = int(params["waves"])
    if waves < 1:
        raise ScenarioError(f"waves must be >= 1, got {waves}")
    interval = microseconds(float(params["stagger_us"]))
    records = []
    for wave in range(1, waves + 1):
        offset = max(wave % len(nodes), 1)  # never send to yourself
        for index, src in enumerate(nodes):
            records.append(
                TraceRecordSpec(
                    src=src,
                    dst=nodes[(index + offset) % len(nodes)],
                    size_bits=spec.mean_flow_size_bits,
                    start_time=(wave - 1) * interval,
                )
            )
    return TraceReplayWorkload(spec, records).generate()


# --------------------------------------------------------------------------- #
# Datacenter-scale topology-family scenarios (fat-tree / dragonfly at 1k+
# endpoints; see docs/topologies.md and tests/test_backend_fidelity.py for
# the small-instance fluid-vs-packet tolerances)
# --------------------------------------------------------------------------- #
@register_scenario(
    "fattree_uniform",
    "Datacenter-scale uniform random burst on a 16-pod fat-tree (1024 hosts, "
    "edge/aggregation/core Clos)",
    workload="uniform-random",
    topology="fat-tree",
    pods=16,
    mean_flow_mb=0.5,
    num_flows=2048,
)
def _fattree_uniform(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return UniformRandomWorkload(spec, num_flows=int(params["num_flows"])).generate()


@register_scenario(
    "fattree_incast",
    "Wide staggered incast on a 16-pod fat-tree: `fan_in` hosts across pods "
    "converge on one receiver's edge uplink",
    workload="incast",
    topology="fat-tree",
    pods=16,
    mean_flow_mb=0.5,
    fan_in=256,
    stagger_us=5.0,
)
def _fattree_incast(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    nodes = list(spec.nodes)
    fan_in = int(params["fan_in"])
    if not 1 <= fan_in < len(nodes):
        raise ScenarioError(
            f"fan_in must be in [1, {len(nodes) - 1}] for this fabric, got {fan_in}"
        )
    return IncastWorkload(
        spec,
        receiver=nodes[-1],
        senders=nodes[:fan_in],
        stagger=microseconds(float(params["stagger_us"])),
    ).generate()


@register_scenario(
    "dragonfly_permutation",
    "Adversarial permutation on a 16x8x8 dragonfly (1024 hosts): derangement "
    "traffic stressing the one-link-per-group-pair global plane",
    workload="permutation",
    topology="dragonfly",
    groups=16,
    routers_per_group=8,
    hosts_per_router=8,
    mean_flow_mb=0.5,
)
def _dragonfly_permutation(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return PermutationWorkload(spec).generate()


@register_scenario(
    "dragonfly_hotspot",
    "Hot random host pairs over uniform background on a 16x8x8 dragonfly, "
    "with the control loop free to re-home global links",
    workload="hotspot",
    topology="dragonfly",
    controller="loop",
    groups=16,
    routers_per_group=8,
    hosts_per_router=8,
    mean_flow_mb=0.5,
    num_flows=2048,
    hot_fraction=0.7,
    num_hot_pairs=8,
)
def _dragonfly_hotspot(spec: WorkloadSpec, params: Mapping[str, object]) -> List[Flow]:
    return HotspotWorkload(
        spec,
        num_flows=int(params["num_flows"]),
        hot_fraction=float(params["hot_fraction"]),
        num_hot_pairs=int(params["num_hot_pairs"]),
    ).generate()
