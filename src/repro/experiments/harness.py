"""End-to-end experiment harness.

Every benchmark and example follows the same shape: build a fabric, generate
a workload, run it through the fluid simulator (optionally with a Closed
Ring Control attached), and summarise the flow completion metrics.  The
harness keeps that shape in one place so the benchmarks stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.control import ControlLoop, ControlLoopConfig, GridToTorusCandidate, PlanCandidate
from repro.core.crc import ClosedRingControl, CRCConfig
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.failures import FailureEvent, FailureInjector
from repro.fabric.topology import Topology, TopologyBuilder
from repro.sim.flow import Flow, FlowSet
from repro.sim.fluid import FluidFlowSimulator, FluidResult
from repro.sim.units import GBPS
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.metrics import straggler_ratio


@dataclass
class ExperimentResult:
    """Everything a benchmark needs to report one experiment run."""

    label: str
    fluid: FluidResult
    flows: FlowSet
    crc_summary: Dict[str, float] = field(default_factory=dict)
    power_watts: float = 0.0

    @property
    def makespan(self) -> Optional[float]:
        """Time to complete the whole workload."""
        return self.flows.makespan()

    @property
    def mean_fct(self) -> Optional[float]:
        """Mean flow completion time."""
        return self.flows.mean_fct()

    @property
    def p99_fct(self) -> Optional[float]:
        """99th-percentile flow completion time."""
        return self.flows.fct_percentile(99.0)

    @property
    def straggler(self) -> Optional[float]:
        """Straggler ratio (max FCT / median FCT)."""
        return straggler_ratio(self.flows)

    def summary_row(self) -> List[object]:
        """A standard table row: label, makespan, mean, p99, straggler, power."""
        return [
            self.label,
            self.makespan,
            self.mean_fct,
            self.p99_fct,
            self.straggler,
            self.power_watts,
        ]


# --------------------------------------------------------------------------- #
# Fabric construction helpers
# --------------------------------------------------------------------------- #
def build_grid_fabric(
    rows: int,
    columns: int,
    lanes_per_link: int = 2,
    lane_rate_bps: float = 25 * GBPS,
    config: Optional[FabricConfig] = None,
) -> Fabric:
    """The paper's initial configuration: a grid at ``lanes_per_link`` lanes."""
    builder = TopologyBuilder(lanes_per_link=lanes_per_link, lane_rate_bps=lane_rate_bps)
    topology = builder.grid(rows, columns)
    return Fabric(topology, config if config is not None else FabricConfig())


def build_torus_fabric(
    rows: int,
    columns: int,
    lanes_per_link: int = 1,
    lane_rate_bps: float = 25 * GBPS,
    config: Optional[FabricConfig] = None,
) -> Fabric:
    """The paper's reconfigured target: a torus at ``lanes_per_link`` lanes."""
    builder = TopologyBuilder(lanes_per_link=lanes_per_link, lane_rate_bps=lane_rate_bps)
    topology = builder.torus(rows, columns)
    return Fabric(topology, config if config is not None else FabricConfig())


def build_fabric(
    topology: str,
    rows: int,
    columns: int,
    lanes_per_link: int = 2,
    lane_rate_bps: float = 25 * GBPS,
    config: Optional[FabricConfig] = None,
) -> Fabric:
    """Build a fabric by topology name (``"grid"`` or ``"torus"``).

    The scenario registry stores the topology as data, so it needs a single
    dispatch point rather than a function per shape.
    """
    if topology == "grid":
        return build_grid_fabric(
            rows, columns, lanes_per_link=lanes_per_link,
            lane_rate_bps=lane_rate_bps, config=config,
        )
    if topology == "torus":
        return build_torus_fabric(
            rows, columns, lanes_per_link=lanes_per_link,
            lane_rate_bps=lane_rate_bps, config=config,
        )
    raise ValueError(f"unknown topology {topology!r} (expected 'grid' or 'torus')")


def fabric_state_row(fabric: Fabric, packet_size_bytes: float = 1500.0) -> Dict[str, float]:
    """Hop, latency and power statistics of a fabric in its *current* state.

    The latency columns are closed-form per-packet latencies on an idle
    fabric (the quantity the paper's Figure 1/2 narrative is about: how many
    cut-through switching elements sit on the critical path).
    """
    from repro.sim.units import bits_from_bytes

    topology = fabric.topology
    endpoints = topology.endpoints()
    packet_bits = bits_from_bytes(packet_size_bytes)
    latencies: List[float] = []
    hop_counts: List[int] = []
    for i, src in enumerate(endpoints):
        for dst in endpoints[i + 1 :]:
            path = fabric.router.path(src, dst)
            hop_counts.append(len(path) - 1)
            latencies.append(fabric.path_latency(path, packet_bits)["total"])
    report = fabric.power_report()
    return {
        "links": float(len(topology.links())),
        "active_lanes": float(topology.total_active_lanes()),
        "diameter_hops": float(max(hop_counts)),
        "mean_hops": sum(hop_counts) / len(hop_counts),
        "mean_latency": sum(latencies) / len(latencies),
        "max_latency": max(latencies),
        "fabric_power_watts": report.links_watts + report.switches_watts,
    }


# --------------------------------------------------------------------------- #
# Running experiments
# --------------------------------------------------------------------------- #
def _default_flow_rate_limit(fabric: Fabric) -> Optional[float]:
    """Slowest endpoint NIC rate, the per-flow cap the fluid model applies."""
    endpoints = fabric.topology.endpoints()
    if not endpoints:
        return None
    return min(fabric.topology.node(name).nic_rate_bps for name in endpoints)


def _build_fluid(
    fabric: Fabric,
    flows: Sequence[Flow],
    flow_rate_limit_bps: Optional[float],
    failure_events: Optional[Sequence[FailureEvent]],
    failure_period: float,
) -> Tuple[FluidFlowSimulator, Optional[FailureInjector]]:
    """Fluid simulator preloaded with the fabric's links, flows and failures."""
    if flow_rate_limit_bps is None:
        flow_rate_limit_bps = _default_flow_rate_limit(fabric)
    simulator = FluidFlowSimulator(flow_rate_limit_bps=flow_rate_limit_bps)
    for key, capacity in fabric.directed_capacities().items():
        simulator.add_link(key, capacity)
    for flow in flows:
        keys = fabric.route_keys(flow.src, flow.dst, flow_id=flow.flow_id)
        simulator.add_flow(flow, keys)
    injector: Optional[FailureInjector] = None
    if failure_events:
        injector = FailureInjector(fabric, failure_events)
        injector.attach(simulator, period=failure_period)
    return simulator, injector


def run_fluid_experiment(
    fabric: Fabric,
    flows: Sequence[Flow],
    label: str = "run",
    crc: Optional[ClosedRingControl] = None,
    control_period: Optional[float] = None,
    flow_rate_limit_bps: Optional[float] = None,
    until: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
    failure_period: float = 1e-4,
) -> ExperimentResult:
    """Run *flows* over *fabric*, optionally under CRC control.

    Flows are routed on the fabric's current router at admission time; when
    a CRC is attached, it may change capacities and re-route active flows on
    every control tick.  *failure_events* (if given) are injected into the
    running simulation by a :class:`~repro.fabric.failures.FailureInjector`
    sampling every *failure_period* seconds, so baselines feel the same
    failures an adaptive run does.
    """
    simulator, _ = _build_fluid(
        fabric, flows, flow_rate_limit_bps, failure_events, failure_period
    )
    if crc is not None:
        crc.attach(simulator, period=control_period)
    fluid_result = simulator.run(until=until)
    flow_set = FlowSet(flows)
    power = fabric.power_report().total_watts
    return ExperimentResult(
        label=label,
        fluid=fluid_result,
        flows=flow_set,
        crc_summary=crc.summary() if crc is not None else {},
        power_watts=power,
    )


def run_adaptive_experiment(
    rows: int,
    columns: int,
    flows: Sequence[Flow],
    lanes_per_link: int = 2,
    crc_config: Optional[CRCConfig] = None,
    label: str = "adaptive",
    fabric_config: Optional[FabricConfig] = None,
) -> Tuple[ExperimentResult, ClosedRingControl]:
    """Run the canonical adaptive scenario: grid fabric + CRC with the
    grid-to-torus latency policy enabled.

    Returns both the experiment result and the controller so callers can
    inspect how many reconfigurations happened and when.
    """
    fabric = build_grid_fabric(
        rows, columns, lanes_per_link=lanes_per_link, config=fabric_config
    )
    if crc_config is None:
        crc_config = CRCConfig(
            enable_topology_reconfiguration=True,
            grid_rows=rows,
            grid_columns=columns,
        )
    crc = ClosedRingControl(fabric, crc_config)
    result = run_fluid_experiment(
        fabric,
        flows,
        label=label,
        crc=crc,
        control_period=crc_config.control_period,
    )
    return result, crc


def run_control_loop_experiment(
    fabric: Fabric,
    flows: Sequence[Flow],
    label: str = "adaptive",
    loop_config: Optional[ControlLoopConfig] = None,
    candidates: Optional[Sequence[PlanCandidate]] = None,
    grid_rows: Optional[int] = None,
    grid_columns: Optional[int] = None,
    telemetry: Optional[TelemetryCollector] = None,
    flow_rate_limit_bps: Optional[float] = None,
    until: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
    failure_period: float = 1e-4,
) -> Tuple[ExperimentResult, ControlLoop]:
    """Run *flows* over *fabric* under the closed control loop.

    This is the dynamic-scenario runner: a
    :class:`~repro.core.control.ControlLoop` is bound to the fluid
    simulation and drives telemetry, pricing, flow re-scheduling and
    reconfiguration from its own periodic process on the event engine.

    Parameters
    ----------
    fabric:
        The fabric under control.
    flows:
        The workload; initial routes come from the fabric's router.
    loop_config:
        Control-loop knobs (defaults otherwise).
    candidates:
        Reconfiguration candidates.  When ``None`` and *grid_rows* /
        *grid_columns* are given, a single capacity-preserving
        :class:`~repro.core.control.GridToTorusCandidate` is installed.
    telemetry:
        Optional shared collector for the loop's time series.
    failure_events:
        Failures injected mid-run (the loop must steer around them).
    failure_period:
        Failure-injector sampling period.  The default matches
        :func:`run_fluid_experiment`'s, so a static baseline and an
        adaptive run of the same scenario feel each failure at the same
        simulated time regardless of the loop's control interval.

    Returns the experiment result and the loop, so callers can inspect
    ticks, reconfiguration times and telemetry.
    """
    loop_config = loop_config if loop_config is not None else ControlLoopConfig()
    if candidates is None:
        candidates = (
            [GridToTorusCandidate(grid_rows, grid_columns)]
            if grid_rows is not None and grid_columns is not None
            else []
        )
    simulator, _ = _build_fluid(
        fabric, flows, flow_rate_limit_bps, failure_events, failure_period
    )
    loop = ControlLoop(fabric, candidates=candidates, config=loop_config, telemetry=telemetry)
    loop.bind(simulator)
    fluid_result = loop.run(until=until)
    flow_set = FlowSet(flows)
    return (
        ExperimentResult(
            label=label,
            fluid=fluid_result,
            flows=flow_set,
            crc_summary=loop.summary(),
            power_watts=fabric.power_report().total_watts,
        ),
        loop,
    )
