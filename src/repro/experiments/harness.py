"""Fabric builders, fabric-state statistics and the legacy runner shims.

The experiment entrypoint itself lives in :mod:`repro.experiments.api`
(:func:`~repro.experiments.api.run_experiment` over an
:class:`~repro.experiments.api.ExperimentSpec`).  This module keeps:

* the fabric construction helpers the specs and scenarios build on,
* :func:`fabric_state_row`, the closed-form hop/latency/power statistics
  column set shared by every sweep row,
* :class:`ExperimentResult`, the legacy result container, and
* deprecation shims for the five historical entrypoints
  (``run_fluid_experiment``, ``run_adaptive_experiment``,
  ``run_control_loop_experiment`` here; the two baselines in
  :mod:`repro.baselines`).  Each shim delegates to ``run_experiment`` --
  the parity tests assert bit-identical metrics -- and will be removed
  one release after 1.x; see ``docs/api.md`` for the migration table.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.control import ControlLoop, ControlLoopConfig, PlanCandidate
from repro.core.crc import ClosedRingControl, CRCConfig
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.failures import FailureEvent
from repro.fabric.topology import TopologyBuilder
from repro.sim.flow import Flow, FlowSet
from repro.sim.fluid import FluidResult
from repro.sim.units import GBPS
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.metrics import straggler_ratio


def _warn_legacy(old: str, replacement: str) -> None:
    warnings.warn(
        f"{old} is deprecated and will be removed in the next release; "
        f"use {replacement} (see docs/api.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


class ExperimentResult:
    """Legacy result container returned by the deprecated entrypoints.

    New code receives a :class:`~repro.experiments.api.RunRecord` from
    :func:`~repro.experiments.api.run_experiment` instead.  The
    ``crc_summary`` field was renamed ``controller_summary``; the old
    spelling keeps working (constructor keyword, read and write) for one
    release, with a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        label: str,
        fluid: FluidResult,
        flows: FlowSet,
        controller_summary: Optional[Dict[str, float]] = None,
        power_watts: float = 0.0,
        crc_summary: Optional[Dict[str, float]] = None,
    ) -> None:
        if crc_summary is not None:
            self._warn_crc_summary()
            if controller_summary is None:
                controller_summary = crc_summary
        self.label = label
        self.fluid = fluid
        self.flows = flows
        self.controller_summary: Dict[str, float] = (
            controller_summary if controller_summary is not None else {}
        )
        self.power_watts = power_watts

    @staticmethod
    def _warn_crc_summary() -> None:
        warnings.warn(
            "ExperimentResult.crc_summary is deprecated; use "
            "ExperimentResult.controller_summary",
            DeprecationWarning,
            stacklevel=3,
        )

    @property
    def crc_summary(self) -> Dict[str, float]:
        """Deprecated alias of :attr:`controller_summary` (one release)."""
        self._warn_crc_summary()
        return self.controller_summary

    @crc_summary.setter
    def crc_summary(self, value: Dict[str, float]) -> None:
        self._warn_crc_summary()
        self.controller_summary = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentResult(label={self.label!r}, "
            f"controller_summary={self.controller_summary!r}, "
            f"power_watts={self.power_watts!r})"
        )

    @property
    def makespan(self) -> Optional[float]:
        """Time to complete the whole workload."""
        return self.flows.makespan()

    @property
    def mean_fct(self) -> Optional[float]:
        """Mean flow completion time."""
        return self.flows.mean_fct()

    @property
    def p99_fct(self) -> Optional[float]:
        """99th-percentile flow completion time."""
        return self.flows.fct_percentile(99.0)

    @property
    def straggler(self) -> Optional[float]:
        """Straggler ratio (max FCT / median FCT)."""
        return straggler_ratio(self.flows)

    def summary_row(self) -> List[object]:
        """A standard table row: label, makespan, mean, p99, straggler, power."""
        return [
            self.label,
            self.makespan,
            self.mean_fct,
            self.p99_fct,
            self.straggler,
            self.power_watts,
        ]


# --------------------------------------------------------------------------- #
# Fabric construction helpers
# --------------------------------------------------------------------------- #
def build_grid_fabric(
    rows: int,
    columns: int,
    lanes_per_link: int = 2,
    lane_rate_bps: float = 25 * GBPS,
    config: Optional[FabricConfig] = None,
) -> Fabric:
    """The paper's initial configuration: a grid at ``lanes_per_link`` lanes."""
    builder = TopologyBuilder(lanes_per_link=lanes_per_link, lane_rate_bps=lane_rate_bps)
    topology = builder.grid(rows, columns)
    return Fabric(topology, config if config is not None else FabricConfig())


def build_torus_fabric(
    rows: int,
    columns: int,
    lanes_per_link: int = 1,
    lane_rate_bps: float = 25 * GBPS,
    config: Optional[FabricConfig] = None,
) -> Fabric:
    """The paper's reconfigured target: a torus at ``lanes_per_link`` lanes."""
    builder = TopologyBuilder(lanes_per_link=lanes_per_link, lane_rate_bps=lane_rate_bps)
    topology = builder.torus(rows, columns)
    return Fabric(topology, config if config is not None else FabricConfig())


def build_fabric(
    topology: str,
    rows: int = 3,
    columns: int = 3,
    lanes_per_link: int = 2,
    lane_rate_bps: float = 25 * GBPS,
    config: Optional[FabricConfig] = None,
    **dimensions: int,
) -> Fabric:
    """Build a fabric by registered topology-family name.

    The scenario registry and :class:`~repro.experiments.api.FabricSpec`
    store the topology as data, so they need a single dispatch point rather
    than a function per shape; dispatch goes through the topology-family
    registry (:mod:`repro.fabric.topologies`), so any registered family --
    ``grid``, ``torus``, ``fat-tree``, ``dragonfly`` or a third-party
    registration -- resolves here.  Each family picks the dimensions it
    declares (``rows``/``columns`` for the meshes, ``pods`` for fat-tree,
    ``groups``/``routers_per_group``/``hosts_per_router`` for dragonfly)
    out of the keyword arguments; raises :class:`ValueError`
    (:class:`~repro.fabric.topologies.TopologyError`) for unknown names or
    invalid dimensions.
    """
    from repro.fabric.topologies import build_topology_fabric

    params: Dict[str, int] = {"rows": rows, "columns": columns}
    params.update(dimensions)
    return build_topology_fabric(
        topology,
        params,
        lanes_per_link=lanes_per_link,
        lane_rate_bps=lane_rate_bps,
        config=config,
    )


def fabric_state_row(fabric: Fabric, packet_size_bytes: float = 1500.0) -> Dict[str, float]:
    """Hop, latency and power statistics of a fabric in its *current* state.

    The latency columns are closed-form per-packet latencies on an idle
    fabric (the quantity the paper's Figure 1/2 narrative is about: how many
    cut-through switching elements sit on the critical path).

    All-pairs statistics come from one breadth-first search per endpoint
    (hops and latency accumulate along the BFS tree), not from per-pair
    router queries -- ``O(endpoints * links)`` instead of the ``O(n^2)``
    shortest-path calls this used to make.  The router and its cache are
    untouched, which ``benchmarks/bench_fabric_state.py`` guards.

    The statistics are deliberately *topological*: paths are hop-minimal
    over the fabric's current link set, independent of whatever weight
    function a controller left installed on the router.  (The pre-1.x
    implementation read the router, so a run under the price-tagging
    control loop reported hop/latency columns along the loop's final
    *price-weighted* routes -- an idle-fabric metric contaminated by the
    finished run's congestion state.  Rows produced by ``controller="loop"``
    sweeps differ from that older output accordingly.)
    """
    from repro.sim.units import bits_from_bytes

    topology = fabric.topology
    endpoints = topology.endpoints()
    packet_bits = bits_from_bytes(packet_size_bytes)

    # Per-link latency increment (propagation + PHY) and first-hop
    # serialization, plus per-node forwarding latency, precomputed once.
    # Dark links (every lane off -- e.g. a failure plan whose restore
    # event never fired because the workload drained first) carry no
    # traffic and have no serialization time, so they are no more part of
    # the path statistics than an absent link; paths BFS over the live
    # subgraph only.
    adjacency: Dict[str, List[Tuple[str, float, float]]] = {
        name: [] for name in topology.node_names()
    }
    for link in topology.links():
        if link.capacity_bps <= 0.0:
            continue
        increment = link.propagation_delay + link.phy_latency
        serialization = link.serialization_delay(packet_bits)
        adjacency[link.a].append((link.b, increment, serialization))
        adjacency[link.b].append((link.a, increment, serialization))
    forwarding = {
        name: fabric.switch(name).forwarding_latency(packet_bits)
        for name in topology.node_names()
    }

    latencies: List[float] = []
    hop_counts: List[int] = []
    for index, src in enumerate(endpoints):
        # BFS from src; hops/latency accumulate along the tree.  The
        # breakdown mirrors Fabric.path_latency: serialization on the first
        # link only (cut-through), propagation + PHY per link, forwarding
        # at every intermediate node (src and dst do not forward).
        hops: Dict[str, int] = {src: 0}
        latency: Dict[str, float] = {src: 0.0}
        frontier = [src]
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                node_hops = hops[node]
                node_latency = latency[node] + (forwarding[node] if node != src else 0.0)
                for neighbour, increment, serialization in adjacency[node]:
                    if neighbour in hops:
                        continue
                    hops[neighbour] = node_hops + 1
                    latency[neighbour] = node_latency + increment + (
                        serialization if node == src else 0.0
                    )
                    next_frontier.append(neighbour)
            frontier = next_frontier
        for dst in endpoints[index + 1:]:
            if dst not in hops:
                raise ValueError(
                    f"fabric is disconnected: no path from {src!r} to {dst!r}"
                )
            hop_counts.append(hops[dst])
            latencies.append(latency[dst])

    report = fabric.power_report()
    return {
        "links": float(len(topology.links())),
        "active_lanes": float(topology.total_active_lanes()),
        "diameter_hops": float(max(hop_counts)),
        "mean_hops": sum(hop_counts) / len(hop_counts),
        "mean_latency": sum(latencies) / len(latencies),
        "max_latency": max(latencies),
        "fabric_power_watts": report.links_watts + report.switches_watts,
    }


# --------------------------------------------------------------------------- #
# Deprecated entrypoints (thin shims over run_experiment)
# --------------------------------------------------------------------------- #
def _legacy_result(record) -> ExperimentResult:
    """An :class:`ExperimentResult` view over a RunRecord (for the shims)."""
    return ExperimentResult(
        label=record.label,
        fluid=record.fluid,
        flows=record.flows,
        controller_summary=dict(record.controller_summary.data),
        power_watts=record.power_watts,
    )


def run_fluid_experiment(
    fabric: Fabric,
    flows: Sequence[Flow],
    label: str = "run",
    crc: Optional[ClosedRingControl] = None,
    control_period: Optional[float] = None,
    flow_rate_limit_bps: Optional[float] = None,
    until: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
    failure_period: float = 1e-4,
) -> ExperimentResult:
    """Deprecated: build an :class:`~repro.experiments.api.ExperimentSpec`
    (controller ``"none"``, or ``"crc"`` with an ``instance``) and call
    :func:`~repro.experiments.api.run_experiment` instead.
    """
    _warn_legacy("run_fluid_experiment", "run_experiment(ExperimentSpec(...))")
    from repro.experiments.api import ExperimentSpec, run_experiment

    if crc is not None:
        controller = "crc"
        controller_config: Dict[str, object] = {
            "instance": crc, "control_period": control_period,
        }
    else:
        controller, controller_config = "none", {}
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=label,
            controller=controller,
            controller_config=controller_config,
            failures=tuple(failure_events or ()),
            failure_period=failure_period,
            until=until,
            flow_rate_limit_bps=flow_rate_limit_bps,
        )
    )
    return _legacy_result(record)


def run_adaptive_experiment(
    rows: int,
    columns: int,
    flows: Sequence[Flow],
    lanes_per_link: int = 2,
    crc_config: Optional[CRCConfig] = None,
    label: str = "adaptive",
    fabric_config: Optional[FabricConfig] = None,
) -> Tuple[ExperimentResult, ClosedRingControl]:
    """Deprecated: use :func:`~repro.experiments.api.run_experiment` with
    ``controller="crc"`` over a grid :class:`~repro.experiments.api.FabricSpec`.
    """
    _warn_legacy(
        "run_adaptive_experiment",
        "run_experiment(ExperimentSpec(..., controller='crc'))",
    )
    from repro.experiments.api import ExperimentSpec, run_experiment

    fabric = build_grid_fabric(
        rows, columns, lanes_per_link=lanes_per_link, config=fabric_config
    )
    if crc_config is None:
        crc_config = CRCConfig(
            enable_topology_reconfiguration=True,
            grid_rows=rows,
            grid_columns=columns,
        )
    crc = ClosedRingControl(fabric, crc_config)
    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=label,
            controller="crc",
            controller_config={
                "instance": crc, "control_period": crc_config.control_period,
            },
        )
    )
    return _legacy_result(record), crc


def run_control_loop_experiment(
    fabric: Fabric,
    flows: Sequence[Flow],
    label: str = "adaptive",
    loop_config: Optional[ControlLoopConfig] = None,
    candidates: Optional[Sequence[PlanCandidate]] = None,
    grid_rows: Optional[int] = None,
    grid_columns: Optional[int] = None,
    telemetry: Optional[TelemetryCollector] = None,
    flow_rate_limit_bps: Optional[float] = None,
    until: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
    failure_period: float = 1e-4,
) -> Tuple[ExperimentResult, ControlLoop]:
    """Deprecated: use :func:`~repro.experiments.api.run_experiment` with
    ``controller="loop"``; the bound :class:`~repro.core.control.ControlLoop`
    is reachable as ``record.controller_instance.loop``.
    """
    _warn_legacy(
        "run_control_loop_experiment",
        "run_experiment(ExperimentSpec(..., controller='loop'))",
    )
    from repro.experiments.api import ExperimentSpec, run_experiment

    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=label,
            controller="loop",
            controller_config={
                "config": loop_config,
                "candidates": candidates,
                "grid_rows": grid_rows,
                "grid_columns": grid_columns,
                "telemetry": telemetry,
            },
            failures=tuple(failure_events or ()),
            failure_period=failure_period,
            until=until,
            flow_rate_limit_bps=flow_rate_limit_bps,
        )
    )
    assert record.controller_instance is not None
    loop = record.controller_instance.loop  # type: ignore[attr-defined]
    return _legacy_result(record), loop
