"""Parallel parameter-sweep engine over the scenario registry.

A sweep is ``scenarios x parameter grid``: every selected scenario is run
once per point of the expanded grid, the runs are fanned out across
``multiprocessing`` workers, and each run produces one JSON-serialisable
result row with full config provenance (see ``docs/scenarios.md`` for the
row schema).  Any common scenario parameter is a valid axis -- including
``backend``, so one grid can cross the fluid and packet simulators over
identical workloads (``--grid backend=fluid,packet``).  Packet rows may
also pick the execution engine (``--grid engine=event,batched``); the two
engines are bit-identical, so such an axis only changes the ``timing``
field.

Because :func:`repro.experiments.scenarios.run_scenario` derives each run's
seed from its configuration alone (never from execution order), and because
``Pool.map`` returns results in submission order, a sweep's output is
bit-identical for any worker count -- ``--workers 4`` and ``--workers 1``
write the same rows, differing only in the ``timing`` field.  The unit
tests pin that property.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from itertools import product
from multiprocessing import get_context
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.scenarios import (
    ScenarioError,
    get_scenario,
    resolve_params,
    run_scenario,
    scenario_names,
)

#: Per-row key holding wall-clock measurements; the only part of a row that
#: is allowed to differ between runs of the same sweep.
TIMING_KEY = "timing"


# --------------------------------------------------------------------------- #
# Grid expansion
# --------------------------------------------------------------------------- #
def expand_grid(grid: Optional[Mapping[str, Sequence[object]]]) -> List[Dict[str, object]]:
    """Expand ``{key: [v1, v2], ...}`` into the cartesian product of overrides.

    Keys are iterated in sorted order and values in their given order, so
    the expansion order (and therefore the sweep's row order) is a pure
    function of the grid.  An empty or ``None`` grid yields one empty
    override (run every scenario once at its defaults).
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        if not isinstance(grid[key], (list, tuple)) or len(grid[key]) == 0:
            raise ScenarioError(f"grid axis {key!r} must be a non-empty list of values")
    return [dict(zip(keys, values)) for values in product(*(grid[key] for key in keys))]


@dataclass(frozen=True)
class SweepRun:
    """One unit of sweep work: a scenario name plus parameter overrides."""

    scenario: str
    overrides: Dict[str, object] = field(default_factory=dict)
    base_seed: int = 0


def build_runs(
    scenarios: Optional[Sequence[str]] = None,
    grid: Optional[Mapping[str, Sequence[object]]] = None,
    base_seed: int = 0,
    skip_invalid: bool = True,
) -> List[SweepRun]:
    """Expand ``scenarios x grid`` into the ordered run list.

    Grid points that a scenario rejects (unknown parameter, or an
    incompatible combination such as ``crc=True`` on a torus) are dropped
    when *skip_invalid* is true -- a grid is a cross product, and not every
    corner of it need make sense for every scenario.  Validity depends only
    on the configuration, so the surviving run list is still deterministic.
    """
    names = list(scenarios) if scenarios else scenario_names()
    combos = expand_grid(grid)
    runs: List[SweepRun] = []
    for name in names:
        scenario = get_scenario(name)
        for overrides in combos:
            try:
                resolve_params(scenario, overrides)
            except ScenarioError:
                if skip_invalid:
                    continue
                raise
            runs.append(SweepRun(name, dict(overrides), base_seed))
    if not runs:
        raise ScenarioError("sweep expanded to zero valid runs")
    return runs


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
def execute_run(run: SweepRun) -> Dict[str, object]:
    """Execute one sweep run and stamp its wall-clock time."""
    start = time.perf_counter()
    row = run_scenario(run.scenario, run.overrides, base_seed=run.base_seed)
    row[TIMING_KEY] = {"wall_seconds": time.perf_counter() - start}
    return row


def _worker_init(path_entries: List[str]) -> None:
    """Make the parent's import path available in spawned workers.

    Fork workers inherit ``sys.path`` anyway; spawn workers (macOS/Windows
    default) re-import from scratch and would otherwise miss a src-layout
    checkout that was never pip-installed.
    """
    for entry in reversed(path_entries):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def execute_runs(runs: Sequence[SweepRun], workers: int = 1) -> List[Dict[str, object]]:
    """Run *runs*, fanning out across *workers* processes.

    Results come back in submission order regardless of which worker
    finishes first, preserving the deterministic row order.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(runs) <= 1:
        return [execute_run(run) for run in runs]
    with get_context().Pool(
        processes=min(workers, len(runs)),
        initializer=_worker_init,
        initargs=(list(sys.path),),
    ) as pool:
        return pool.map(execute_run, list(runs))


def run_sweep(
    scenarios: Optional[Sequence[str]] = None,
    grid: Optional[Mapping[str, Sequence[object]]] = None,
    workers: int = 1,
    base_seed: int = 0,
    output: Optional[str] = None,
    skip_invalid: bool = True,
) -> List[Dict[str, object]]:
    """Run a full sweep and optionally persist the rows as JSON lines.

    Parameters
    ----------
    scenarios:
        Scenario names to include; default every registered scenario.
    grid:
        ``{parameter: [values...]}`` axes to cross with each scenario.
    workers:
        Process fan-out; ``1`` runs in-process.
    base_seed:
        Root of the per-run seed derivation.
    output:
        If given, rows are written there as JSON lines (one row per line).
    """
    runs = build_runs(scenarios, grid, base_seed=base_seed, skip_invalid=skip_invalid)
    rows = execute_runs(runs, workers=workers)
    if output is not None:
        write_rows(rows, output)
    return rows


# --------------------------------------------------------------------------- #
# Persistence and querying
# --------------------------------------------------------------------------- #
def write_rows(rows: Iterable[Mapping[str, object]], path: str) -> None:
    """Write result rows as JSON lines with sorted keys (byte-stable)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")


def load_rows(path: str) -> List[Dict[str, object]]:
    """Read rows previously written by :func:`write_rows`."""
    rows: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def strip_timing(row: Mapping[str, object]) -> Dict[str, object]:
    """A copy of *row* without its timing field (for determinism checks)."""
    return {key: value for key, value in row.items() if key != TIMING_KEY}


def filter_rows(
    results: Iterable[Mapping[str, object]],
    scenario: Optional[str] = None,
    **param_filters: object,
) -> List[Dict[str, object]]:
    """Select rows by scenario name and exact parameter values.

    This is the query surface the figure generators are built on: run (or
    load) a sweep, then pick the configurations a figure compares.  The
    first argument is positional-by-convention named ``results`` so that
    ``rows`` (the rack dimension) stays usable as a parameter filter.
    """
    selected: List[Dict[str, object]] = []
    for row in results:
        if scenario is not None and row.get("scenario") != scenario:
            continue
        params = row.get("params", {})
        if all(params.get(key) == value for key, value in param_filters.items()):
            selected.append(dict(row))
    return selected
