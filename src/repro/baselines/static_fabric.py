"""Static fabric baseline: same hardware, no control loop."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult, run_fluid_experiment
from repro.fabric.fabric import Fabric
from repro.fabric.failures import FailureEvent
from repro.sim.flow import Flow


def run_static_baseline(
    fabric: Fabric,
    flows: Sequence[Flow],
    label: str = "static",
    flow_rate_limit_bps: Optional[float] = None,
    until: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
) -> ExperimentResult:
    """Run *flows* over *fabric* with no CRC attached.

    This is the "do nothing" comparator: routing is fixed shortest-path on
    the initial topology, capacities never change, no bypasses are carved.
    *failure_events* (if any) still land mid-run -- a static fabric suffers
    failures, it just cannot react to them.
    """
    return run_fluid_experiment(
        fabric,
        flows,
        label=label,
        crc=None,
        flow_rate_limit_bps=flow_rate_limit_bps,
        until=until,
        failure_events=failure_events,
    )
