"""Static fabric baseline: same hardware, no control loop.

Deprecated module-level entrypoint; the ``"static"`` controller registered
in :mod:`repro.core.controllers` is the supported way to run this baseline
through :func:`~repro.experiments.api.run_experiment`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult, _legacy_result, _warn_legacy
from repro.fabric.fabric import Fabric
from repro.fabric.failures import FailureEvent
from repro.sim.flow import Flow


def run_static_baseline(
    fabric: Fabric,
    flows: Sequence[Flow],
    label: str = "static",
    flow_rate_limit_bps: Optional[float] = None,
    until: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
) -> ExperimentResult:
    """Deprecated: use :func:`~repro.experiments.api.run_experiment` with
    ``controller="static"``.

    This is the "do nothing" comparator: routing is fixed shortest-path on
    the initial topology, capacities never change, no bypasses are carved.
    *failure_events* (if any) still land mid-run -- a static fabric suffers
    failures, it just cannot react to them.
    """
    _warn_legacy(
        "run_static_baseline",
        "run_experiment(ExperimentSpec(..., controller='static'))",
    )
    from repro.experiments.api import ExperimentSpec, run_experiment

    record = run_experiment(
        ExperimentSpec(
            fabric=fabric,
            flows=flows,
            label=label,
            controller="static",
            failures=tuple(failure_events or ()),
            until=until,
            flow_rate_limit_bps=flow_rate_limit_bps,
        )
    )
    return _legacy_result(record)
