"""Baseline systems the adaptive fabric is compared against.

* :mod:`repro.baselines.static_fabric` -- the same topology and lane budget
  but no Closed Ring Control: whatever the initial configuration is, it
  stays.
* :mod:`repro.baselines.ecmp` -- static fabric with ECMP multi-pathing, the
  standard packet-switched answer to congestion.
* :mod:`repro.baselines.circuit` -- an idealised circuit-switched fabric
  (every flow gets a dedicated end-to-end circuit at NIC rate, paying only a
  setup delay), the optimistic bound the reconfigurable-optics literature
  compares against.
"""

from repro.baselines.circuit import OracleCircuitBaseline
from repro.baselines.ecmp import run_ecmp_baseline
from repro.baselines.static_fabric import run_static_baseline

__all__ = [
    "OracleCircuitBaseline",
    "run_ecmp_baseline",
    "run_static_baseline",
]
