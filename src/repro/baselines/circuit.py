"""Idealised circuit-switched baseline.

The reconfigurable-fabric literature (ProjecToR, Shoal -- both cited by the
paper) compares against an idealised circuit switch: every flow gets a
dedicated end-to-end circuit at the NIC line rate, paying only a circuit
setup delay, but a node can drive (and sink) only one circuit at a time.
That last constraint is what makes the baseline non-trivial: all-to-all
patterns serialise at the endpoints, so the completion time is governed by
the heaviest sender/receiver, not by the fabric core.

The model here schedules flows greedily in arrival order: a flow starts as
soon as both its endpoints are free, runs at the NIC rate, and charges one
setup delay.  This is optimistic (no reconfiguration conflicts in the
switch core) which is exactly what an *oracle* baseline should be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.sim.flow import Flow, FlowSet
from repro.sim.units import GBPS


@dataclass
class OracleCircuitBaseline:
    """Greedy oracle scheduler for an all-circuit fabric."""

    nic_rate_bps: float = 100 * GBPS
    circuit_setup_time: float = 20e-6

    def __post_init__(self) -> None:
        if self.nic_rate_bps <= 0:
            raise ValueError("nic_rate_bps must be positive")
        if self.circuit_setup_time < 0:
            raise ValueError("circuit_setup_time must be >= 0")

    def run(self, flows: Sequence[Flow]) -> FlowSet:
        """Schedule *flows* and mark their completion times in place.

        Flows are considered in ``(start_time, flow_id)`` order; each starts
        at the earliest instant both its source and destination NICs are
        free and not before its own start time.
        """
        node_free_at: Dict[str, float] = {}
        ordered = sorted(flows, key=lambda flow: (flow.start_time, flow.flow_id))
        for flow in ordered:
            src_free = node_free_at.get(flow.src, 0.0)
            dst_free = node_free_at.get(flow.dst, 0.0)
            start = max(flow.start_time, src_free, dst_free)
            duration = self.circuit_setup_time + flow.size_bits / self.nic_rate_bps
            end = start + duration
            flow.activate(start)
            flow.complete(end)
            node_free_at[flow.src] = end
            node_free_at[flow.dst] = end
        return FlowSet(ordered)

    def lower_bound_makespan(self, flows: Sequence[Flow]) -> float:
        """A simple lower bound: the busiest endpoint's serialised work.

        Every node must send all its outgoing bits and receive all its
        incoming bits at the NIC rate, one circuit at a time, so the busiest
        node's total (plus one setup per flow it touches) bounds the
        makespan from below.
        """
        send_bits: Dict[str, float] = {}
        recv_bits: Dict[str, float] = {}
        touches: Dict[str, int] = {}
        for flow in flows:
            send_bits[flow.src] = send_bits.get(flow.src, 0.0) + flow.size_bits
            recv_bits[flow.dst] = recv_bits.get(flow.dst, 0.0) + flow.size_bits
            touches[flow.src] = touches.get(flow.src, 0) + 1
            touches[flow.dst] = touches.get(flow.dst, 0) + 1
        bound = 0.0
        for node in set(list(send_bits) + list(recv_bits)):
            work = (send_bits.get(node, 0.0) + recv_bits.get(node, 0.0)) / self.nic_rate_bps
            work += touches.get(node, 0) * self.circuit_setup_time
            bound = max(bound, work)
        return bound
