"""Static ECMP baseline: multi-path load balancing without reconfiguration."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult, run_fluid_experiment
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.failures import FailureEvent
from repro.fabric.routing import Router, RoutingPolicy
from repro.fabric.topology import Topology
from repro.sim.flow import Flow


def run_ecmp_baseline(
    topology: Topology,
    flows: Sequence[Flow],
    label: str = "ecmp",
    fabric_config: Optional[FabricConfig] = None,
    flow_rate_limit_bps: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
) -> ExperimentResult:
    """Run *flows* over *topology* with per-flow ECMP hashing and no CRC.

    ECMP is what a conventional packet-switched rack does about congestion:
    spread flows over equal-cost paths and hope the hash is kind.  It needs
    no reconfiguration hardware, so it is the fair "software-only" baseline
    for the adaptive fabric.  *failure_events* (if any) are injected the
    same way as in the adaptive runs.
    """
    config = fabric_config if fabric_config is not None else FabricConfig()
    fabric = Fabric(topology, config)
    fabric.router = Router(topology, policy=RoutingPolicy.ECMP)
    return run_fluid_experiment(
        fabric,
        flows,
        label=label,
        crc=None,
        flow_rate_limit_bps=flow_rate_limit_bps,
        failure_events=failure_events,
    )
