"""Static ECMP baseline: multi-path load balancing without reconfiguration.

Deprecated module-level entrypoint; the ``"ecmp"`` controller registered in
:mod:`repro.core.controllers` is the supported way to run this baseline
through :func:`~repro.experiments.api.run_experiment`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult, _legacy_result, _warn_legacy
from repro.fabric.fabric import Fabric, FabricConfig
from repro.fabric.failures import FailureEvent
from repro.fabric.topology import Topology
from repro.sim.flow import Flow


def run_ecmp_baseline(
    topology: Topology,
    flows: Sequence[Flow],
    label: str = "ecmp",
    fabric_config: Optional[FabricConfig] = None,
    flow_rate_limit_bps: Optional[float] = None,
    failure_events: Optional[Sequence[FailureEvent]] = None,
) -> ExperimentResult:
    """Deprecated: use :func:`~repro.experiments.api.run_experiment` with
    ``controller="ecmp"``.

    ECMP is what a conventional packet-switched rack does about congestion:
    spread flows over equal-cost paths and hope the hash is kind.  It needs
    no reconfiguration hardware, so it is the fair "software-only" baseline
    for the adaptive fabric.  *failure_events* (if any) are injected the
    same way as in the adaptive runs.
    """
    _warn_legacy(
        "run_ecmp_baseline",
        "run_experiment(ExperimentSpec(..., controller='ecmp'))",
    )
    from repro.experiments.api import ExperimentSpec, run_experiment

    config = fabric_config if fabric_config is not None else FabricConfig()
    record = run_experiment(
        ExperimentSpec(
            fabric=Fabric(topology, config),
            flows=flows,
            label=label,
            controller="ecmp",
            failures=tuple(failure_events or ()),
            flow_rate_limit_bps=flow_rate_limit_bps,
        )
    )
    return _legacy_result(record)
