"""Command line for the invariant linter.

Examples
--------
::

    python -m repro.lint                      # lint src/repro, apply baseline
    python -m repro.lint --strict             # CI mode: stale baseline fails too
    python -m repro.lint src/repro/sim        # one subtree
    python -m repro.lint --rules D001,D002    # one rule family
    python -m repro.lint --list-rules         # the catalogue
    python -m repro.lint --print-fingerprints # bless parity pairs after edits
    python -m repro.lint --write-baseline     # grandfather current findings
    repro-fabric lint --strict                # same checker via the main CLI

Exit status: 0 clean, 1 findings (or, with ``--strict``, stale baseline
entries), 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import (
    BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.framework import (
    LintError,
    collect_files,
    find_repo_root,
    resolve_rules,
    rule_catalog,
    run_rules,
)

#: Default lint surface: the package itself.
DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static determinism/parity/units checks for the repro tree",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--rules", metavar="CODES",
        help="comma-separated rule codes to run (default: all registered)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help=f"baseline file (default: <repo-root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (the CI mode)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--print-fingerprints", action="store_true",
        help="print the live fingerprints of every declared parity pair "
             "(paste into src/repro/lint/parity_pairs.py after re-running "
             "the parity suites)",
    )
    return parser


def _list_rules() -> int:
    for rule in rule_catalog():
        scope = ", ".join(rule.paths) if rule.paths else "all files"
        kind = "repo-wide" if rule.repo_wide else scope
        print(f"{rule.code}  {rule.name}  [{kind}]")
        print(f"      {rule.rationale}")
    return 0


def _print_fingerprints(repo_root: Path) -> int:
    from repro.lint.parity import fingerprint_reference
    from repro.lint.parity_pairs import PARITY_PAIRS

    status = 0
    for pair in PARITY_PAIRS:
        print(f"{pair.name}:")
        for role, reference, blessed in pair.sides():
            live = fingerprint_reference(reference, repo_root)
            if live is None:
                print(f"  {role}_fingerprint: <function not found: {reference}>")
                status = 1
                continue
            marker = "" if live == blessed else "   # was " + blessed
            print(f'  {role}_fingerprint="{live}",{marker}')
    return status


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point shared by ``python -m repro.lint`` and the main CLI."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly,
        # giving Python a writable fd so the interpreter's stdout-flush at
        # exit does not complain either.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    repo_root = find_repo_root(paths[0]) or Path.cwd()

    if args.print_fingerprints:
        return _print_fingerprints(repo_root)

    try:
        rules = resolve_rules(
            [code.strip() for code in args.rules.split(",") if code.strip()]
            if args.rules
            else None
        )
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    files = collect_files(paths, repo_root)
    run = run_rules(files, rules, repo_root=repo_root)

    baseline_path = (
        Path(args.baseline) if args.baseline else repo_root / BASELINE_NAME
    )
    if args.write_baseline:
        count = write_baseline(baseline_path, run.findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    new, stale = apply_baseline(run.findings, baseline)

    for finding in new:
        print(finding.render())
    grandfathered = len(run.findings) - len(new)
    if grandfathered:
        print(f"({grandfathered} finding(s) excused by {baseline_path.name})")
    if stale and args.strict:
        for rule, rel, line_hash in stale:
            print(
                f"{baseline_path.name}: stale entry {rule} {rel} {line_hash} "
                "matches no finding; remove it"
            )
    if new:
        checked = sum(1 for f in files)
        print(
            f"repro.lint: {len(new)} finding(s) across {checked} file(s); "
            "see docs/lint.md for suppression and baseline workflow",
            file=sys.stderr,
        )
        return 1
    if stale and args.strict:
        return 1
    print(f"repro.lint OK: {len(files)} file(s), "
          f"{len(rules)} rule(s), no new findings")
    return 0
