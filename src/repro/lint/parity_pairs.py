"""The declared parity pairings rule D003 enforces.

Each entry blesses the current fingerprints of one
implementation/oracle pair (see :mod:`repro.lint.parity`).  Editing
either side's code -- docstrings and comments excluded -- fails lint
until this file is updated.  The update procedure *is* the invariant:

1. make the code change,
2. re-run the relevant parity suite (``tests/test_fluid_parity.py`` for
   the fluid pairs, ``tests/test_packet_parity.py`` for the packet
   pairs) and the fidelity gate,
3. run ``python -m repro.lint --print-fingerprints`` and paste the new
   values here, in the same change.

A reviewer seeing a fingerprint bump without a parity-suite run in the
same change knows exactly what drifted.
"""

from __future__ import annotations

from typing import Tuple

from repro.lint.parity import ParityPair

PARITY_PAIRS: Tuple[ParityPair, ...] = (
    ParityPair(
        name="fluid-progressive-filling",
        primary="src/repro/sim/fluid.py::FluidFlowSimulator._solve_closure",
        oracle="src/repro/sim/fluid.py::FluidFlowSimulator._compute_rates_reference",
        primary_fingerprint="3dd500415d588d6b",
        oracle_fingerprint="3f17196d73bd58ca",
        rationale=(
            "the incremental allocator's share-heap filling must stay "
            "operand-for-operand identical to the reference's progressive "
            "filling restricted to the dirty closure"
        ),
    ),
    ParityPair(
        name="packet-port-capacity-sync",
        primary="src/repro/sim/packet_batch.py::BatchedPacketCore.sync_port_capacity",
        oracle="src/repro/fabric/packetsim.py::PacketLevelNetwork.sync_port_capacity",
        primary_fingerprint="68576b9f7c043c3b",
        oracle_fingerprint="7199aa900f4859db",
        rationale=(
            "busy_until rescaling at a capacity mutation must use the same "
            "IEEE-754 ops on both engines or drain deadlines diverge"
        ),
    ),
    ParityPair(
        name="packet-port-drain-time",
        primary="src/repro/sim/packet_batch.py::BatchedPacketCore.port_drain_time",
        oracle="src/repro/fabric/packetsim.py::PacketLevelNetwork.port_drain_time",
        primary_fingerprint="94efba92999e9f2e",
        oracle_fingerprint="0a71dee3e4be7930",
        rationale="backlog drain-time queries feed controller decisions",
    ),
    ParityPair(
        name="packet-window-refill",
        primary="src/repro/sim/packet_batch.py::BatchedPacketCore._fill_window",
        oracle="src/repro/sim/transport.py::PacketTransport._fill_window",
        primary_fingerprint="9f564a92c13fc055",
        oracle_fingerprint="0bf1f8eca1106954",
        rationale=(
            "window refill decides injection instants; the batched train "
            "builder must admit exactly the segments the event path admits"
        ),
    ),
    ParityPair(
        name="packet-retransmit",
        primary="src/repro/sim/packet_batch.py::BatchedPacketCore._retransmit",
        oracle="src/repro/sim/transport.py::PacketTransport._retransmit",
        primary_fingerprint="37a6ebcdb5d9b8bd",
        oracle_fingerprint="fd26283ae06177a7",
        rationale=(
            "retransmission bookkeeping (counters, abandoned-flow "
            "settling) is part of the bit-exact metrics contract"
        ),
    ),
    ParityPair(
        name="packet-forward-path",
        primary="src/repro/sim/packet_batch.py::BatchedPacketCore._process_train",
        oracle="src/repro/fabric/packetsim.py::PacketLevelNetwork._forward",
        primary_fingerprint="33bc9e9acfbc407a",
        oracle_fingerprint="c4163d3ff48e8e85",
        rationale=(
            "the per-hop float pipeline (queueing, tail-drop, ECN, "
            "serialization) must evolve in lock-step across the engines; "
            "the bodies differ structurally, so each side pins its own "
            "fingerprint"
        ),
    ),
    ParityPair(
        name="packet-vector-fifo-chain",
        primary="src/repro/sim/packet_batch.py::fifo_departure_chain",
        oracle="src/repro/fabric/packetsim.py::PacketLevelNetwork._forward",
        primary_fingerprint="acb9255151632e98",
        oracle_fingerprint="c4163d3ff48e8e85",
        rationale=(
            "the vectorised FIFO departure chain replays the event "
            "engine's accumulate/subtract/add order elementwise; its "
            "prefix-commit caller assumes each committed element is "
            "bitwise what the scalar loop would produce"
        ),
    ),
    ParityPair(
        name="packet-vector-advance",
        primary="src/repro/sim/packet_batch.py::BatchedPacketCore._vector_advance",
        oracle="src/repro/sim/packet_batch.py::BatchedPacketCore._process_train",
        primary_fingerprint="c2d3f3820c598f40",
        oracle_fingerprint="33bc9e9acfbc407a",
        rationale=(
            "the vector pass commits a prefix of exactly the states the "
            "scalar train loop would reach (clock, busy_until, counters, "
            "sample folds); an edit to either advance path must re-prove "
            "the consistency-check truncation rules"
        ),
    ),
    ParityPair(
        name="packet-segment-layout",
        primary="src/repro/sim/packet_batch.py::BatchedPacketCore.__init__",
        oracle="src/repro/sim/transport.py::segment_layout",
        primary_fingerprint="0d5a4c6dbf97cdb0",
        oracle_fingerprint="3b50aa2f884b6368",
        rationale=(
            "both engines segment flows through the shared "
            "segment_layout helper; the batched constructor must keep "
            "calling it (the segment grid defines every later float)"
        ),
    ),
)
