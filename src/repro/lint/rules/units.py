"""Rule U101: the ``_bps/_bits/_bytes/_seconds`` suffix discipline.

The simulator is SI-internal (seconds, bits, bits-per-second; see
:mod:`repro.sim.units`), and the convention that a variable's unit rides
in its name suffix is what keeps 800-line engine files auditable.  This
rule turns the convention from a comment into a check: quantities with
*different* unit suffixes may not be added or subtracted, and magic
power-of-ten literals next to a suffixed quantity must go through the
:mod:`repro.sim.units` helpers instead.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from repro.lint.framework import FileContext, Rule, register_rule

#: name suffix -> unit dimension.  ``_bits`` and ``_bytes`` are distinct
#: on purpose: mixing them is the classic factor-of-8 bug.
UNIT_SUFFIXES = {
    "_bps": "rate (bits/second)",
    "_bits": "data (bits)",
    "_bytes": "data (bytes)",
    "_seconds": "time (seconds)",
}

#: Power-of-ten literals the units helpers already name (KILO/MEGA/GIGA,
#: MILLISECONDS/MICROSECONDS/NANOSECONDS, GBPS, ...).
_MAGIC_LITERALS = {1e3, 1e6, 1e9, 1e12, 1e-3, 1e-6, 1e-9}

#: The module that defines the helpers; it is allowed its own literals.
_UNITS_HOME = "src/repro/sim/units.py"


def unit_of(name: Optional[str]) -> Optional[str]:
    """The unit dimension a variable name declares via its suffix."""
    if not name:
        return None
    for suffix, dimension in UNIT_SUFFIXES.items():
        if name.endswith(suffix):
            return dimension
    return None


def _name_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_magic_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) in _MAGIC_LITERALS
    )


@register_rule
class UnitSuffixRule(Rule):
    """U101: suffixed quantities keep their dimension through ``+``/``-``.

    Adding seconds to bits type-checks, runs, and produces a plausible
    float; only the plotted curve is wrong.  The suffix convention makes
    the mistake *visible* in the source -- this rule makes it fatal.  The
    companion check flags bare ``1e9``-style scale factors multiplied or
    divided into a suffixed quantity: ``rate_bps / 1e9`` silently encodes
    "gigabits" where :func:`repro.sim.units.to_gbps` says it.
    """

    code = "U101"
    name = "unit-suffix-discipline"
    rationale = (
        "mixed-unit arithmetic and magic scale factors produce plausible "
        "but wrong numbers that no runtime test can distinguish"
    )
    paths = ("src/repro/",)
    node_types = (ast.BinOp, ast.AugAssign)

    def applies_to(self, rel: str) -> bool:
        return super().applies_to(rel) and rel != _UNITS_HOME

    def visit(self, node: ast.AST, stack: Sequence[ast.AST], ctx: FileContext) -> None:
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_mix(node, node.left, node.right, ctx)
            elif isinstance(node.op, (ast.Mult, ast.Div)):
                self._check_literal(node, ctx)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            self._check_mix(node, node.target, node.value, ctx)

    def _check_mix(
        self, node: ast.AST, left: ast.AST, right: ast.AST, ctx: FileContext
    ) -> None:
        left_name, right_name = _name_of(left), _name_of(right)
        left_unit, right_unit = unit_of(left_name), unit_of(right_name)
        if left_unit is None or right_unit is None:
            return
        if left_unit != right_unit:
            ctx.report(
                self, node,
                f"adding/subtracting {left_name!r} [{left_unit}] and "
                f"{right_name!r} [{right_unit}] mixes unit dimensions; "
                "convert through repro.sim.units first",
            )

    def _check_literal(self, node: ast.BinOp, ctx: FileContext) -> None:
        for literal, other in ((node.left, node.right), (node.right, node.left)):
            if _is_magic_literal(literal) and _name_of(other) is not None:
                value = literal.value  # type: ignore[attr-defined]
                ctx.report(
                    self, node,
                    f"bare scale factor {value!r} combined with "
                    f"{_name_of(other)!r}; use the repro.sim.units "
                    "constants/helpers (GBPS, to_microseconds, ...) so the "
                    "unit conversion is named",
                )
                return
