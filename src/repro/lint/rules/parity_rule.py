"""Rule D003: parity-paired implementations may not drift one-sidedly.

See :mod:`repro.lint.parity` for the fingerprint machinery and
:mod:`repro.lint.parity_pairs` for the declarations this rule enforces.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.lint.framework import Finding, LintRun, Rule, register_rule
from repro.lint.parity import (
    ParityPair,
    find_function,
    fingerprint_node,
    split_reference,
)
from repro.lint.parity_pairs import PARITY_PAIRS


def check_pairs(
    pairs: Iterable[ParityPair], run: LintRun
) -> List[Finding]:
    """Compare every declared pair's live fingerprints to the blessed ones.

    Exposed as a function (taking the pairs explicitly) so tests can
    exercise the drift detection on synthetic pairs without touching the
    real declarations.
    """
    findings: List[Finding] = []
    for pair in pairs:
        drifted: List[Tuple[str, str, str, int]] = []
        broken = False
        for role, reference, blessed in pair.sides():
            rel, qualname = split_reference(reference)
            live, line = _live_fingerprint(run, rel, qualname)
            if live is None:
                findings.append(
                    Finding(
                        rule="D003",
                        path=rel,
                        line=0,
                        message=(
                            f"parity pair {pair.name!r}: {role} function "
                            f"{qualname!r} not found; update the pairing in "
                            "src/repro/lint/parity_pairs.py"
                        ),
                    )
                )
                broken = True
                continue
            if live != blessed:
                drifted.append((role, reference, live, line))
        if broken or not drifted:
            continue
        partner = {"primary": "oracle", "oracle": "primary"}
        for role, reference, live, line in drifted:
            rel, qualname = split_reference(reference)
            others = [d for d in drifted if d[1] != reference]
            if others:
                detail = (
                    "both sides changed; re-run the parity suite and bless "
                    f"the new fingerprints (live {role} fingerprint {live})"
                )
            else:
                detail = (
                    f"the {partner[role]} side is untouched -- update it to "
                    "match (re-running the parity suite) or re-declare the "
                    f"pairing with the new fingerprint {live}"
                )
            findings.append(
                Finding(
                    rule="D003",
                    path=rel,
                    line=line,
                    message=(
                        f"parity pair {pair.name!r}: {role} {qualname!r} "
                        f"changed but {detail}; declarations live in "
                        "src/repro/lint/parity_pairs.py "
                        "(python -m repro.lint --print-fingerprints)"
                    ),
                )
            )
    return findings


def _live_fingerprint(
    run: LintRun, rel: str, qualname: str
) -> Tuple[Optional[str], int]:
    """Fingerprint a function from the run's parsed files (or from disk)."""
    source = run.file(rel)
    tree: Optional[ast.Module]
    if source is not None:
        tree = source.tree
    elif run.repo_root is not None and (run.repo_root / rel).exists():
        tree = ast.parse((run.repo_root / rel).read_text())
    else:
        return None, 0
    if tree is None:
        return None, 0
    node = find_function(tree, qualname)
    if node is None:
        return None, 0
    return fingerprint_node(node), node.lineno


@register_rule
class ParityPairRule(Rule):
    """D003: an edit to one side of a declared pair fails lint.

    The runtime parity suites (``test_fluid_parity.py``,
    ``test_packet_parity.py``) only catch divergence on the scenarios they
    run; this rule catches the *edit* itself.  Each pair declaration
    carries the blessed fingerprint of both sides; changing either
    function's code (docstrings and comments excluded) fails lint until
    the declaration is updated -- a reviewable act that should accompany a
    green parity-suite run.
    """

    code = "D003"
    name = "parity-pair-drift"
    rationale = (
        "one-sided edits to implementation/oracle pairs ship silent "
        "divergence the runtime parity gate may not cover"
    )
    repo_wide = True

    def check_repo(self, run: LintRun) -> Iterable[Finding]:
        return check_pairs(PARITY_PAIRS, run)
