"""Rule R201: registry completeness and docs integrity, one checker.

Absorbs ``scripts/check_docs.py`` (markdown link integrity, scenario
catalogue rows) and promotes the fidelity suite's runtime registry-drift
guard to a static check: a scenario or topology family can only register
if its documentation row, candidate moves (or an explicit exemption) and
declared fluid-vs-packet tolerances land with it.

The individual checks are plain functions over explicit inputs so tests
can drive them with synthetic registries; the rule glues them to the live
registries and the repo tree.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Sequence, Set

from repro.lint.framework import Finding, LintRun, Rule, register_rule

#: ``[text](target)`` -- deliberately simple; code spans contain no links.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Topology families allowed to register zero candidate moves, with the
#: reviewed reason.  Everything else must offer the planner at least one
#: move -- a family the control loop cannot act on silently reduces every
#: adaptive experiment over it to the static baseline.
MOVE_EXEMPT_FAMILIES: Mapping[str, str] = {
    "torus": "already the paper's target shape; grid-to-torus lands here",
}

#: Where the fidelity tolerance tables live.
FIDELITY_TEST = "tests/test_backend_fidelity.py"

#: Mesh families gated by the small-scenario table rather than the
#: topology-family table.
_MESH_FAMILIES = ("grid", "torus")


def _finding(path: str, message: str, line: int = 0) -> Finding:
    return Finding(rule="R201", path=path, line=line, message=message)


def check_links(repo_root: Path) -> List[Finding]:
    """Every relative markdown link in README/docs resolves to a file."""
    findings: List[Finding] = []
    pages = [repo_root / "README.md", *sorted((repo_root / "docs").glob("*.md"))]
    for page in pages:
        if not page.exists():
            continue
        rel = page.relative_to(repo_root).as_posix()
        for number, line in enumerate(page.read_text().splitlines(), start=1):
            for target in _LINK.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                path = target.split("#", 1)[0]
                if not path:  # same-page anchor
                    continue
                if not (page.parent / path).resolve().exists():
                    findings.append(
                        _finding(rel, f"broken link {target!r}", number)
                    )
    return findings


def check_scenario_docs(
    scenario_names: Sequence[str], catalog_text: str, catalog_rel: str
) -> List[Finding]:
    """Every registered scenario appears as `` `name` `` in the catalogue."""
    return [
        _finding(
            catalog_rel,
            f"scenario {name!r} is registered but has no docs table row",
        )
        for name in scenario_names
        if f"`{name}`" not in catalog_text
    ]


def check_family_moves(
    family_moves: Mapping[str, Sequence[str]],
    exemptions: Mapping[str, str],
    registry_rel: str,
) -> List[Finding]:
    """Every topology family has >= 1 registered move or an exemption."""
    findings: List[Finding] = []
    for family, moves in sorted(family_moves.items()):
        if moves or family in exemptions:
            continue
        findings.append(
            _finding(
                registry_rel,
                f"topology family {family!r} registers no candidate moves "
                "and is not exempt (MOVE_EXEMPT_FAMILIES in "
                "src/repro/lint/rules/registry_docs.py); the control loop "
                "cannot act on it",
            )
        )
    stale = sorted(set(exemptions) - set(family_moves))
    for family in stale:
        findings.append(
            _finding(
                registry_rel,
                f"move exemption for unknown topology family {family!r}; "
                "remove it from MOVE_EXEMPT_FAMILIES",
            )
        )
    for family in sorted(set(exemptions) & set(family_moves)):
        if family_moves[family]:
            findings.append(
                _finding(
                    registry_rel,
                    f"topology family {family!r} now registers moves; drop "
                    "its stale MOVE_EXEMPT_FAMILIES entry",
                )
            )
    return findings


def declared_table_keys(test_text: str) -> Dict[str, Set[str]]:
    """String keys of every module-level ``NAME = {...}`` tolerance table."""
    tables: Dict[str, Set[str]] = {}
    tree = ast.parse(test_text)
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or not isinstance(node.value, ast.Dict):
            continue
        keys = {
            key.value
            for key in node.value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        tables[target.id] = keys
    return tables


def check_tolerance_tables(
    expected_small: Set[str],
    expected_topology: Set[str],
    expected_loop: Set[str],
    tables: Mapping[str, Set[str]],
    test_rel: str,
) -> List[Finding]:
    """The fidelity tolerance tables cover the registry exactly.

    *expected_small*: registered mesh scenarios on small default fabrics
    (the set the fidelity gate sweeps); *expected_topology*: scenarios on
    non-mesh topology families; *expected_loop*: scenarios whose default
    controller is the closed loop.  Each must match its declared table --
    in both directions, so stale rows fail too.
    """
    findings: List[Finding] = []

    def compare(expected: Set[str], names: Sequence[str], what: str) -> None:
        declared: Set[str] = set()
        missing_tables = [name for name in names if name not in tables]
        for name in names:
            declared |= tables.get(name, set())
        if missing_tables:
            findings.append(
                _finding(
                    test_rel,
                    f"expected tolerance table(s) {missing_tables} not found "
                    f"as module-level dict literals",
                )
            )
            return
        for name in sorted(expected - declared):
            findings.append(
                _finding(
                    test_rel,
                    f"{what} scenario {name!r} declares no fluid-vs-packet "
                    f"tolerance in {'/'.join(names)}; new scenarios must land "
                    "with a measured divergence budget",
                )
            )
        for name in sorted(declared - expected):
            findings.append(
                _finding(
                    test_rel,
                    f"stale {what} tolerance row {name!r} "
                    f"(in {'/'.join(names)}) matches no registered scenario",
                )
            )

    compare(expected_small, ["TOLERANCES"], "small mesh")
    compare(expected_topology, ["TOPOLOGY_TOLERANCES"], "topology-family")
    compare(
        expected_loop,
        ["LOOP_TOLERANCES", "TOPOLOGY_LOOP_TOLERANCES"],
        "loop-controlled",
    )
    return findings


@register_rule
class RegistryDocsRule(Rule):
    """R201: registries, docs and tolerance tables move together.

    Promotes ``scripts/check_docs.py`` and the fidelity suite's
    runtime drift guards to one static pass with one suppression
    mechanism: markdown links resolve, every registered scenario has a
    catalogue row, every topology family offers the planner a move (or
    carries a reviewed exemption), and every scenario the fidelity gate
    should sweep declares its divergence budget before it lands.
    """

    code = "R201"
    name = "registry-docs-completeness"
    rationale = (
        "a scenario, family or tolerance row that drifts from its "
        "registry silently narrows every gate built on top of it"
    )
    repo_wide = True

    def check_repo(self, run: LintRun) -> Iterable[Finding]:
        repo_root = run.repo_root
        if repo_root is None:
            return []
        findings = list(check_links(repo_root))
        findings.extend(self._scenario_checks(repo_root))
        return findings

    def _scenario_checks(self, repo_root: Path) -> List[Finding]:
        from repro.core.candidates import candidate_moves
        from repro.experiments.scenarios import list_scenarios
        from repro.fabric.topologies import topology_catalog

        findings: List[Finding] = []
        scenarios = list_scenarios()

        catalog_path = repo_root / "docs" / "scenarios.md"
        if catalog_path.exists():
            findings.extend(
                check_scenario_docs(
                    [scenario.name for scenario in scenarios],
                    catalog_path.read_text(),
                    "docs/scenarios.md",
                )
            )
        else:
            findings.append(
                _finding("docs/scenarios.md", "scenario catalogue page missing")
            )

        family_moves = {
            family.name: candidate_moves(family.name)
            for family in topology_catalog()
        }
        findings.extend(
            check_family_moves(
                family_moves,
                MOVE_EXEMPT_FAMILIES,
                "src/repro/fabric/topologies/registry.py",
            )
        )

        test_path = repo_root / FIDELITY_TEST
        if not test_path.exists():
            findings.append(
                _finding(FIDELITY_TEST, "fidelity tolerance tables missing")
            )
            return findings
        expected_small = set()
        expected_topology = set()
        expected_loop = set()
        for scenario in scenarios:
            params = scenario.parameters()
            topology = params.get("topology")
            if topology in _MESH_FAMILIES:
                small = (
                    int(params.get("rows", 0)) * int(params.get("columns", 0))
                    <= 9
                )
                if small:
                    expected_small.add(scenario.name)
            else:
                expected_topology.add(scenario.name)
            if params.get("controller") == "loop":
                expected_loop.add(scenario.name)
        findings.extend(
            check_tolerance_tables(
                expected_small,
                expected_topology,
                expected_loop,
                declared_table_keys(test_path.read_text()),
                FIDELITY_TEST,
            )
        )
        return findings
