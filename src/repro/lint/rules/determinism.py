"""Rules D001/D002: no unseeded randomness, no order-unstable iteration.

The reproduction's headline guarantees -- same seed, bit-identical rows,
for any sweep worker count, on either backend -- only hold while every
stochastic draw flows through :mod:`repro.sim.random` and no float
accumulation or event scheduling depends on the iteration order of a
``set``.  These rules enforce both properties at the source level.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Sequence, Tuple

from repro.lint.framework import FileContext, Rule, register_rule

#: Directories considered "simulation code": everything whose determinism
#: the parity suites rely on.  The CLI and analysis/report layers may read
#: the environment or the clock; the simulation core may not.
SIM_PATHS = (
    "src/repro/sim/",
    "src/repro/core/",
    "src/repro/fabric/",
    "src/repro/workloads/",
    "src/repro/phy/",
)

#: The one module allowed to construct numpy generators: every stochastic
#: component draws from a named stream derived from the experiment seed.
SEED_HOME = "src/repro/sim/random.py"


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_rule
class UnseededSourceRule(Rule):
    """D001: every draw must come from the seeded named-stream factory.

    ``random`` module globals share one process-wide Mersenne state, numpy
    generators constructed outside :mod:`repro.sim.random` bypass the
    named-stream seed derivation, and wall-clock or environment reads make
    a run a function of when/where it ran.  Any of them silently breaks
    the bit-identical-rows contract the sweep engine and both simulation
    backends promise.
    """

    code = "D001"
    name = "unseeded-nondeterministic-source"
    rationale = (
        "a single unseeded draw or clock/env read breaks run-to-run and "
        "worker-count bit-determinism everywhere downstream"
    )
    paths = ("src/repro/",)
    node_types = (ast.Call, ast.Subscript)

    #: Call prefixes that are nondeterministic wherever they appear.
    _BANNED_CALLS = {
        "time.time": "wall-clock read",
        "time.time_ns": "wall-clock read",
        "os.urandom": "OS entropy read",
        "uuid.uuid1": "host/time-derived identifier",
        "uuid.uuid4": "OS-entropy identifier",
    }
    _BANNED_DATETIME = {"now", "utcnow", "today"}

    def applies_to(self, rel: str) -> bool:
        return super().applies_to(rel) and rel != SEED_HOME

    def visit(self, node: ast.AST, stack: Sequence[ast.AST], ctx: FileContext) -> None:
        if isinstance(node, ast.Call):
            self._check_call(node, ctx)
        elif isinstance(node, ast.Subscript):
            self._check_env_read(node, ctx)

    def _check_call(self, node: ast.Call, ctx: FileContext) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in self._BANNED_CALLS:
            ctx.report(
                self, node,
                f"{dotted}() is a {self._BANNED_CALLS[dotted]}; simulation "
                "state may only depend on the experiment seed",
            )
            return
        head, _, tail = dotted.partition(".")
        if head == "random" and tail:
            ctx.report(
                self, node,
                f"{dotted}() draws from the process-wide unseeded Mersenne "
                "state; use repro.sim.random.RandomStreams named streams",
            )
            return
        if ("np.random." in dotted or "numpy.random." in dotted):
            ctx.report(
                self, node,
                f"{dotted}() constructs/draws outside {SEED_HOME}; every "
                "generator must be a named stream derived from the run seed",
            )
            return
        last = dotted.rsplit(".", 1)[-1]
        if last in self._BANNED_DATETIME and "datetime" in dotted:
            ctx.report(
                self, node,
                f"{dotted}() reads the wall clock; derive timestamps from "
                "simulation time or pass them in explicitly",
            )
            return
        if dotted in ("os.getenv", "os.environ.get") and self._in_sim(ctx):
            ctx.report(
                self, node,
                f"{dotted}() makes simulation behaviour depend on the "
                "launching environment; thread configuration through "
                "ExperimentSpec/scenario params instead",
            )

    def _check_env_read(self, node: ast.AST, ctx: FileContext) -> None:
        if not self._in_sim(ctx):
            return
        if isinstance(node, ast.Subscript) and _dotted(node.value) == "os.environ":
            ctx.report(
                self, node,
                "os.environ[...] read in simulation code; thread "
                "configuration through ExperimentSpec/scenario params",
            )

    @staticmethod
    def _in_sim(ctx: FileContext) -> bool:
        return any(ctx.source.rel.startswith(prefix) for prefix in SIM_PATHS)


# --------------------------------------------------------------------------- #
# D002: order-unstable iteration feeding floats or the event calendar
# --------------------------------------------------------------------------- #
#: Annotation heads meaning "this is a set".
_SET_HEADS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
#: Annotation heads meaning "this is a dict"; combined with a set value
#: annotation they yield ``dict_of_set``.
_DICT_HEADS = {"dict", "Dict", "DefaultDict", "defaultdict", "Mapping",
               "MutableMapping"}
#: Methods that return a set when called on a set.
_SET_METHODS = {"copy", "union", "intersection", "difference",
                "symmetric_difference"}
#: Calls whose result is order-stable regardless of the argument.
_STABILISERS = {"sorted", "min", "max", "sum", "len"}
#: Calls that preserve the (unstable) order of a set argument.
_ORDER_PRESERVERS = {"list", "tuple", "iter", "reversed", "enumerate"}
#: Scheduling/heap calls that make iteration order observable.
_SCHEDULING_CALLS = {"heappush", "heappushpop", "schedule", "schedule_at",
                     "call_at", "call_later"}

#: Inferred kinds.
_SET = "set"
_DICT_OF_SET = "dict_of_set"
_SET_KEYED_DICT = "set_keyed_dict"


def _annotation_kind(node: Optional[ast.AST]) -> Optional[str]:
    """Classify a type annotation as set / dict-of-set / neither."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: cheap textual probe.
        text = node.value
        head = text.split("[", 1)[0].strip()
        if head in _SET_HEADS:
            return _SET
        if head in _DICT_HEADS and ("Set[" in text or "set[" in text):
            return _DICT_OF_SET
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = node.attr if isinstance(node, ast.Attribute) else node.id
        return _SET if name in _SET_HEADS else None
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if head_name in _SET_HEADS:
            return _SET
        if head_name in _DICT_HEADS:
            slice_node = node.slice
            if isinstance(slice_node, ast.Tuple) and len(slice_node.elts) == 2:
                if _annotation_kind(slice_node.elts[1]) == _SET:
                    return _DICT_OF_SET
    return None


class _ScopeEnv:
    """Inferred kinds of the names visible inside one function."""

    def __init__(self, locals_: Dict[str, str], attrs: Dict[str, str]) -> None:
        self.locals = locals_
        self.attrs = attrs  # "self.<name>" attribute kinds from the class


def _classify(node: ast.AST, env: _ScopeEnv) -> Optional[str]:
    """Best-effort static kind of an expression (None = not set-like)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return _SET
    if isinstance(node, ast.DictComp):
        for generator in node.generators:
            if _classify(generator.iter, env) in (_SET, _DICT_OF_SET):
                return _SET_KEYED_DICT
        return None
    if isinstance(node, ast.Name):
        return env.locals.get(node.id)
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return env.attrs.get(node.attr)
        return None
    if isinstance(node, ast.Subscript):
        if _classify(node.value, env) == _DICT_OF_SET:
            return _SET
        return None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        left = _classify(node.left, env)
        right = _classify(node.right, env)
        if _SET in (left, right):
            return _SET
        return None
    if isinstance(node, ast.IfExp):
        body = _classify(node.body, env)
        orelse = _classify(node.orelse, env)
        return body if body == orelse else None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return _SET
            if func.id in _STABILISERS:
                return None
            if func.id in _ORDER_PRESERVERS and node.args:
                inner = _classify(node.args[0], env)
                if inner in (_SET, _SET_KEYED_DICT):
                    return inner
                return None
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_METHODS:
                if _classify(func.value, env) == _SET:
                    return _SET
            if func.attr in ("keys", "items"):
                if _classify(func.value, env) == _SET_KEYED_DICT:
                    return _SET_KEYED_DICT
        return None
    return None


def _build_env(func: ast.AST, attrs: Dict[str, str]) -> _ScopeEnv:
    """Infer local-name kinds from annotations and simple assignments."""
    locals_: Dict[str, str] = {}
    env = _ScopeEnv(locals_, attrs)
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            kind = _annotation_kind(arg.annotation)
            if kind:
                locals_[arg.arg] = kind
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            kind = _annotation_kind(node.annotation)
            if kind:
                locals_[node.target.id] = kind
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                kind = _classify(node.value, env)
                if kind:
                    locals_[target.id] = kind
    return env


def _class_attr_kinds(cls: ast.ClassDef) -> Dict[str, str]:
    """Kinds of ``self.<attr>`` from annotated assignments in the class."""
    attrs: Dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.AnnAssign):
            continue
        target = node.target
        kind = _annotation_kind(node.annotation)
        if not kind:
            continue
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            attrs[target.attr] = kind
        elif isinstance(target, ast.Name):
            attrs[target.id] = kind
    return attrs


def _order_sensitive_sink(body: Sequence[ast.stmt]) -> Optional[str]:
    """Does the loop body accumulate floats or schedule events?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
            ):
                return "float accumulation (augmented assignment)"
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                return "float accumulation (additive arithmetic)"
            if isinstance(node, ast.Call):
                func = node.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name in _SCHEDULING_CALLS:
                    return f"event scheduling ({name})"
    return None


@register_rule
class UnstableIterationRule(Rule):
    """D002: set iteration must not feed floats or the event calendar.

    Float addition is not associative, and the event calendar makes
    insertion order observable; iterating a ``set`` (or anything derived
    from one) into either makes the result a function of hash-table
    layout.  Integer sets happen to iterate reproducibly on today's
    CPython, string-keyed sets do not even survive a ``PYTHONHASHSEED``
    change -- neither is a contract.  Wrap the iterable in ``sorted()``
    (keyed by a registration index where elements are not comparable) or
    keep insertion-ordered structures (list/dict) instead.
    """

    code = "D002"
    name = "order-unstable-iteration"
    rationale = (
        "set iteration order feeding float accumulation or event "
        "scheduling silently varies with hash-table layout"
    )
    paths = SIM_PATHS
    node_types = (ast.For,)

    def begin_file(self, ctx: FileContext) -> None:
        self._env_cache: Dict[int, _ScopeEnv] = {}

    def visit(self, node: ast.AST, stack: Sequence[ast.AST], ctx: FileContext) -> None:
        assert isinstance(node, ast.For)
        func, cls = self._enclosing(stack)
        if func is None:
            return
        env = self._env_for(func, cls)
        kind = _classify(node.iter, env)
        if kind not in (_SET, _SET_KEYED_DICT):
            return
        sink = _order_sensitive_sink(node.body)
        if sink is None:
            return
        what = (
            "a set-keyed dict" if kind == _SET_KEYED_DICT else "a set"
        )
        ctx.report(
            self, node,
            f"iterating {what} here feeds {sink}; iterate a sorted() or "
            "insertion-ordered view instead",
        )

    def _enclosing(
        self, stack: Sequence[ast.AST]
    ) -> Tuple[Optional[ast.AST], Optional[ast.ClassDef]]:
        func = None
        cls = None
        for node in reversed(stack):
            if func is None and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                func = node
            elif cls is None and isinstance(node, ast.ClassDef):
                cls = node
            if func is not None and cls is not None:
                break
        return func, cls

    def _env_for(
        self, func: ast.AST, cls: Optional[ast.ClassDef]
    ) -> _ScopeEnv:
        cached = self._env_cache.get(id(func))
        if cached is None:
            attrs = _class_attr_kinds(cls) if cls is not None else {}
            cached = _build_env(func, attrs)
            self._env_cache[id(func)] = cached
        return cached
