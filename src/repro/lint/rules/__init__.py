"""Built-in rule families; importing this package registers them all."""

from repro.lint.rules import determinism, parity_rule, registry_docs, units

__all__ = ["determinism", "parity_rule", "registry_docs", "units"]
