"""The grandfathered-findings baseline.

A baseline entry acknowledges one existing violation so the lint gate can
land before every historical finding is fixed, without letting *new*
violations ride in behind it.  Entries key on ``(rule, path, hash of the
stripped source line)`` rather than line numbers, so unrelated edits that
shift a file do not invalidate the baseline -- but editing the offending
line itself (or adding a second identical violation) surfaces immediately.

Format, one entry per line (``#`` comments and blank lines ignored)::

    D002 src/repro/sim/example.py 5f1d2c0a9e3b17c4 2

i.e. rule, path, line-hash, and how many identical findings are excused.
``python -m repro.lint --write-baseline`` regenerates the file from the
current findings; every remaining entry should carry a justification
comment.  In ``--strict`` mode a *stale* entry (one that no longer
matches any finding) is itself an error, so the baseline can only shrink.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.framework import Finding

#: Default baseline filename, resolved against the repo root.
BASELINE_NAME = "lint-baseline.txt"

BaselineKey = Tuple[str, str, str]


def _line_hash(source_line: str) -> str:
    digest = hashlib.sha256(source_line.strip().encode("utf-8")).hexdigest()
    return digest[:16]


def finding_key(finding: Finding) -> BaselineKey:
    """The baseline identity of one finding."""
    return (finding.rule, finding.path, _line_hash(finding.source_line))


def load_baseline(path: Path) -> Counter:
    """Parse a baseline file into a ``Counter`` of keys (missing = empty)."""
    entries: Counter = Counter()
    if not path.exists():
        return entries
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(
                f"{path}:{number}: expected 'RULE PATH HASH COUNT', got {raw!r}"
            )
        rule, rel, line_hash, count = parts
        entries[(rule, rel, line_hash)] += int(count)
    return entries


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the baseline covering *findings*; returns the entry count."""
    counts: Counter = Counter(finding_key(f) for f in findings)
    lines = [
        "# repro.lint baseline: grandfathered findings, one per line as",
        "#   RULE PATH LINE-HASH COUNT   # justification",
        "# Keys hash the offending source line, so entries survive line-number",
        "# drift but not edits to the violation itself.  Regenerate with",
        "#   python -m repro.lint --write-baseline",
        "# and justify every entry you keep; --strict fails on stale entries,",
        "# so this file can only shrink.",
    ]
    for (rule, rel, line_hash), count in sorted(counts.items()):
        lines.append(f"{rule} {rel} {line_hash} {count}")
    path.write_text("\n".join(lines) + "\n")
    return len(counts)


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], List[BaselineKey]]:
    """Split findings into (new, stale-baseline-keys).

    Each baseline count excuses that many identical findings; anything
    beyond the count is new.  Keys whose budget was not fully consumed are
    stale -- the violation they excused no longer exists.
    """
    budget: Dict[BaselineKey, int] = dict(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
        else:
            new.append(finding)
    stale = sorted(key for key, remaining in budget.items() if remaining > 0)
    return new, stale
