"""Version-stable AST fingerprints for parity-paired functions.

The repo keeps several "same arithmetic, two implementations" pairs whose
agreement the runtime parity suites pin bit-for-bit: the fluid
incremental allocator against its reference oracle, and the batched
packet engine against the event engine.  Rule **D003** makes the pairing
itself a static declaration: each :class:`ParityPair` names the two
functions and the *fingerprint* of each side's AST at the last instant
the pair was verified.  Editing either side changes its fingerprint and
fails lint until the declaration in :mod:`repro.lint.parity_pairs` is
updated -- which is exactly the reviewable act of re-asserting "I re-ran
the parity suite over both sides".

Fingerprints hash a normalised structural dump of the function body:

* docstrings are stripped (prose edits never fire the rule),
* comments and blank lines never reach the AST at all,
* location fields and version-varying fields (``type_comment``,
  ``type_params``) are excluded, so the same source text fingerprints
  identically on every supported CPython (3.9-3.12).
"""

from __future__ import annotations

import ast
import copy
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

#: AST fields excluded from the dump: source locations plus fields that
#: newer interpreters add to otherwise-identical syntax.
_EXCLUDED_FIELDS = frozenset(
    ("lineno", "col_offset", "end_lineno", "end_col_offset",
     "type_comment", "type_params")
)


@dataclass(frozen=True)
class ParityPair:
    """One declared implementation/oracle pairing.

    ``primary`` and ``oracle`` are ``"repo/relative/path.py::Qual.name"``
    references; the fingerprints are the blessed values the lint rule
    compares the live tree against.
    """

    name: str
    primary: str
    oracle: str
    primary_fingerprint: str
    oracle_fingerprint: str
    rationale: str = ""

    def sides(self) -> Tuple[Tuple[str, str, str], Tuple[str, str, str]]:
        """Both sides as ``(role, reference, blessed_fingerprint)``."""
        return (
            ("primary", self.primary, self.primary_fingerprint),
            ("oracle", self.oracle, self.oracle_fingerprint),
        )


def split_reference(reference: str) -> Tuple[str, str]:
    """Split ``path.py::Qual.name`` into its path and qualname parts."""
    path, sep, qualname = reference.partition("::")
    if not sep or not qualname:
        raise ValueError(
            f"parity reference must look like 'path.py::Qual.name', got {reference!r}"
        )
    return path, qualname


def _strip_docstring(node: ast.AST) -> None:
    body = getattr(node, "body", None)
    if (
        isinstance(body, list)
        and body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        del body[0]


def _stable_dump(node, pieces: List[str]) -> None:
    if isinstance(node, ast.AST):
        pieces.append(type(node).__name__)
        pieces.append("(")
        for name in node._fields:
            if name in _EXCLUDED_FIELDS:
                continue
            pieces.append(name)
            pieces.append("=")
            _stable_dump(getattr(node, name, None), pieces)
            pieces.append(",")
        pieces.append(")")
    elif isinstance(node, list):
        pieces.append("[")
        for item in node:
            _stable_dump(item, pieces)
            pieces.append(",")
        pieces.append("]")
    else:
        pieces.append(repr(node))


def find_function(tree: ast.Module, qualname: str):
    """Locate a (possibly nested or method) function by dotted qualname."""
    scope: List[ast.AST] = [tree]
    node: Optional[ast.AST] = None
    for part in qualname.split("."):
        node = None
        for candidate in scope:
            for child in getattr(candidate, "body", []):
                if (
                    isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                    and child.name == part
                ):
                    node = child
                    break
            if node is not None:
                break
        if node is None:
            return None
        scope = [node]
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return node
    return None


def fingerprint_node(node) -> str:
    """The normalised-AST fingerprint of one function node."""
    # Deep-copy so stripping the docstring never mutates the caller's tree.
    clone = copy.deepcopy(node)
    _strip_docstring(clone)
    pieces: List[str] = []
    _stable_dump(clone, pieces)
    digest = hashlib.sha256("".join(pieces).encode("utf-8")).hexdigest()
    return digest[:16]


def fingerprint_source(text: str, qualname: str) -> Optional[str]:
    """Fingerprint *qualname* inside the given source text, if present."""
    node = find_function(ast.parse(text), qualname)
    if node is None:
        return None
    return fingerprint_node(node)


def fingerprint_reference(reference: str, repo_root: Path) -> Optional[str]:
    """Fingerprint a ``path.py::Qual.name`` reference against the repo."""
    rel, qualname = split_reference(reference)
    path = repo_root / rel
    if not path.exists():
        return None
    return fingerprint_source(path.read_text(), qualname)
