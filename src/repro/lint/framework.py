"""The rule framework: findings, suppressions, the shared AST walk.

Every correctness guarantee in this reproduction -- allocator parity,
engine bit-exactness, sweep worker-count determinism -- is enforced at
runtime by parity tests that catch drift *after* it ships.  ``repro.lint``
checks the same invariants at the source level: rules are small classes
registered with the :func:`register_rule` decorator (mirroring the
controller/scenario/topology registries), and every AST rule hooks into a
**single shared walk** per file -- the framework parses each source file
once, walks its tree once, and dispatches each node to the rules that
declared an interest in its type, together with the ancestor stack (so a
rule can see the enclosing function or class without re-walking).

Findings can be silenced two ways:

* inline, with a ``# repro: ignore[D001]`` comment on the offending line
  (``# repro: ignore`` silences every rule on that line), or
* via a checked-in baseline file for grandfathered violations
  (:mod:`repro.lint.baseline`).

Rules fall into two shapes.  *File rules* declare ``node_types`` and
implement :meth:`Rule.visit` (plus optional ``begin_file``/``end_file``
hooks); *repo rules* (parity pairing, registry/docs completeness) set
``repo_wide = True`` and implement :meth:`Rule.check_repo`, which sees the
whole run.  One rule may be both.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Type


class LintError(ValueError):
    """Raised for duplicate rule codes, unknown rule names or bad configs."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``line`` is 1-based; file-level findings (a missing docs row, a parity
    declaration gone stale) use line 0.  ``source_line`` carries the
    stripped text of the offending line -- the baseline keys on it, so
    grandfathered findings survive unrelated edits that shift line numbers.
    """

    rule: str
    path: str
    line: int
    message: str
    source_line: str = ""

    def render(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.rule} {self.message}"


#: Sentinel for "every rule suppressed on this line".
ALL_RULES = "*"

_SUPPRESS = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")


def _parse_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule codes suppressed there."""
    table: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        match = _SUPPRESS.search(line)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None:
            table[number] = frozenset((ALL_RULES,))
        else:
            table[number] = frozenset(
                code.strip() for code in codes.split(",") if code.strip()
            )
    return table


class SourceFile:
    """One parsed Python source file plus its suppression table."""

    def __init__(self, rel: str, text: str, path: Optional[Path] = None) -> None:
        #: Repo-relative posix path; rules scope on it.
        self.rel = rel.replace("\\", "/")
        self.text = text
        self.path = path
        self.lines = text.splitlines()
        self.suppressions = _parse_suppressions(text)
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text)
        except SyntaxError as error:
            self.tree = None
            self.syntax_error = error

    @classmethod
    def read(cls, path: Path, repo_root: Path) -> "SourceFile":
        rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
        return cls(rel, path.read_text(), path=path)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, rule: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return ALL_RULES in codes or rule in codes


class FileContext:
    """What a rule sees while one file is walked: the file plus a reporter."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.findings: List[Finding] = []

    def report(self, rule: "Rule", node_or_line, message: str) -> None:
        """Record a finding at an AST node or explicit line number."""
        line = getattr(node_or_line, "lineno", node_or_line) or 0
        self.findings.append(
            Finding(
                rule=rule.code,
                path=self.source.rel,
                line=int(line),
                message=message,
                source_line=self.source.line_text(int(line)),
            )
        )


class Rule:
    """Base class every lint rule extends.

    Class attributes declare the rule's identity and scope:

    ``code``/``name``/``rationale``
        The catalogue entry (``docs/lint.md`` mirrors these).
    ``paths``
        Repo-relative directory prefixes the rule inspects; ``None`` means
        every linted Python file.
    ``node_types``
        AST node classes the shared walk dispatches to :meth:`visit`.
    ``repo_wide``
        When true, :meth:`check_repo` runs once per lint run with the
        whole :class:`LintRun` (cross-file rules).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    paths: Optional[Tuple[str, ...]] = None
    node_types: Tuple[type, ...] = ()
    repo_wide: bool = False

    def applies_to(self, rel: str) -> bool:
        if self.paths is None:
            return True
        return any(rel.startswith(prefix) for prefix in self.paths)

    def begin_file(self, ctx: FileContext) -> None:
        """Per-file setup before the shared walk starts."""

    def visit(self, node: ast.AST, stack: Sequence[ast.AST], ctx: FileContext) -> None:
        """Handle one node of interest; *stack* is the ancestor chain."""

    def end_file(self, ctx: FileContext) -> None:
        """Per-file teardown after the shared walk finishes."""

    def check_repo(self, run: "LintRun") -> Iterable[Finding]:
        """Cross-file checks (only called when ``repo_wide``)."""
        return ()


_RULES: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its ``code``.

    Mirrors :func:`repro.core.controllers.register_controller`: duplicate
    codes are registration-time errors, and third-party rules plug in
    without touching this package::

        @register_rule
        class MyRule(Rule):
            code = "X900"
            ...
    """
    if not cls.code:
        raise LintError(f"rule {cls.__name__} declares no code")
    if cls.code in _RULES:
        raise LintError(f"rule code {cls.code!r} is already registered")
    _RULES[cls.code] = cls()
    return cls


def rule_catalog() -> List[Rule]:
    """Registered rules in code order."""
    return [_RULES[code] for code in sorted(_RULES)]


def resolve_rules(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rules selected by *codes* (all registered rules when ``None``)."""
    if codes is None:
        return rule_catalog()
    selected = []
    for code in codes:
        if code not in _RULES:
            known = ", ".join(sorted(_RULES))
            raise LintError(f"unknown rule {code!r}; registered rules: {known}")
        selected.append(_RULES[code])
    return selected


def _walk_dispatch(ctx: FileContext, rules: Sequence[Rule]) -> None:
    """The shared walk: one parse, one traversal, every rule dispatched.

    Iterative depth-first traversal that maintains the ancestor stack and
    hands each node to every rule that declared its type -- the tree is
    never walked once per rule.
    """
    interested: List[Tuple[Rule, Tuple[type, ...]]] = [
        (rule, rule.node_types) for rule in rules if rule.node_types
    ]
    if not interested or ctx.source.tree is None:
        return
    stack: List[ast.AST] = []
    # (node, entered?) -- entered nodes are popped off the ancestor stack.
    work: List[Tuple[ast.AST, bool]] = [(ctx.source.tree, False)]
    while work:
        node, entered = work.pop()
        if entered:
            stack.pop()
            continue
        for rule, types in interested:
            if isinstance(node, types):
                rule.visit(node, stack, ctx)
        work.append((node, True))
        stack.append(node)
        children = list(ast.iter_child_nodes(node))
        for child in reversed(children):
            work.append((child, False))


@dataclass
class LintRun:
    """One lint invocation: the files, the repo root, the findings."""

    files: List[SourceFile]
    repo_root: Optional[Path] = None
    findings: List[Finding] = field(default_factory=list)

    def file(self, rel: str) -> Optional[SourceFile]:
        for source in self.files:
            if source.rel == rel:
                return source
        return None


def find_repo_root(start: Path) -> Optional[Path]:
    """Walk up from *start* to the directory holding ``pyproject.toml``."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


def collect_files(paths: Sequence[Path], repo_root: Path) -> List[SourceFile]:
    """Parse every ``*.py`` under *paths* (sorted, pycache excluded)."""
    seen: Dict[str, SourceFile] = {}
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            source = SourceFile.read(candidate, repo_root)
            seen[source.rel] = source
    return [seen[rel] for rel in sorted(seen)]


def run_rules(
    files: Sequence[SourceFile],
    rules: Optional[Sequence[Rule]] = None,
    repo_root: Optional[Path] = None,
) -> LintRun:
    """Run *rules* over *files*; inline suppressions are already applied.

    Repo-wide rules only run when *repo_root* is given (they need the docs
    tree and the registries, not just the parsed sources).  Baseline
    filtering is the caller's concern (:mod:`repro.lint.baseline`).
    """
    active = list(rules) if rules is not None else rule_catalog()
    run = LintRun(files=list(files), repo_root=repo_root)
    for source in run.files:
        if source.syntax_error is not None:
            run.findings.append(
                Finding(
                    rule="E999",
                    path=source.rel,
                    line=source.syntax_error.lineno or 0,
                    message=f"syntax error: {source.syntax_error.msg}",
                )
            )
            continue
        applicable = [rule for rule in active if rule.applies_to(source.rel)]
        if not applicable:
            continue
        ctx = FileContext(source)
        for rule in applicable:
            rule.begin_file(ctx)
        _walk_dispatch(ctx, applicable)
        for rule in applicable:
            rule.end_file(ctx)
        run.findings.extend(
            finding
            for finding in ctx.findings
            if not source.is_suppressed(finding.rule, finding.line)
        )
    if repo_root is not None:
        for rule in active:
            if rule.repo_wide:
                for finding in rule.check_repo(run):
                    source = run.file(finding.path)
                    if source is not None and source.is_suppressed(
                        finding.rule, finding.line
                    ):
                        continue
                    run.findings.append(finding)
    run.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return run
