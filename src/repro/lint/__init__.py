"""``repro.lint``: the source-level invariant checker.

The runtime parity suites catch determinism and parity drift *after* it
ships, and only on the scenarios they run; this package checks the same
invariants statically.  Rule families:

========  ==========================================================
``D001``  unseeded randomness / clock / environment reads
``D002``  order-unstable set iteration feeding floats or the calendar
``D003``  one-sided edits to declared implementation/oracle pairs
``U101``  ``_bps/_bits/_bytes/_seconds`` suffix discipline
``R201``  registry/docs/tolerance-table completeness
========  ==========================================================

Run it as ``python -m repro.lint`` or ``repro-fabric lint``; see
``docs/lint.md`` for the catalogue, the ``# repro: ignore[RULE]``
suppression syntax and the baseline workflow.
"""

from repro.lint import rules  # noqa: F401  -- registers the built-ins
from repro.lint.baseline import (
    apply_baseline,
    finding_key,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.framework import (
    Finding,
    LintError,
    Rule,
    SourceFile,
    collect_files,
    register_rule,
    resolve_rules,
    rule_catalog,
    run_rules,
)
from repro.lint.parity import ParityPair, fingerprint_reference

__all__ = [
    "Finding",
    "LintError",
    "ParityPair",
    "Rule",
    "SourceFile",
    "apply_baseline",
    "collect_files",
    "finding_key",
    "fingerprint_reference",
    "load_baseline",
    "main",
    "register_rule",
    "resolve_rules",
    "rule_catalog",
    "run_rules",
    "write_baseline",
]
