"""Per-lane and per-link statistics: PLP primitive 5.

The Closed Ring Control is a feedback controller; the feedback is the
per-lane statistics the physical layer exposes -- bit error rate, latency
and effective bandwidth -- plus the per-link congestion signals (queue
occupancy, drops) collected by the fabric.  The estimators here smooth raw
samples with exponentially weighted moving averages so the control loop is
not whipsawed by measurement noise, and they expose the snapshot structure
the CRC's price-tag computation consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class EwmaEstimator:
    """Exponentially weighted moving average with sample counting."""

    def __init__(self, alpha: float = 0.2, initial: Optional[float] = None) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._value = initial
        self.samples = 0
        self.last_sample: Optional[float] = None
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def update(self, sample: float) -> float:
        """Fold *sample* into the average and return the new value."""
        self.samples += 1
        self.last_sample = sample
        self.minimum = sample if self.minimum is None else min(self.minimum, sample)
        self.maximum = sample if self.maximum is None else max(self.maximum, sample)
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1 - self.alpha) * self._value
        return self._value

    @property
    def value(self) -> Optional[float]:
        """Current smoothed value (``None`` before the first sample)."""
        return self._value

    def value_or(self, default: float) -> float:
        """Current value, or *default* before the first sample."""
        return self._value if self._value is not None else default

    def reset(self) -> None:
        """Forget all history."""
        self._value = None
        self.samples = 0
        self.last_sample = None
        self.minimum = None
        self.maximum = None


@dataclass
class LaneStatistics:
    """Statistics stream for a single lane."""

    lane_id: int
    ber: EwmaEstimator = field(default_factory=lambda: EwmaEstimator(alpha=0.3))
    latency: EwmaEstimator = field(default_factory=lambda: EwmaEstimator(alpha=0.3))
    effective_bandwidth_bps: EwmaEstimator = field(
        default_factory=lambda: EwmaEstimator(alpha=0.3)
    )

    def observe(
        self,
        ber: Optional[float] = None,
        latency: Optional[float] = None,
        effective_bandwidth_bps: Optional[float] = None,
    ) -> None:
        """Record one sample of any subset of the lane metrics."""
        if ber is not None:
            self.ber.update(ber)
        if latency is not None:
            self.latency.update(latency)
        if effective_bandwidth_bps is not None:
            self.effective_bandwidth_bps.update(effective_bandwidth_bps)

    def snapshot(self) -> Dict[str, Optional[float]]:
        """Current smoothed values as a plain dictionary."""
        return {
            "lane_id": float(self.lane_id),
            "ber": self.ber.value,
            "latency": self.latency.value,
            "effective_bandwidth_bps": self.effective_bandwidth_bps.value,
        }


@dataclass
class LinkStatistics:
    """Statistics stream for a link (bundle), as consumed by the CRC.

    The four smoothed signals map one-to-one onto the terms of the CRC's
    per-link price tag: latency, congestion (utilisation and queueing),
    health (post-FEC BER and drops), and power.
    """

    link_key: object
    latency: EwmaEstimator = field(default_factory=lambda: EwmaEstimator(alpha=0.25))
    utilisation: EwmaEstimator = field(default_factory=lambda: EwmaEstimator(alpha=0.25))
    queue_occupancy: EwmaEstimator = field(
        default_factory=lambda: EwmaEstimator(alpha=0.25)
    )
    post_fec_ber: EwmaEstimator = field(default_factory=lambda: EwmaEstimator(alpha=0.25))
    power_watts: EwmaEstimator = field(default_factory=lambda: EwmaEstimator(alpha=0.25))
    drops: int = 0
    packets: int = 0

    def observe(
        self,
        latency: Optional[float] = None,
        utilisation: Optional[float] = None,
        queue_occupancy: Optional[float] = None,
        post_fec_ber: Optional[float] = None,
        power_watts: Optional[float] = None,
        drops: int = 0,
        packets: int = 0,
    ) -> None:
        """Fold one observation interval into the stream."""
        if latency is not None:
            self.latency.update(latency)
        if utilisation is not None:
            self.utilisation.update(utilisation)
        if queue_occupancy is not None:
            self.queue_occupancy.update(queue_occupancy)
        if post_fec_ber is not None:
            self.post_fec_ber.update(post_fec_ber)
        if power_watts is not None:
            self.power_watts.update(power_watts)
        if drops < 0 or packets < 0:
            raise ValueError("drops and packets must be >= 0")
        self.drops += drops
        self.packets += packets

    @property
    def drop_rate(self) -> float:
        """Fraction of observed packets dropped on this link."""
        if self.packets == 0:
            return 0.0
        return self.drops / self.packets

    def snapshot(self) -> Dict[str, float]:
        """Smoothed values with safe defaults, for the price-tag computation."""
        return {
            "latency": self.latency.value_or(0.0),
            "utilisation": self.utilisation.value_or(0.0),
            "queue_occupancy": self.queue_occupancy.value_or(0.0),
            "post_fec_ber": self.post_fec_ber.value_or(0.0),
            "power_watts": self.power_watts.value_or(0.0),
            "drop_rate": self.drop_rate,
        }
