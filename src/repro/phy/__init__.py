"""Physical-layer substrate: lanes, links, media, FEC, power and statistics.

This package models the reconfigurable physical layer that the paper's
Physical Layer Primitives (PLP) operate on.  The canonical example in the
paper is a 100 Gb/s link composed of four 25 Gb/s lanes; lanes can be
re-bundled, re-pointed through the rack's circuit backplane (bypass), turned
off to save power, and protected by different forward-error-correction
schemes depending on the observed bit error rate.
"""

from repro.phy.bypass import BypassCircuit, BypassManager
from repro.phy.fec import (
    FEC_BASE_R,
    FEC_LDPC,
    FEC_NONE,
    FEC_RS528,
    FEC_RS544,
    STANDARD_FEC_SCHEMES,
    AdaptiveFecController,
    FecScheme,
    post_fec_ber,
)
from repro.phy.lane import Lane, LaneState
from repro.phy.link import Link, LinkDirection
from repro.phy.media import (
    BACKPLANE,
    COPPER_DAC,
    FIBER_MMF,
    FIBER_SMF,
    MEDIA_BY_NAME,
    Media,
    propagation_delay,
)
from repro.phy.power import PowerBudget, PowerModel, PowerReport
from repro.phy.stats import EwmaEstimator, LaneStatistics, LinkStatistics

__all__ = [
    "BypassCircuit",
    "BypassManager",
    "FEC_BASE_R",
    "FEC_LDPC",
    "FEC_NONE",
    "FEC_RS528",
    "FEC_RS544",
    "STANDARD_FEC_SCHEMES",
    "AdaptiveFecController",
    "FecScheme",
    "post_fec_ber",
    "Lane",
    "LaneState",
    "Link",
    "LinkDirection",
    "BACKPLANE",
    "COPPER_DAC",
    "FIBER_MMF",
    "FIBER_SMF",
    "MEDIA_BY_NAME",
    "Media",
    "propagation_delay",
    "PowerBudget",
    "PowerModel",
    "PowerReport",
    "EwmaEstimator",
    "LaneStatistics",
    "LinkStatistics",
]
