"""Transmission media models.

The paper's Figure 1 contrasts the latency contributed by the media
(propagation at a large fraction of the speed of light) with the latency of
traversing layer-2 cut-through switches, and concludes that at rack scale
the media delay is negligible while switching dominates.  The media model
here provides exactly the quantities needed to regenerate that figure:
propagation velocity, per-metre delay, and a per-metre loss figure used by
the BER model for long runs.

The architecture is explicitly *media agnostic* -- the PLP abstraction only
requires that a medium expose these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Speed of light in vacuum, metres per second.
SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class Media:
    """A transmission medium.

    Attributes
    ----------
    name:
        Human-readable identifier.
    velocity_fraction:
        Signal propagation velocity as a fraction of the speed of light in
        vacuum (copper DACs ~0.7c, standard single-mode fibre ~0.68c).
    loss_db_per_meter:
        Attenuation, used by the lane BER model to degrade long runs.
    max_reach_meters:
        Reach beyond which the medium is considered unusable at full rate.
    power_per_lane_watts:
        Additional per-lane transceiver power attributable to the medium
        (optical modules cost more power than passive copper).
    """

    name: str
    velocity_fraction: float
    loss_db_per_meter: float
    max_reach_meters: float
    power_per_lane_watts: float

    def __post_init__(self) -> None:
        if not 0 < self.velocity_fraction <= 1:
            raise ValueError(
                f"velocity_fraction must be in (0, 1], got {self.velocity_fraction!r}"
            )
        if self.loss_db_per_meter < 0:
            raise ValueError("loss_db_per_meter must be >= 0")
        if self.max_reach_meters <= 0:
            raise ValueError("max_reach_meters must be positive")
        if self.power_per_lane_watts < 0:
            raise ValueError("power_per_lane_watts must be >= 0")

    @property
    def velocity(self) -> float:
        """Propagation velocity in metres per second."""
        return self.velocity_fraction * SPEED_OF_LIGHT

    def propagation_delay(self, length_meters: float) -> float:
        """Propagation delay in seconds over *length_meters*."""
        if length_meters < 0:
            raise ValueError(f"length must be >= 0, got {length_meters!r}")
        return length_meters / self.velocity

    def loss_db(self, length_meters: float) -> float:
        """Total attenuation in dB over *length_meters*."""
        if length_meters < 0:
            raise ValueError(f"length must be >= 0, got {length_meters!r}")
        return self.loss_db_per_meter * length_meters

    def within_reach(self, length_meters: float) -> bool:
        """Whether a run of *length_meters* is within the medium's reach."""
        return 0 <= length_meters <= self.max_reach_meters


#: Passive direct-attach copper cable (twinax), the common intra-rack medium.
COPPER_DAC = Media(
    name="copper-dac",
    velocity_fraction=0.70,
    loss_db_per_meter=2.0,
    max_reach_meters=5.0,
    power_per_lane_watts=0.1,
)

#: Multi-mode fibre with short-reach optics (SR4-class).
FIBER_MMF = Media(
    name="fiber-mmf",
    velocity_fraction=0.67,
    loss_db_per_meter=0.0035,
    max_reach_meters=100.0,
    power_per_lane_watts=0.45,
)

#: Single-mode fibre with long-reach optics (LR4-class).
FIBER_SMF = Media(
    name="fiber-smf",
    velocity_fraction=0.68,
    loss_db_per_meter=0.0004,
    max_reach_meters=10_000.0,
    power_per_lane_watts=0.9,
)

#: Rack backplane / midplane traces (the dense in-rack interconnect the
#: paper's disaggregated sleds attach to).
BACKPLANE = Media(
    name="backplane",
    velocity_fraction=0.55,
    loss_db_per_meter=6.0,
    max_reach_meters=1.5,
    power_per_lane_watts=0.05,
)

#: Registry used by configuration files and the CLI.
MEDIA_BY_NAME: Dict[str, Media] = {
    media.name: media for media in (COPPER_DAC, FIBER_MMF, FIBER_SMF, BACKPLANE)
}


def propagation_delay(length_meters: float, media: Media = FIBER_MMF) -> float:
    """Module-level helper mirroring :meth:`Media.propagation_delay`."""
    return media.propagation_delay(length_meters)
