"""Physical lane model.

A *lane* is the smallest unit the Physical Layer Primitives manipulate: a
single serial channel (one SerDes pair, or one wavelength under WDM) running
at a fixed signalling rate.  Links are bundles of lanes
(:mod:`repro.phy.link`); the PLP "link breaking/bundling" primitive moves
lanes between bundles, and the "on/off" primitive gates individual lanes to
save power.

Lanes own their raw bit-error-rate (a property of the underlying channel and
the media run length) and their power draw; both feed the per-lane
statistics primitive and, through it, the Closed Ring Control.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.phy.media import COPPER_DAC, Media
from repro.sim.units import GBPS, nanoseconds

_lane_ids = itertools.count()


def reset_lane_ids() -> None:
    """Reset the global lane id counter (used by tests for determinism)."""
    global _lane_ids
    _lane_ids = itertools.count()


class LaneState(enum.Enum):
    """Operational state of a lane."""

    ACTIVE = "active"
    OFF = "off"
    TRAINING = "training"
    FAILED = "failed"


#: Default time for a powered-off lane to retrain and become usable.  The
#: electrical reconfigurable fabrics the paper cites (Shoal) retrain in
#: sub-microsecond times; optical fabrics (ProjecToR) take tens of
#: microseconds to milliseconds.  This default sits at the electrical end;
#: experiments sweep it explicitly.
DEFAULT_TRAINING_TIME = nanoseconds(500)

#: Default per-lane SerDes latency (transmit + receive).
DEFAULT_SERDES_LATENCY = nanoseconds(25)

#: Default active power of a 25G SerDes lane (transceiver excluded).
DEFAULT_LANE_POWER_WATTS = 0.75

#: Power drawn by a lane that is off but still powered at standby.
DEFAULT_STANDBY_POWER_WATTS = 0.05


@dataclass
class Lane:
    """One serial lane.

    Attributes
    ----------
    rate_bps:
        Signalling rate of the lane in bits per second (default 25 Gb/s, the
        canonical lane rate in the paper's 4x25G example).
    raw_ber:
        Pre-FEC bit error rate of the channel.
    media:
        The medium the lane runs over (affects power and reach).
    length_meters:
        Physical run length; used with the media for propagation delay and
        loss-driven BER degradation.
    state:
        Current :class:`LaneState`.
    """

    rate_bps: float = 25 * GBPS
    raw_ber: float = 1e-12
    media: Media = COPPER_DAC
    length_meters: float = 2.0
    state: LaneState = LaneState.ACTIVE
    serdes_latency: float = DEFAULT_SERDES_LATENCY
    training_time: float = DEFAULT_TRAINING_TIME
    active_power_watts: float = DEFAULT_LANE_POWER_WATTS
    standby_power_watts: float = DEFAULT_STANDBY_POWER_WATTS
    lane_id: int = field(default_factory=lambda: next(_lane_ids))
    #: Simulation time at which an in-progress training completes.
    training_complete_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {self.rate_bps!r}")
        if not 0 <= self.raw_ber <= 1:
            raise ValueError(f"raw_ber must be in [0, 1], got {self.raw_ber!r}")
        if self.length_meters < 0:
            raise ValueError(f"length_meters must be >= 0, got {self.length_meters!r}")
        if self.serdes_latency < 0 or self.training_time < 0:
            raise ValueError("latencies must be >= 0")
        if self.active_power_watts < 0 or self.standby_power_watts < 0:
            raise ValueError("power figures must be >= 0")

    # ------------------------------------------------------------------ #
    # State machine
    # ------------------------------------------------------------------ #
    @property
    def usable(self) -> bool:
        """Whether the lane currently carries traffic."""
        return self.state is LaneState.ACTIVE

    def turn_off(self) -> None:
        """Power the lane down (PLP primitive 3)."""
        if self.state is LaneState.FAILED:
            raise ValueError(f"lane {self.lane_id} has failed and cannot change state")
        self.state = LaneState.OFF
        self.training_complete_at = None

    def turn_on(self, now: float) -> float:
        """Begin powering the lane up at time *now*.

        The lane enters ``TRAINING`` and becomes ``ACTIVE`` once
        :meth:`complete_training` is called at or after the returned time.
        Returns the absolute time at which training completes.  Turning on a
        lane that is already active is a no-op returning *now*.
        """
        if self.state is LaneState.FAILED:
            raise ValueError(f"lane {self.lane_id} has failed and cannot be turned on")
        if self.state is LaneState.ACTIVE:
            return now
        self.state = LaneState.TRAINING
        self.training_complete_at = now + self.training_time
        return self.training_complete_at

    def complete_training(self, now: float) -> None:
        """Finish an in-progress training sequence (idempotent for active lanes)."""
        if self.state is LaneState.ACTIVE:
            return
        if self.state is not LaneState.TRAINING:
            raise ValueError(
                f"lane {self.lane_id} is {self.state.value}, not training"
            )
        if self.training_complete_at is not None and now + 1e-15 < self.training_complete_at:
            raise ValueError(
                f"training of lane {self.lane_id} completes at "
                f"{self.training_complete_at}, not {now}"
            )
        self.state = LaneState.ACTIVE
        self.training_complete_at = None

    def fail(self) -> None:
        """Mark the lane permanently failed (link-health experiments)."""
        self.state = LaneState.FAILED
        self.training_complete_at = None

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def effective_rate_bps(self) -> float:
        """Rate contributed to the bundle: the full rate when active, else zero."""
        return self.rate_bps if self.usable else 0.0

    @property
    def power_watts(self) -> float:
        """Instantaneous power draw in the current state."""
        if self.state is LaneState.ACTIVE or self.state is LaneState.TRAINING:
            return self.active_power_watts + self.media.power_per_lane_watts
        if self.state is LaneState.OFF:
            return self.standby_power_watts
        return 0.0

    @property
    def propagation_delay(self) -> float:
        """One-way propagation delay over the lane's media run."""
        return self.media.propagation_delay(self.length_meters)

    def degraded_ber(self, extra_loss_db: float = 0.0) -> float:
        """Raw BER adjusted for the media loss of this run plus *extra_loss_db*.

        A simple monotone degradation model: every 3 dB of loss beyond a
        1 dB allowance multiplies the BER by 10, capped at 0.5.  The exact
        shape is unimportant for the reproduction -- what matters is that
        longer or lossier runs report worse health to the CRC, which then
        assigns stronger FEC or routes around them.
        """
        loss = self.media.loss_db(self.length_meters) + extra_loss_db
        excess = max(0.0, loss - 1.0)
        if self.raw_ber == 0.0:
            return 0.0
        # Cap the exponent so extreme loss values saturate instead of
        # overflowing; anything beyond ~300 dB of excess loss is 0.5 anyway.
        exponent = min(excess / 3.0, 100.0)
        degraded = self.raw_ber * (10.0**exponent)
        return min(degraded, 0.5)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Lane(id={self.lane_id}, {self.rate_bps / GBPS:.0f}G, "
            f"{self.state.value}, ber={self.raw_ber:.1e})"
        )
