"""Power models and the rack power budget.

The paper lists power as the second hard constraint of rack-scale systems:
the rack inherits a conventional power envelope even though it now hosts a
network "as sophisticated and complex as in a data center".  The CRC's
power-cap policy uses these models to decide which lanes to gate off and
which switches can be put in a low-power state, and the power-budget
benchmark (experiment E5) sweeps the cap.

All figures are parameters with defaults chosen from public component
datasheets (25G SerDes lane ~0.75 W, switch ASIC ~4.5 W/100G port plus a
chassis floor); the experiments care about relative trends, not the exact
wattage of a particular part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.phy.link import Link


@dataclass(frozen=True)
class PowerModel:
    """Static power parameters for fabric elements not covered by lanes.

    Lane and FEC power live on the :class:`~repro.phy.lane.Lane` and
    :class:`~repro.phy.fec.FecScheme` objects; this model adds the
    switch-level terms.
    """

    #: Power floor of a switching element (fans, control plane, SRAM).
    switch_base_watts: float = 30.0
    #: Power per active switch port (PHY + MAC + buffers), at 100G (4 lanes).
    switch_port_watts: float = 4.5
    #: Power per active *lane* of an endpoint sled's fabric port.  Ports are
    #: charged by the lanes they actually drive, so gating lanes off (PLP
    #: primitive 3) recovers this power -- the knob the power-cap policy and
    #: the Figure 2 scenario rely on.
    switch_port_lane_watts: float = 1.1
    #: Power per active switch port in low-power (bypass/idle) mode.
    switch_port_idle_watts: float = 1.0
    #: Power of a crosspoint/bypass element per established circuit.
    bypass_circuit_watts: float = 0.8
    #: NIC power per node (fixed).
    nic_base_watts: float = 8.0

    def switch_power(self, active_ports: int, idle_ports: int = 0) -> float:
        """Power of one switch given its port activity."""
        if active_ports < 0 or idle_ports < 0:
            raise ValueError("port counts must be >= 0")
        return (
            self.switch_base_watts
            + active_ports * self.switch_port_watts
            + idle_ports * self.switch_port_idle_watts
        )


@dataclass
class PowerReport:
    """Breakdown of fabric power at one instant."""

    links_watts: float = 0.0
    switches_watts: float = 0.0
    nics_watts: float = 0.0
    bypass_watts: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def total_watts(self) -> float:
        """Total fabric power."""
        return self.links_watts + self.switches_watts + self.nics_watts + self.bypass_watts

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports and CSV output."""
        return {
            "links_watts": self.links_watts,
            "switches_watts": self.switches_watts,
            "nics_watts": self.nics_watts,
            "bypass_watts": self.bypass_watts,
            "total_watts": self.total_watts,
        }


class PowerBudget:
    """Tracks fabric power against a rack envelope.

    The budget integrates power over time (energy) as the simulation
    advances and answers the two questions the CRC power policy asks:
    *are we over budget now?* and *how much headroom is left?*
    """

    def __init__(self, cap_watts: Optional[float] = None) -> None:
        if cap_watts is not None and cap_watts <= 0:
            raise ValueError(f"cap_watts must be positive when given, got {cap_watts!r}")
        self.cap_watts = cap_watts
        self._samples: List[Tuple[float, float]] = []
        self.energy_joules = 0.0
        self.time_over_budget = 0.0

    def record(self, time: float, power_watts: float) -> None:
        """Record the instantaneous fabric power at *time*.

        Samples must be recorded in non-decreasing time order; the energy
        integral uses the previous sample's power over the elapsed interval
        (zero-order hold).
        """
        if power_watts < 0:
            raise ValueError("power must be >= 0")
        if self._samples:
            last_time, last_power = self._samples[-1]
            if time < last_time:
                raise ValueError("power samples must be recorded in time order")
            elapsed = time - last_time
            self.energy_joules += last_power * elapsed
            if self.cap_watts is not None and last_power > self.cap_watts:
                self.time_over_budget += elapsed
        self._samples.append((time, power_watts))

    @property
    def samples(self) -> List[Tuple[float, float]]:
        """Recorded ``(time, watts)`` samples."""
        return list(self._samples)

    @property
    def current_watts(self) -> float:
        """Most recently recorded power (zero before any sample)."""
        return self._samples[-1][1] if self._samples else 0.0

    def headroom_watts(self) -> Optional[float]:
        """Cap minus current power (``None`` when no cap is set)."""
        if self.cap_watts is None:
            return None
        return self.cap_watts - self.current_watts

    def over_budget(self) -> bool:
        """Whether the latest sample exceeds the cap."""
        if self.cap_watts is None:
            return False
        return self.current_watts > self.cap_watts

    def peak_watts(self) -> float:
        """Largest recorded power."""
        return max((power for _, power in self._samples), default=0.0)

    def mean_watts(self) -> float:
        """Time-weighted mean power over the recorded horizon."""
        if len(self._samples) < 2:
            return self.current_watts
        duration = self._samples[-1][0] - self._samples[0][0]
        if duration <= 0:
            return self.current_watts
        return self.energy_joules / duration


def fabric_link_power(links: Iterable[Link]) -> float:
    """Total power of a collection of links."""
    return sum(link.power_watts for link in links)
