"""Forward error correction schemes and the adaptive-FEC primitive.

PLP number four in the paper is *adaptive forward error correction*: the
physical layer can trade latency and overhead against resilience, and the
Closed Ring Control picks the cheapest scheme that still meets the target
post-FEC error rate given the lane's measured raw BER.

The schemes modelled here follow the IEEE 802.3 family used by 25G/100G
Ethernet (no FEC, BASE-R "FireCode", RS(528,514) a.k.a. KR4, RS(544,514)
a.k.a. KP4) plus a heavier LDPC-class code representing the long-reach /
high-gain end of the design space.  Latency figures are the commonly quoted
store-and-correct block latencies; exact nanosecond values differ between
implementations but the *ordering* (stronger code = more latency and more
overhead) is what the control loop exploits, and that ordering is faithful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.sim.units import nanoseconds


@dataclass(frozen=True)
class FecScheme:
    """One forward-error-correction configuration.

    Attributes
    ----------
    name:
        Identifier used in traces and reports.
    overhead_fraction:
        Fraction of the raw line rate consumed by parity (0 for no FEC).
        Effective throughput is ``raw_rate * (1 - overhead_fraction)``.
    latency:
        Added encode+decode latency in seconds (block codes must buffer a
        whole block before correcting it).
    symbol_size_bits:
        Symbol size of the code (10 for RS(528,514) over 10-bit symbols).
    block_symbols:
        Total symbols per codeword.
    correctable_symbols:
        Maximum number of symbol errors the code corrects per codeword.
    power_watts:
        Additional per-lane power drawn by the encoder/decoder logic.
    """

    name: str
    overhead_fraction: float
    latency: float
    symbol_size_bits: int
    block_symbols: int
    correctable_symbols: int
    power_watts: float

    def __post_init__(self) -> None:
        if not 0 <= self.overhead_fraction < 1:
            raise ValueError("overhead_fraction must be in [0, 1)")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.symbol_size_bits <= 0:
            raise ValueError("symbol_size_bits must be positive")
        if self.block_symbols <= 0:
            raise ValueError("block_symbols must be positive")
        if self.correctable_symbols < 0:
            raise ValueError("correctable_symbols must be >= 0")
        if self.power_watts < 0:
            raise ValueError("power_watts must be >= 0")

    def effective_rate(self, raw_rate_bps: float) -> float:
        """Throughput left after parity overhead."""
        if raw_rate_bps < 0:
            raise ValueError("raw_rate_bps must be >= 0")
        return raw_rate_bps * (1.0 - self.overhead_fraction)

    def post_fec_ber(self, raw_ber: float) -> float:
        """Residual bit error rate after correction (see :func:`post_fec_ber`)."""
        return post_fec_ber(raw_ber, self)

    def meets_target(self, raw_ber: float, target_ber: float) -> bool:
        """Whether this scheme reduces *raw_ber* to at most *target_ber*."""
        return self.post_fec_ber(raw_ber) <= target_ber


def _symbol_error_rate(raw_ber: float, symbol_size_bits: int) -> float:
    """Probability that a symbol of ``symbol_size_bits`` contains >= 1 bit error."""
    raw_ber = min(max(raw_ber, 0.0), 1.0)
    return 1.0 - (1.0 - raw_ber) ** symbol_size_bits


def post_fec_ber(raw_ber: float, scheme: FecScheme) -> float:
    """Residual BER after decoding with *scheme*.

    Model: symbol errors are independent with probability ``p_s``; a codeword
    fails when more than ``t`` of its ``n`` symbols are corrupted.  The
    residual BER is approximated by the codeword failure probability scaled
    by the fraction of bits a typical failure corrupts (taken as the first
    uncorrectable error pattern, ``(t+1)/n``).  This is the standard
    bounded-distance-decoding approximation and reproduces the familiar
    waterfall curves: RS(528,514) takes a raw 1e-5 channel to well below
    1e-12, RS(544,514) stretches that to ~2e-4 raw.

    A scheme with zero correctable symbols (no FEC) returns the raw BER
    unchanged.
    """
    if raw_ber < 0 or raw_ber > 1:
        raise ValueError(f"raw_ber must be in [0, 1], got {raw_ber!r}")
    if scheme.correctable_symbols == 0:
        return raw_ber
    if raw_ber == 0.0:
        return 0.0

    n = scheme.block_symbols
    t = scheme.correctable_symbols
    p_symbol = _symbol_error_rate(raw_ber, scheme.symbol_size_bits)
    if p_symbol >= 1.0:
        return raw_ber

    # P(codeword uncorrectable) = P(Binomial(n, p_symbol) > t).
    # Sum the complementary tail.  In the operating regime (mean symbol
    # errors well below t) the first terms dominate and truncating the sum
    # is safe; when the channel is so bad that the mean exceeds t, the full
    # sum is needed (and is effectively 1).
    log_p = math.log(p_symbol)
    log_q = math.log1p(-p_symbol)
    tail = 0.0
    mean_symbol_errors = n * p_symbol
    upper = n if mean_symbol_errors > t else min(n, t + 200)
    for k in range(t + 1, upper + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(k + 1)
            - math.lgamma(n - k + 1)
            + k * log_p
            + (n - k) * log_q
        )
        tail += math.exp(log_term)
    tail = min(tail, 1.0)
    corrupted_fraction = (t + 1) / n
    residual = tail * corrupted_fraction
    return min(residual, raw_ber)


#: No error correction at all: zero overhead, zero added latency.
FEC_NONE = FecScheme(
    name="none",
    overhead_fraction=0.0,
    latency=0.0,
    symbol_size_bits=1,
    block_symbols=1,
    correctable_symbols=0,
    power_watts=0.0,
)

#: BASE-R "FireCode" FEC (clause 74): light-weight, low latency, low gain.
FEC_BASE_R = FecScheme(
    name="base-r",
    overhead_fraction=0.0015,
    latency=nanoseconds(60),
    symbol_size_bits=1,
    block_symbols=2112,
    correctable_symbols=11,
    power_watts=0.05,
)

#: RS(528,514), clause 91 "KR4": the standard 100GBASE-KR4/CR4 FEC.
FEC_RS528 = FecScheme(
    name="rs-528",
    overhead_fraction=0.0265,
    latency=nanoseconds(100),
    symbol_size_bits=10,
    block_symbols=528,
    correctable_symbols=7,
    power_watts=0.12,
)

#: RS(544,514), clause 134 "KP4": stronger, used for PAM4 links.
FEC_RS544 = FecScheme(
    name="rs-544",
    overhead_fraction=0.0551,
    latency=nanoseconds(180),
    symbol_size_bits=10,
    block_symbols=544,
    correctable_symbols=15,
    power_watts=0.2,
)

#: A heavy LDPC-class code representing the long-reach / high-gain corner.
FEC_LDPC = FecScheme(
    name="ldpc",
    overhead_fraction=0.125,
    latency=nanoseconds(500),
    symbol_size_bits=8,
    block_symbols=2048,
    correctable_symbols=120,
    power_watts=0.6,
)

#: Schemes ordered from cheapest (latency/overhead) to strongest.
STANDARD_FEC_SCHEMES: List[FecScheme] = [
    FEC_NONE,
    FEC_BASE_R,
    FEC_RS528,
    FEC_RS544,
    FEC_LDPC,
]


class AdaptiveFecController:
    """Chooses the cheapest FEC scheme meeting a target residual BER.

    "Cheapest" is defined by added latency first and overhead second,
    matching the paper's emphasis on the latency of the critical path.  A
    hysteresis margin avoids oscillating between two schemes when the
    measured raw BER sits exactly at a threshold.
    """

    def __init__(
        self,
        target_ber: float = 1e-12,
        schemes: Optional[Sequence[FecScheme]] = None,
        hysteresis: float = 2.0,
    ) -> None:
        if target_ber <= 0 or target_ber >= 1:
            raise ValueError(f"target_ber must be in (0, 1), got {target_ber!r}")
        if hysteresis < 1.0:
            raise ValueError(f"hysteresis must be >= 1.0, got {hysteresis!r}")
        self.target_ber = target_ber
        self.hysteresis = hysteresis
        ordered = list(schemes) if schemes is not None else list(STANDARD_FEC_SCHEMES)
        self.schemes = sorted(ordered, key=lambda s: (s.latency, s.overhead_fraction))

    def select(self, raw_ber: float, current: Optional[FecScheme] = None) -> FecScheme:
        """Return the scheme to use for a lane with the given raw BER.

        If *current* already meets the target with the hysteresis margin,
        it is kept unless a strictly cheaper scheme also meets the margin --
        this is what prevents flapping when the BER estimate is noisy.
        """
        candidates = [s for s in self.schemes if s.meets_target(raw_ber, self.target_ber)]
        if not candidates:
            # Nothing meets the target: use the strongest scheme available.
            return max(self.schemes, key=lambda s: s.correctable_symbols / s.block_symbols)
        best = candidates[0]
        if current is not None and current.meets_target(
            raw_ber, self.target_ber / self.hysteresis
        ):
            # Current scheme still comfortably meets target; only switch if
            # the best candidate is strictly cheaper.
            if (best.latency, best.overhead_fraction) < (
                current.latency,
                current.overhead_fraction,
            ):
                return best
            return current
        return best

    def schemes_meeting_target(self, raw_ber: float) -> List[FecScheme]:
        """All schemes that would meet the target for *raw_ber*."""
        return [s for s in self.schemes if s.meets_target(raw_ber, self.target_ber)]


def scheme_by_name(name: str, schemes: Iterable[FecScheme] = STANDARD_FEC_SCHEMES) -> FecScheme:
    """Look up a scheme by its name (raises KeyError if unknown)."""
    for scheme in schemes:
        if scheme.name == name:
            return scheme
    raise KeyError(f"unknown FEC scheme {name!r}")
