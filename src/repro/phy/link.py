"""Link model: a bundle of lanes between two fabric elements.

The paper's canonical example is a 100 Gb/s link made of four 25 Gb/s lanes.
The PLP "link breaking / bundling" primitive splits a link of N lanes into
two of k and N-k lanes (and the reverse); the freed lanes can be re-pointed
through the rack's circuit layer to build new links -- this is exactly how
the Figure 2 scenario turns a 2-lane-per-link grid into a 1-lane-per-link
torus within the same lane budget.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.phy.fec import FEC_NONE, FEC_RS528, FecScheme
from repro.phy.lane import Lane, LaneState
from repro.phy.media import COPPER_DAC, Media
from repro.sim.units import GBPS

_link_ids = itertools.count()


def reset_link_ids() -> None:
    """Reset the global link id counter (used by tests for determinism)."""
    global _link_ids
    _link_ids = itertools.count()


class LinkDirection(enum.Enum):
    """Whether a link carries traffic one way or both ways.

    Rack fabrics are typically built from full-duplex links; the simulator
    models each direction's capacity independently but the physical lane
    bundle (and its power) is shared, so the Link object represents the
    full-duplex pair.
    """

    FULL_DUPLEX = "full-duplex"
    SIMPLEX = "simplex"


class Link:
    """A bundle of lanes connecting endpoint ``a`` to endpoint ``b``.

    Parameters
    ----------
    a, b:
        Names of the fabric elements (nodes or switches) the link connects.
    lanes:
        The lane objects forming the bundle.  They need not be identical,
        but bundling lanes of different rates is unusual and the effective
        capacity is simply the sum of active lane rates.
    fec:
        FEC scheme currently applied to the bundle (PLP primitive 4 changes
        it at runtime).
    length_meters:
        Physical length of the run, shared by all lanes.
    media:
        Transmission medium of the run.
    """

    def __init__(
        self,
        a: str,
        b: str,
        lanes: Optional[Sequence[Lane]] = None,
        num_lanes: int = 4,
        lane_rate_bps: float = 25 * GBPS,
        fec: FecScheme = FEC_RS528,
        length_meters: float = 2.0,
        media: Media = COPPER_DAC,
        direction: LinkDirection = LinkDirection.FULL_DUPLEX,
    ) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        if lanes is None:
            if num_lanes <= 0:
                raise ValueError(f"num_lanes must be positive, got {num_lanes!r}")
            lanes = [
                Lane(rate_bps=lane_rate_bps, media=media, length_meters=length_meters)
                for _ in range(num_lanes)
            ]
        else:
            lanes = list(lanes)
            if not lanes:
                raise ValueError("a link needs at least one lane")
        self.link_id = next(_link_ids)
        self.a = a
        self.b = b
        self._lanes: List[Lane] = list(lanes)
        self.fec = fec
        self.length_meters = length_meters
        self.media = media
        self.direction = direction
        #: Set by the PLP executor while a reconfiguration affecting this
        #: link is in progress; the fabric treats the link as unavailable.
        self.reconfiguring_until: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Identity and endpoints
    # ------------------------------------------------------------------ #
    @property
    def endpoints(self) -> Tuple[str, str]:
        """The pair of element names the link connects."""
        return (self.a, self.b)

    def connects(self, a: str, b: str) -> bool:
        """Whether the link joins *a* and *b* (in either order)."""
        return {a, b} == {self.a, self.b}

    def other_end(self, endpoint: str) -> str:
        """The endpoint opposite *endpoint*."""
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")

    # ------------------------------------------------------------------ #
    # Lane bundle management (PLP primitives 1 and 3)
    # ------------------------------------------------------------------ #
    @property
    def lanes(self) -> List[Lane]:
        """The lanes in the bundle (shared list is not exposed; copy)."""
        return list(self._lanes)

    @property
    def num_lanes(self) -> int:
        """Total lanes in the bundle, regardless of state."""
        return len(self._lanes)

    @property
    def active_lanes(self) -> List[Lane]:
        """Lanes currently carrying traffic."""
        return [lane for lane in self._lanes if lane.usable]

    @property
    def num_active_lanes(self) -> int:
        """Number of active lanes."""
        return len(self.active_lanes)

    def remove_lanes(self, count: int) -> List[Lane]:
        """Detach *count* lanes from the bundle and return them.

        Inactive lanes are removed preferentially so that detaching spare
        capacity does not disturb traffic.  Removing every lane is refused:
        a link with zero lanes should be deleted from the topology instead
        (the PLP executor does that explicitly).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count!r}")
        if count >= len(self._lanes):
            raise ValueError(
                f"cannot remove {count} lanes from a {len(self._lanes)}-lane link; "
                "delete the link instead"
            )
        ordered = sorted(self._lanes, key=lambda lane: lane.usable)
        removed = ordered[:count]
        for lane in removed:
            self._lanes.remove(lane)
        return removed

    def add_lanes(self, lanes: Sequence[Lane]) -> None:
        """Attach previously detached lanes to the bundle."""
        if not lanes:
            raise ValueError("no lanes supplied")
        self._lanes.extend(lanes)

    def set_active_lane_count(self, count: int, now: float = 0.0) -> None:
        """Turn lanes on/off so that exactly *count* lanes are active.

        Lanes turned on transition through training; callers that care about
        the training delay should use the PLP executor, which models it.
        """
        if count < 0 or count > len(self._lanes):
            raise ValueError(
                f"count must be in [0, {len(self._lanes)}], got {count!r}"
            )
        active = [lane for lane in self._lanes if lane.usable]
        inactive = [lane for lane in self._lanes if not lane.usable and lane.state is not LaneState.FAILED]
        if len(active) > count:
            for lane in active[count:]:
                lane.turn_off()
        elif len(active) < count:
            needed = count - len(active)
            if needed > len(inactive):
                raise ValueError(
                    f"cannot activate {needed} lanes; only {len(inactive)} available"
                )
            for lane in inactive[:needed]:
                lane.turn_on(now)
                lane.complete_training(now + lane.training_time)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def raw_capacity_bps(self) -> float:
        """Sum of active lane rates before FEC overhead."""
        return sum(lane.effective_rate_bps for lane in self._lanes)

    @property
    def capacity_bps(self) -> float:
        """Usable capacity after FEC overhead (zero while reconfiguring)."""
        return self.fec.effective_rate(self.raw_capacity_bps)

    @property
    def up(self) -> bool:
        """Whether at least one lane is active."""
        return self.num_active_lanes > 0

    @property
    def propagation_delay(self) -> float:
        """One-way propagation delay of the run."""
        return self.media.propagation_delay(self.length_meters)

    @property
    def phy_latency(self) -> float:
        """Fixed physical-layer latency: SerDes plus FEC encode/decode.

        The SerDes latency of the bundle is that of the slowest active lane
        (all lanes of a striped bundle must be deskewed to it).
        """
        active = self.active_lanes
        serdes = max((lane.serdes_latency for lane in active), default=0.0)
        return serdes + self.fec.latency

    @property
    def one_way_latency(self) -> float:
        """Propagation plus physical-layer latency (no serialization/queueing)."""
        return self.propagation_delay + self.phy_latency

    @property
    def power_watts(self) -> float:
        """Power drawn by the bundle: lanes plus the FEC logic per active lane."""
        lane_power = sum(lane.power_watts for lane in self._lanes)
        fec_power = self.fec.power_watts * self.num_active_lanes
        return lane_power + fec_power

    @property
    def worst_raw_ber(self) -> float:
        """Worst raw BER across active lanes (what adaptive FEC must handle)."""
        active = self.active_lanes
        if not active:
            return 0.0
        return max(lane.degraded_ber() for lane in active)

    @property
    def post_fec_ber(self) -> float:
        """Residual BER of the bundle under the current FEC scheme."""
        return self.fec.post_fec_ber(self.worst_raw_ber)

    def serialization_delay(self, size_bits: float) -> float:
        """Time to clock *size_bits* onto the link at its current capacity."""
        capacity = self.capacity_bps
        if capacity <= 0:
            raise ValueError(f"link {self.a}-{self.b} has no active capacity")
        return size_bits / capacity

    def set_fec(self, scheme: FecScheme) -> None:
        """Apply a new FEC scheme (PLP primitive 4)."""
        self.fec = scheme

    def disable(self) -> None:
        """Turn every lane off (PLP primitive 3 applied to the whole link)."""
        for lane in self._lanes:
            if lane.state is not LaneState.FAILED:
                lane.turn_off()

    def enable(self, now: float = 0.0) -> None:
        """Turn every non-failed lane on (training completes immediately here;
        the PLP executor models the training delay when it matters)."""
        for lane in self._lanes:
            if lane.state is LaneState.FAILED:
                continue
            if not lane.usable:
                lane.turn_on(now)
                lane.complete_training(now + lane.training_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link(id={self.link_id}, {self.a}<->{self.b}, "
            f"{self.num_active_lanes}/{self.num_lanes} lanes, "
            f"{self.capacity_bps / GBPS:.1f}G, fec={self.fec.name})"
        )


def make_bundle(
    a: str,
    b: str,
    num_lanes: int,
    lane_rate_bps: float = 25 * GBPS,
    fec: FecScheme = FEC_NONE,
    length_meters: float = 2.0,
    media: Media = COPPER_DAC,
) -> Link:
    """Convenience constructor mirroring the paper's "N x rate" notation."""
    return Link(
        a=a,
        b=b,
        num_lanes=num_lanes,
        lane_rate_bps=lane_rate_bps,
        fec=fec,
        length_meters=length_meters,
        media=media,
    )
