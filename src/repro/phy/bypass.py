"""High-speed bypass: PLP primitive 2.

A bypass connects two links "at the lowest possible physical level" -- the
signal is cross-connected beneath the packet-switching logic, so packets on
the bypassed path skip the switch's parsing, lookup and arbitration stages
entirely.  The model charges only the physical pass-through latency at the
bypassed element plus the usual propagation delay, and it reserves the lanes
involved for the duration of the bypass (they are not available for packet
switching while cross-connected).

This is the primitive that lets the Closed Ring Control carve low-latency
circuits for hot node pairs, in the spirit of the circuit-switched fabrics
(Shoal, ProjecToR) the paper cites.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.units import nanoseconds

_bypass_ids = itertools.count()


def reset_bypass_ids() -> None:
    """Reset the global bypass id counter (used by tests for determinism)."""
    global _bypass_ids
    _bypass_ids = itertools.count()


#: Latency of the physical cross-connect at each bypassed element.  An
#: electrical crosspoint adds a handful of nanoseconds; this default is
#: deliberately conservative.
DEFAULT_PASSTHROUGH_LATENCY = nanoseconds(5)

#: Time to establish or tear down a bypass (crosspoint reconfiguration).
DEFAULT_SETUP_TIME = nanoseconds(1000)


@dataclass
class BypassCircuit:
    """An established physical-layer circuit from ``src`` to ``dst``.

    Attributes
    ----------
    src, dst:
        End hosts of the circuit.
    through:
        The intermediate elements whose switching logic is bypassed.
    capacity_bps:
        Capacity of the circuit (bounded by the narrowest lane bundle
        reserved along the path).
    established_at:
        Simulation time the circuit became usable.
    passthrough_latency:
        Physical pass-through latency charged per bypassed element.
    """

    src: str
    dst: str
    through: Tuple[str, ...]
    capacity_bps: float
    established_at: float
    passthrough_latency: float = DEFAULT_PASSTHROUGH_LATENCY
    propagation_delay: float = 0.0
    bypass_id: int = field(default_factory=lambda: next(_bypass_ids))
    released_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("bypass capacity must be positive")
        if self.src == self.dst:
            raise ValueError("bypass endpoints must differ")

    @property
    def active(self) -> bool:
        """Whether the circuit is currently established."""
        return self.released_at is None

    @property
    def one_way_latency(self) -> float:
        """End-to-end latency of the circuit excluding serialization.

        Each bypassed element contributes only its pass-through latency; no
        switching or queueing delay is incurred anywhere on the path.
        """
        return self.propagation_delay + self.passthrough_latency * len(self.through)

    def serialization_delay(self, size_bits: float) -> float:
        """Time to clock *size_bits* onto the circuit."""
        return size_bits / self.capacity_bps

    def transfer_latency(self, size_bits: float) -> float:
        """Total time to move *size_bits* across the circuit (store-and-forward free)."""
        return self.one_way_latency + self.serialization_delay(size_bits)


class BypassManager:
    """Tracks established bypass circuits and the lanes they reserve.

    The manager enforces a budget of simultaneously reserved lanes per
    element (a crosspoint has a finite number of ports) and answers the
    query the CRC scheduler needs: "is there a circuit for this node pair,
    and what would one cost to set up?".
    """

    def __init__(
        self,
        max_circuits: Optional[int] = None,
        setup_time: float = DEFAULT_SETUP_TIME,
    ) -> None:
        if max_circuits is not None and max_circuits < 0:
            raise ValueError("max_circuits must be >= 0 when given (0 disables bypasses)")
        if setup_time < 0:
            raise ValueError("setup_time must be >= 0")
        self.max_circuits = max_circuits
        self.setup_time = setup_time
        self._circuits: Dict[int, BypassCircuit] = {}
        self.total_established = 0
        self.total_released = 0
        self.rejected = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def active_circuits(self) -> List[BypassCircuit]:
        """All currently established circuits."""
        return [circuit for circuit in self._circuits.values() if circuit.active]

    def circuit_for(self, src: str, dst: str) -> Optional[BypassCircuit]:
        """The active circuit serving ``src -> dst`` (or ``dst -> src``), if any."""
        for circuit in self._circuits.values():
            if not circuit.active:
                continue
            if {circuit.src, circuit.dst} == {src, dst}:
                return circuit
        return None

    def has_capacity(self) -> bool:
        """Whether another circuit may be established under the budget."""
        if self.max_circuits is None:
            return True
        return len(self.active_circuits()) < self.max_circuits

    def __len__(self) -> int:
        return len(self.active_circuits())

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def establish(
        self,
        src: str,
        dst: str,
        through: Sequence[str],
        capacity_bps: float,
        now: float,
        propagation_delay: float = 0.0,
        passthrough_latency: float = DEFAULT_PASSTHROUGH_LATENCY,
    ) -> Optional[BypassCircuit]:
        """Establish a circuit, returning ``None`` if the budget is exhausted
        or a circuit for the pair already exists.

        The circuit becomes usable at ``now + setup_time``; the returned
        object's ``established_at`` reflects that.
        """
        if not self.has_capacity():
            self.rejected += 1
            return None
        if self.circuit_for(src, dst) is not None:
            self.rejected += 1
            return None
        circuit = BypassCircuit(
            src=src,
            dst=dst,
            through=tuple(through),
            capacity_bps=capacity_bps,
            established_at=now + self.setup_time,
            passthrough_latency=passthrough_latency,
            propagation_delay=propagation_delay,
        )
        self._circuits[circuit.bypass_id] = circuit
        self.total_established += 1
        return circuit

    def release(self, bypass_id: int, now: float) -> None:
        """Tear down a circuit, freeing its lanes for packet switching."""
        circuit = self._circuits.get(bypass_id)
        if circuit is None:
            raise KeyError(f"no bypass circuit with id {bypass_id}")
        if circuit.active:
            circuit.released_at = now
            self.total_released += 1

    def release_pair(self, src: str, dst: str, now: float) -> bool:
        """Tear down the circuit serving a node pair; returns whether one existed."""
        circuit = self.circuit_for(src, dst)
        if circuit is None:
            return False
        self.release(circuit.bypass_id, now)
        return True
