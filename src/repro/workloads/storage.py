"""Disaggregated-storage traffic.

The paper's rack is disaggregated: "NVMe for fast storage, significant
amount of DRAM for caching etc.", so a large share of rack traffic is
compute sleds reading from and writing to storage sleds.  This generator
produces that pattern: compute nodes issue read flows (storage -> compute)
and write flows (compute -> storage) with a configurable read/write mix and
block-sized transfers, using Poisson arrivals.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.flow import Flow
from repro.sim.units import kilobytes, megabytes
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.base import TrafficGenerator, WorkloadSpec


class DisaggregatedStorageWorkload(TrafficGenerator):
    """Compute sleds reading/writing blocks on NVMe sleds."""

    name = "disaggregated-storage"

    def __init__(
        self,
        spec: WorkloadSpec,
        compute_nodes: Optional[Sequence[str]] = None,
        storage_nodes: Optional[Sequence[str]] = None,
        num_requests: int = 200,
        read_fraction: float = 0.7,
        read_block_bits: float = megabytes(1),
        write_block_bits: float = kilobytes(256),
        requests_per_second: float = 10_000.0,
    ) -> None:
        """Create the workload.

        Parameters
        ----------
        compute_nodes, storage_nodes:
            Disjoint subsets of ``spec.nodes``; by default the first half
            of the node list computes and the second half stores.
        num_requests:
            Number of read/write requests to generate.
        read_fraction:
            Probability that a request is a read (storage -> compute);
            the rest are writes (compute -> storage).
        read_block_bits, write_block_bits:
            Transfer size per read and write request (reads default to
            1 MB blocks, writes to 256 KB).
        requests_per_second:
            Mean Poisson arrival rate of requests.
        """
        super().__init__(spec)
        nodes = list(spec.nodes)
        half = len(nodes) // 2
        self.compute_nodes = list(compute_nodes) if compute_nodes is not None else nodes[:half]
        self.storage_nodes = list(storage_nodes) if storage_nodes is not None else nodes[half:]
        if not self.compute_nodes or not self.storage_nodes:
            raise ValueError("workload needs at least one compute and one storage node")
        if set(self.compute_nodes) & set(self.storage_nodes):
            raise ValueError("a node cannot be both compute and storage")
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if not 0 <= read_fraction <= 1:
            raise ValueError("read_fraction must be in [0, 1]")
        if read_block_bits <= 0 or write_block_bits <= 0:
            raise ValueError("block sizes must be positive")
        if requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        self.num_requests = num_requests
        self.read_fraction = read_fraction
        self.read_block_bits = read_block_bits
        self.write_block_bits = write_block_bits
        self.requests_per_second = requests_per_second

    def generate(self) -> List[Flow]:
        """Generate read and write flows with Poisson arrivals."""
        arrivals = PoissonArrivals(
            self.requests_per_second, self.random, "storage-arrivals"
        ).times(self.num_requests, self.spec.start_time)
        flows: List[Flow] = []
        for start in arrivals:
            compute = self.random.choice("storage-compute", self.compute_nodes)
            storage = self.random.choice("storage-target", self.storage_nodes)
            is_read = self.random.uniform("storage-rw", 0.0, 1.0) < self.read_fraction
            if is_read:
                flows.append(
                    self._make_flow(
                        storage, compute, self.read_block_bits, start, tag_suffix="read"
                    )
                )
            else:
                flows.append(
                    self._make_flow(
                        compute, storage, self.write_block_bits, start, tag_suffix="write"
                    )
                )
        return self._sorted(flows)
