"""Synthetic rack-scale workloads.

The paper motivates the architecture with distributed rack-scale
applications -- the MapReduce shuffle whose reducer "has to wait for data
from all mappers" is the running example -- and with disaggregated storage
traffic.  These generators produce :class:`~repro.sim.flow.Flow` lists for
the fluid simulator (and packet batches for the packet-level simulator)
covering those patterns plus the standard synthetic mixes used to stress
fabrics: permutation, uniform random, hotspot and incast.

Each generator documents its parameters and the traffic pattern it models
in its docstring; the scenario registry
(:mod:`repro.experiments.scenarios`) wraps every generator in one or more
named scenarios, and ``repro-fabric list-scenarios`` renders the resulting
catalog (see ``docs/scenarios.md``).
"""

from repro.workloads.arrivals import PoissonArrivals, constant_arrivals
from repro.workloads.base import TrafficGenerator, WorkloadSpec
from repro.workloads.hotspot import HotspotWorkload
from repro.workloads.incast import IncastWorkload
from repro.workloads.mapreduce import MapReduceShuffleWorkload
from repro.workloads.permutation import PermutationWorkload
from repro.workloads.storage import DisaggregatedStorageWorkload
from repro.workloads.trace_replay import TraceReplayWorkload, TraceRecordSpec
from repro.workloads.uniform import UniformRandomWorkload

__all__ = [
    "PoissonArrivals",
    "constant_arrivals",
    "TrafficGenerator",
    "WorkloadSpec",
    "HotspotWorkload",
    "IncastWorkload",
    "MapReduceShuffleWorkload",
    "PermutationWorkload",
    "DisaggregatedStorageWorkload",
    "TraceReplayWorkload",
    "TraceRecordSpec",
    "UniformRandomWorkload",
]
