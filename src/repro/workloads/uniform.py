"""Uniform random traffic with Poisson arrivals (open-loop background load)."""

from __future__ import annotations

from typing import List, Optional

from repro.sim.flow import Flow
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.base import TrafficGenerator, WorkloadSpec


class UniformRandomWorkload(TrafficGenerator):
    """Flows between uniformly chosen distinct node pairs.

    Flow sizes are exponentially distributed around the spec's mean; arrivals
    follow a Poisson process whose rate is chosen to hit a target offered
    load expressed as a fraction of a reference capacity.
    """

    name = "uniform-random"

    def __init__(
        self,
        spec: WorkloadSpec,
        num_flows: int = 100,
        offered_load_bps: Optional[float] = None,
        arrival_rate_per_second: Optional[float] = None,
    ) -> None:
        """Create the workload.

        Parameters
        ----------
        num_flows:
            Number of flows to generate.
        offered_load_bps:
            Aggregate bits per second offered to the fabric; the Poisson
            arrival rate is derived as ``offered_load_bps / mean_flow_size``.
        arrival_rate_per_second:
            Explicit Poisson arrival rate.

        Exactly one of *offered_load_bps* or *arrival_rate_per_second* may
        be given; with neither, all flows start at ``spec.start_time`` (a
        closed burst).
        """
        super().__init__(spec)
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        if offered_load_bps is not None and arrival_rate_per_second is not None:
            raise ValueError("give offered_load_bps or arrival_rate_per_second, not both")
        self.num_flows = num_flows
        if offered_load_bps is not None:
            if offered_load_bps <= 0:
                raise ValueError("offered_load_bps must be positive")
            arrival_rate_per_second = offered_load_bps / spec.mean_flow_size_bits
        self.arrival_rate_per_second = arrival_rate_per_second

    def generate(self) -> List[Flow]:
        """Generate ``num_flows`` flows."""
        nodes = list(self.spec.nodes)
        if self.arrival_rate_per_second is not None:
            arrivals = PoissonArrivals(
                self.arrival_rate_per_second, self.random, "uniform-arrivals"
            ).times(self.num_flows, self.spec.start_time)
        else:
            arrivals = [self.spec.start_time] * self.num_flows
        flows: List[Flow] = []
        for start in arrivals:
            src = self.random.choice("uniform-src", nodes)
            dst = self.random.choice("uniform-dst", [n for n in nodes if n != src])
            size = self.random.exponential("uniform-size", self.spec.mean_flow_size_bits)
            size = max(size, 1.0)
            flows.append(self._make_flow(src, dst, size_bits=size, start_time=start))
        return self._sorted(flows)
