"""Incast: many senders converge on one receiver simultaneously.

Incast is the worst case for the receiver's last-hop link and for the
buffers of whatever element sits in front of it; it is also the
communication pattern of the reduce phase seen from a single reducer, so it
complements the full shuffle workload.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.flow import Flow
from repro.workloads.base import TrafficGenerator, WorkloadSpec


class IncastWorkload(TrafficGenerator):
    """All senders transmit the same-sized block to one receiver at once."""

    name = "incast"

    def __init__(
        self,
        spec: WorkloadSpec,
        receiver: Optional[str] = None,
        senders: Optional[Sequence[str]] = None,
        stagger: float = 0.0,
    ) -> None:
        """Create the incast.

        Parameters
        ----------
        receiver:
            The destination node; defaults to the last node of the spec.
        senders:
            The sources; default every other node.
        stagger:
            Optional fixed inter-sender start offset (0 = perfectly
            synchronised, the worst case).
        """
        super().__init__(spec)
        nodes = list(spec.nodes)
        self.receiver = receiver if receiver is not None else nodes[-1]
        if self.receiver not in nodes:
            raise ValueError(f"receiver {self.receiver!r} is not in the node list")
        self.senders = (
            list(senders)
            if senders is not None
            else [node for node in nodes if node != self.receiver]
        )
        if not self.senders:
            raise ValueError("incast needs at least one sender")
        if self.receiver in self.senders:
            raise ValueError("the receiver cannot also be a sender")
        if stagger < 0:
            raise ValueError("stagger must be >= 0")
        self.stagger = stagger

    def generate(self) -> List[Flow]:
        """One flow per sender towards the receiver."""
        flows: List[Flow] = []
        for index, sender in enumerate(self.senders):
            flows.append(
                self._make_flow(
                    sender,
                    self.receiver,
                    size_bits=self.spec.mean_flow_size_bits,
                    start_time=self.spec.start_time + index * self.stagger,
                )
            )
        return self._sorted(flows)

    def fan_in(self) -> int:
        """Number of simultaneous senders."""
        return len(self.senders)
