"""Trace replay: turn an explicit list of transfer records into flows.

The paper's evaluation plan integrates a validated small-scale model into
larger simulations; replaying explicit traces (from a CSV file or an
in-memory list) is the mechanism that lets users feed their own measured
rack traffic through the same pipeline as the synthetic workloads.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.flow import Flow
from repro.workloads.base import TrafficGenerator, WorkloadSpec


@dataclass(frozen=True)
class TraceRecordSpec:
    """One transfer in a replayable trace."""

    src: str
    dst: str
    size_bits: float
    start_time: float

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError("size_bits must be positive")
        if self.start_time < 0:
            raise ValueError("start_time must be >= 0")
        if self.src == self.dst:
            raise ValueError("src and dst must differ")


class TraceReplayWorkload(TrafficGenerator):
    """Replay an explicit sequence of transfers."""

    name = "trace-replay"

    def __init__(self, spec: WorkloadSpec, records: Sequence[TraceRecordSpec]) -> None:
        """Create the workload.

        Parameters
        ----------
        records:
            The transfers to replay, one :class:`TraceRecordSpec` each;
            every endpoint they reference must appear in ``spec.nodes``.
            Record start times are relative -- :meth:`generate` shifts them
            by ``spec.start_time``.
        """
        super().__init__(spec)
        if not records:
            raise ValueError("trace replay needs at least one record")
        known = set(spec.nodes)
        unknown = {r.src for r in records if r.src not in known} | {
            r.dst for r in records if r.dst not in known
        }
        if unknown:
            raise ValueError(f"trace references nodes not in the spec: {sorted(unknown)}")
        self.records = list(records)

    def generate(self) -> List[Flow]:
        """One flow per trace record, shifted by the spec's start time."""
        flows = [
            self._make_flow(
                record.src,
                record.dst,
                record.size_bits,
                record.start_time + self.spec.start_time,
            )
            for record in self.records
        ]
        return self._sorted(flows)

    # ------------------------------------------------------------------ #
    # CSV support
    # ------------------------------------------------------------------ #
    @staticmethod
    def parse_csv(text: str) -> List[TraceRecordSpec]:
        """Parse ``src,dst,size_bits,start_time`` CSV text (header optional)."""
        records: List[TraceRecordSpec] = []
        reader = csv.reader(io.StringIO(text))
        for row in reader:
            if not row or row[0].strip().lower() in ("src", "source"):
                continue
            if len(row) < 4:
                raise ValueError(f"trace row needs 4 columns, got {row!r}")
            records.append(
                TraceRecordSpec(
                    src=row[0].strip(),
                    dst=row[1].strip(),
                    size_bits=float(row[2]),
                    start_time=float(row[3]),
                )
            )
        if not records:
            raise ValueError("no trace records found in CSV text")
        return records

    @classmethod
    def from_csv(cls, spec: WorkloadSpec, text: str) -> "TraceReplayWorkload":
        """Build a replay workload directly from CSV text."""
        return cls(spec, cls.parse_csv(text))
