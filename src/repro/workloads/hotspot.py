"""Hotspot traffic: a fraction of all traffic converges on a few node pairs.

This is the congestion pattern that makes reconfiguration attractive: most
of the fabric is idle while a handful of links saturate, so moving lanes (or
carving bypasses) towards the hot pairs is worth its cost.  The bypass and
grid-to-torus experiments both use it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.flow import Flow
from repro.workloads.base import TrafficGenerator, WorkloadSpec


class HotspotWorkload(TrafficGenerator):
    """A background of uniform traffic plus concentrated hot pairs."""

    name = "hotspot"

    def __init__(
        self,
        spec: WorkloadSpec,
        num_flows: int = 100,
        hot_fraction: float = 0.7,
        num_hot_pairs: int = 2,
        hot_pairs: Optional[Sequence[Tuple[str, str]]] = None,
        hot_size_multiplier: float = 4.0,
    ) -> None:
        """Create the workload.

        Parameters
        ----------
        num_flows:
            Total number of flows (hot and background together).
        hot_fraction:
            Fraction of flows directed at the hot pairs.
        num_hot_pairs:
            Number of hot pairs to draw (ignored when *hot_pairs* is given).
        hot_pairs:
            Explicit hot pairs; defaults to randomly drawn distinct pairs.
        hot_size_multiplier:
            Hot flows are this much larger than the background mean.
        """
        super().__init__(spec)
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        if not 0 <= hot_fraction <= 1:
            raise ValueError("hot_fraction must be in [0, 1]")
        if num_hot_pairs <= 0:
            raise ValueError("num_hot_pairs must be positive")
        if hot_size_multiplier <= 0:
            raise ValueError("hot_size_multiplier must be positive")
        self.num_flows = num_flows
        self.hot_fraction = hot_fraction
        self.hot_size_multiplier = hot_size_multiplier
        if hot_pairs is not None:
            self.hot_pairs = [tuple(pair) for pair in hot_pairs]
            for src, dst in self.hot_pairs:
                if src == dst:
                    raise ValueError("hot pair endpoints must differ")
        else:
            self.hot_pairs = self._draw_hot_pairs(num_hot_pairs)

    def _draw_hot_pairs(self, count: int) -> List[Tuple[str, str]]:
        nodes = list(self.spec.nodes)
        pairs: List[Tuple[str, str]] = []
        attempts = 0
        while len(pairs) < count and attempts < 100 * count:
            attempts += 1
            src = self.random.choice("hot-src", nodes)
            dst = self.random.choice("hot-dst", [n for n in nodes if n != src])
            if (src, dst) not in pairs:
                pairs.append((src, dst))
        return pairs

    def generate(self) -> List[Flow]:
        """Mix of hot-pair flows and uniform background flows."""
        nodes = list(self.spec.nodes)
        flows: List[Flow] = []
        num_hot = int(round(self.num_flows * self.hot_fraction))
        for index in range(self.num_flows):
            if index < num_hot:
                src, dst = self.hot_pairs[index % len(self.hot_pairs)]
                size = self.spec.mean_flow_size_bits * self.hot_size_multiplier
                flows.append(
                    self._make_flow(src, dst, size, self.spec.start_time, tag_suffix="hot")
                )
            else:
                src = self.random.choice("bg-src", nodes)
                dst = self.random.choice("bg-dst", [n for n in nodes if n != src])
                size = max(
                    self.random.exponential("bg-size", self.spec.mean_flow_size_bits), 1.0
                )
                flows.append(
                    self._make_flow(src, dst, size, self.spec.start_time, tag_suffix="bg")
                )
        return self._sorted(flows)
