"""Permutation traffic: every node sends to exactly one other node.

Permutation matrices are the classic adversarial-but-admissible workload for
direct-connect topologies: they load the fabric evenly at the endpoints but
concentrate traffic on whichever links the permutation happens to cross,
which is precisely the congestion signal the CRC reacts to.
"""

from __future__ import annotations

from typing import List

from repro.sim.flow import Flow
from repro.workloads.base import TrafficGenerator, WorkloadSpec


class PermutationWorkload(TrafficGenerator):
    """A random derangement of the node list, one flow per source."""

    name = "permutation"

    def __init__(self, spec: WorkloadSpec, heavy_tailed: bool = False, pareto_shape: float = 1.3) -> None:
        """Create the workload.

        Parameters
        ----------
        heavy_tailed:
            When true, flow sizes are Pareto-distributed around the spec's
            mean (the mice/elephants mix of real datacenter traffic)
            instead of all equal to it.
        pareto_shape:
            Tail index of the Pareto distribution; values near 1.1-1.5
            match reported datacenter size distributions.  Must be > 1 so
            the mean exists.
        """
        super().__init__(spec)
        if pareto_shape <= 1.0:
            raise ValueError("pareto_shape must be > 1 so the mean exists")
        self.heavy_tailed = heavy_tailed
        self.pareto_shape = pareto_shape

    def _flow_size(self) -> float:
        if not self.heavy_tailed:
            return self.spec.mean_flow_size_bits
        # Lomax/Pareto with the requested mean: mean = scale * shape / (shape - 1)
        # for the "1 + pareto" form used by RandomStreams.pareto, the mean is
        # scale * shape / (shape - 1); solve for scale.
        scale = self.spec.mean_flow_size_bits * (self.pareto_shape - 1.0) / self.pareto_shape
        return self.random.pareto("perm-size", self.pareto_shape, scale)

    def generate(self) -> List[Flow]:
        """One flow from every node to its image under a random derangement."""
        nodes = list(self.spec.nodes)
        mapping = self.random.derangement("perm", len(nodes))
        flows: List[Flow] = []
        for index, node in enumerate(nodes):
            destination = nodes[mapping[index]]
            flows.append(
                self._make_flow(
                    node,
                    destination,
                    size_bits=self._flow_size(),
                    start_time=self.spec.start_time,
                )
            )
        return self._sorted(flows)
