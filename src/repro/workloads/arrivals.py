"""Arrival processes used by open-loop workloads."""

from __future__ import annotations

from typing import List

from repro.sim.random import RandomStreams


class PoissonArrivals:
    """Poisson arrival times with a given mean rate (arrivals per second)."""

    def __init__(self, rate_per_second: float, streams: RandomStreams, stream_name: str = "arrivals") -> None:
        """Create the process.

        Parameters
        ----------
        rate_per_second:
            Mean arrival rate (inter-arrival times are exponential with
            mean ``1 / rate_per_second``).
        streams:
            The experiment's named random streams.
        stream_name:
            Stream to draw from, so arrival noise stays independent of the
            caller's other draws.
        """
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        self.rate_per_second = rate_per_second
        self.streams = streams
        self.stream_name = stream_name

    def times(self, count: int, start_time: float = 0.0) -> List[float]:
        """The first *count* arrival times after *start_time*."""
        if count < 0:
            raise ValueError("count must be >= 0")
        times: List[float] = []
        current = start_time
        for _ in range(count):
            current += self.streams.exponential(self.stream_name, 1.0 / self.rate_per_second)
            times.append(current)
        return times

    def times_until(self, horizon: float, start_time: float = 0.0, max_count: int = 1_000_000) -> List[float]:
        """All arrival times in ``(start_time, horizon]`` (bounded by *max_count*)."""
        if horizon < start_time:
            raise ValueError("horizon must be >= start_time")
        times: List[float] = []
        current = start_time
        while len(times) < max_count:
            current += self.streams.exponential(self.stream_name, 1.0 / self.rate_per_second)
            if current > horizon:
                break
            times.append(current)
        return times


def constant_arrivals(count: int, interval: float, start_time: float = 0.0) -> List[float]:
    """Evenly spaced arrival times: ``start + i * interval`` for i in 0..count-1."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if interval < 0:
        raise ValueError("interval must be >= 0")
    return [start_time + index * interval for index in range(count)]
