"""Workload abstractions shared by all traffic generators."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.flow import Flow
from repro.sim.random import RandomStreams
from repro.sim.units import megabytes


@dataclass
class WorkloadSpec:
    """Parameters common to every workload.

    Attributes
    ----------
    nodes:
        Names of the endpoint sleds that participate in the workload.
    mean_flow_size_bits:
        Mean flow size; generators interpret it according to their own size
        distribution (fixed, exponential or heavy-tailed).
    start_time:
        Time the first flow may start.
    seed:
        Root seed for the workload's random streams.
    tag:
        Free-form label copied onto every generated flow.
    """

    nodes: Sequence[str]
    mean_flow_size_bits: float = megabytes(8)
    start_time: float = 0.0
    seed: int = 0
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError("a workload needs at least two participating nodes")
        if self.mean_flow_size_bits <= 0:
            raise ValueError("mean_flow_size_bits must be positive")
        if self.start_time < 0:
            raise ValueError("start_time must be >= 0")


class TrafficGenerator(abc.ABC):
    """Base class of all workload generators.

    Subclasses set :attr:`name` (the key the scenario registry and the
    generated scenario catalog use to identify the generator) and implement
    :meth:`generate`.  The first line of a subclass's docstring doubles as
    the catalog's one-line description of the traffic pattern it models, so
    keep it self-contained.
    """

    #: Registry key of the generator; also the default tag on its flows.
    name: str = "workload"

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.random = RandomStreams(spec.seed)

    @abc.abstractmethod
    def generate(self) -> List[Flow]:
        """Produce the workload's flows (sorted by start time)."""

    # ------------------------------------------------------------------ #
    # Helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _make_flow(
        self,
        src: str,
        dst: str,
        size_bits: float,
        start_time: float,
        tag_suffix: str = "",
    ) -> Flow:
        tag = self.spec.tag if self.spec.tag is not None else self.name
        if tag_suffix:
            tag = f"{tag}:{tag_suffix}"
        return Flow(
            src=src,
            dst=dst,
            size_bits=size_bits,
            start_time=start_time,
            tag=tag,
        )

    @staticmethod
    def _sorted(flows: List[Flow]) -> List[Flow]:
        return sorted(flows, key=lambda flow: (flow.start_time, flow.flow_id))

    def demand_matrix(self, flows: Sequence[Flow]) -> Dict[tuple, float]:
        """Aggregate bits per (src, dst) pair -- useful for tests and reports."""
        matrix: Dict[tuple, float] = {}
        for flow in flows:
            key = (flow.src, flow.dst)
            matrix[key] = matrix.get(key, 0.0) + flow.size_bits
        return matrix
