"""MapReduce shuffle workload.

The paper's motivating example (section 2): "consider a MapReduce operation
that requires transmission from all nodes.  Since a reducer has to wait for
data from all mappers, the slowest link pulls down the performance of an
entire system."  The metric that matters is therefore the *makespan* of the
shuffle -- the time until the last mapper-to-reducer transfer completes --
and the straggler is whichever flow crosses the most congested part of the
fabric.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.flow import Flow
from repro.workloads.base import TrafficGenerator, WorkloadSpec


class MapReduceShuffleWorkload(TrafficGenerator):
    """All-to-all shuffle between mapper nodes and reducer nodes."""

    name = "mapreduce-shuffle"

    def __init__(
        self,
        spec: WorkloadSpec,
        mappers: Optional[Sequence[str]] = None,
        reducers: Optional[Sequence[str]] = None,
        size_jitter: float = 0.2,
        skew_factor: float = 1.0,
    ) -> None:
        """Create a shuffle.

        Parameters
        ----------
        mappers, reducers:
            Subsets of ``spec.nodes``; by default the first half of the node
            list maps and the second half reduces.
        size_jitter:
            Relative uniform jitter applied to every transfer size (real
            shuffles are never perfectly balanced).
        skew_factor:
            Multiplier applied to the transfers of the *last* reducer,
            modelling partitioning skew (>1 makes one reducer hot).
        """
        super().__init__(spec)
        nodes = list(spec.nodes)
        half = len(nodes) // 2
        self.mappers = list(mappers) if mappers is not None else nodes[:half]
        self.reducers = list(reducers) if reducers is not None else nodes[half:]
        if not self.mappers or not self.reducers:
            raise ValueError("shuffle needs at least one mapper and one reducer")
        overlap = set(self.mappers) & set(self.reducers)
        if overlap:
            raise ValueError(f"nodes cannot be both mapper and reducer: {sorted(overlap)}")
        if not 0 <= size_jitter < 1:
            raise ValueError("size_jitter must be in [0, 1)")
        if skew_factor <= 0:
            raise ValueError("skew_factor must be positive")
        self.size_jitter = size_jitter
        self.skew_factor = skew_factor

    def generate(self) -> List[Flow]:
        """One flow per (mapper, reducer) pair, all released at ``start_time``."""
        flows: List[Flow] = []
        base = self.spec.mean_flow_size_bits
        for mapper in self.mappers:
            for index, reducer in enumerate(self.reducers):
                jitter = 1.0
                if self.size_jitter > 0:
                    jitter = self.random.uniform(
                        "shuffle-size", 1.0 - self.size_jitter, 1.0 + self.size_jitter
                    )
                size = base * jitter
                if index == len(self.reducers) - 1:
                    size *= self.skew_factor
                flows.append(
                    self._make_flow(
                        mapper,
                        reducer,
                        size_bits=size,
                        start_time=self.spec.start_time,
                        tag_suffix=f"r{index}",
                    )
                )
        return self._sorted(flows)

    def total_shuffle_bits(self) -> float:
        """Expected total bits moved by the shuffle (ignoring jitter)."""
        per_reducer = len(self.mappers) * self.spec.mean_flow_size_bits
        regular = per_reducer * (len(self.reducers) - 1)
        skewed = per_reducer * self.skew_factor
        return regular + skewed
