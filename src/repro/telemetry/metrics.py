"""Metric helpers used by the collector, benchmarks and tests."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.sim.flow import Flow, FlowSet


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The *q*-th percentile of *values*, or ``None`` when empty."""
    values = list(values)
    if not values:
        return None
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(values, q))


def describe(values: Sequence[float]) -> Dict[str, Optional[float]]:
    """Summary statistics (count, mean, p50, p99, min, max) of *values*."""
    values = list(values)
    if not values:
        return {
            "count": 0.0,
            "mean": None,
            "p50": None,
            "p99": None,
            "min": None,
            "max": None,
        }
    return {
        "count": float(len(values)),
        "mean": float(np.mean(values)),
        "p50": percentile(values, 50),
        "p99": percentile(values, 99),
        "min": float(min(values)),
        "max": float(max(values)),
    }


def throughput_bps(total_bits: float, duration: float) -> float:
    """Aggregate goodput: total bits over the duration they took."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    if total_bits < 0:
        raise ValueError("total_bits must be >= 0")
    return total_bits / duration


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index of an allocation (1 = perfectly fair).

    Defined as ``(sum x)^2 / (n * sum x^2)``; an empty allocation is
    defined here as perfectly fair.
    """
    values = [v for v in values if v >= 0]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def straggler_ratio(flows: FlowSet) -> Optional[float]:
    """Max FCT over median FCT: how much the slowest transfer lags the pack.

    This is the paper's MapReduce concern quantified -- the reducer waits
    for the straggler, so a ratio near 1.0 means the fabric served every
    mapper evenly.
    """
    times = flows.completion_times()
    if not times:
        return None
    median = percentile(times, 50)
    if not median:
        return None
    return max(times) / median


def goodput_of_flows(flows: Iterable[Flow]) -> float:
    """Sum of size/fct over completed flows (aggregate achieved rate)."""
    total = 0.0
    for flow in flows:
        if flow.completed and flow.fct:
            total += flow.size_bits / flow.fct
    return total
