"""Telemetry: metric computation, collection and reporting."""

from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.metrics import (
    describe,
    jain_fairness_index,
    percentile,
    straggler_ratio,
    throughput_bps,
)
from repro.telemetry.report import Report, ReportTable, format_series, format_table

__all__ = [
    "TelemetryCollector",
    "describe",
    "jain_fairness_index",
    "percentile",
    "straggler_ratio",
    "throughput_bps",
    "Report",
    "ReportTable",
    "format_series",
    "format_table",
]
