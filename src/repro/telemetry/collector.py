"""Telemetry collection over a running experiment.

The collector samples time series (power, utilisation, active flows) at a
fixed period and aggregates flow-level results at the end of a run.  It is
deliberately independent of the simulators so the same collector serves the
fluid simulator, the packet simulator and the analytical models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.flow import FlowSet
from repro.telemetry.metrics import straggler_ratio, throughput_bps


@dataclass
class TimeSeries:
    """A named sequence of ``(time, value)`` samples."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample (times must be non-decreasing)."""
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(f"time series {self.name!r} must be sampled in time order")
        self.samples.append((time, value))

    def values(self) -> List[float]:
        """Just the sample values."""
        return [value for _, value in self.samples]

    def times(self) -> List[float]:
        """Just the sample times."""
        return [time for time, _ in self.samples]

    def last(self) -> Optional[float]:
        """The most recent value, or ``None``."""
        return self.samples[-1][1] if self.samples else None

    def maximum(self) -> Optional[float]:
        """Largest value, or ``None``."""
        values = self.values()
        return max(values) if values else None

    def mean(self) -> Optional[float]:
        """Arithmetic mean of values, or ``None``."""
        values = self.values()
        if not values:
            return None
        return sum(values) / len(values)

    def time_weighted_mean(self) -> Optional[float]:
        """Mean weighted by holding time (zero-order hold)."""
        if len(self.samples) < 2:
            return self.last()
        total = 0.0
        duration = self.samples[-1][0] - self.samples[0][0]
        if duration <= 0:
            return self.last()
        for (t0, v0), (t1, _) in zip(self.samples, self.samples[1:]):
            total += v0 * (t1 - t0)
        return total / duration


class TelemetryCollector:
    """Collects named time series and flow-level summaries."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}
        self.flow_sets: Dict[str, FlowSet] = {}

    # ------------------------------------------------------------------ #
    # Time series
    # ------------------------------------------------------------------ #
    def series(self, name: str) -> TimeSeries:
        """Return (creating if needed) the series called *name*."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def record(self, name: str, time: float, value: float) -> None:
        """Record one sample into the series called *name*."""
        self.series(name).record(time, value)

    def series_names(self) -> List[str]:
        """Names of all series collected so far."""
        return sorted(self._series)

    def sample_callable(
        self, name: str, probe: Callable[[], float]
    ) -> Callable[[float], None]:
        """A periodic-process callback that samples ``probe()`` into *name*."""

        def sample(now: float) -> None:
            self.record(name, now, probe())

        return sample

    # ------------------------------------------------------------------ #
    # Flow-level results
    # ------------------------------------------------------------------ #
    def register_flows(self, label: str, flows: FlowSet) -> None:
        """Attach a flow set under *label* (e.g. 'adaptive', 'baseline')."""
        self.flow_sets[label] = flows

    def flow_summary(self, label: str) -> Dict[str, Optional[float]]:
        """FCT statistics plus makespan / straggler ratio for a flow set."""
        flows = self.flow_sets[label]
        summary: Dict[str, Optional[float]] = dict(flows.summary())
        summary["straggler_ratio"] = straggler_ratio(flows)
        makespan = flows.makespan()
        if makespan:
            summary["aggregate_throughput_bps"] = throughput_bps(
                flows.total_bits(), makespan
            )
        else:
            summary["aggregate_throughput_bps"] = None
        return summary

    def compare(self, label_a: str, label_b: str) -> Dict[str, Optional[float]]:
        """Ratios of headline metrics between two labelled flow sets (a / b)."""
        a = self.flow_summary(label_a)
        b = self.flow_summary(label_b)
        comparison: Dict[str, Optional[float]] = {}
        for key in ("mean_fct", "p99_fct", "max_fct", "makespan"):
            if a.get(key) and b.get(key):
                comparison[f"{key}_ratio"] = a[key] / b[key]  # type: ignore[operator]
            else:
                comparison[f"{key}_ratio"] = None
        return comparison

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Dict[str, Optional[float]]]:
        """All series summarised (mean/max/last) plus flow summaries."""
        result: Dict[str, Dict[str, Optional[float]]] = {}
        for name, series in self._series.items():
            result[f"series:{name}"] = {
                "mean": series.mean(),
                "time_weighted_mean": series.time_weighted_mean(),
                "max": series.maximum(),
                "last": series.last(),
                "samples": float(len(series.samples)),
            }
        for label in self.flow_sets:
            result[f"flows:{label}"] = self.flow_summary(label)
        return result
