"""Plain-text report formatting for benchmarks and the CLI.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output aligned and consistent so EXPERIMENTS.md can
quote it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]


def _format_value(value: object, precision: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows = [[_format_value(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(name: str, pairs: Sequence[Sequence[Number]], x_label: str = "x", y_label: str = "y") -> str:
    """Render a two-column series (one figure line) as text."""
    return format_table([x_label, y_label], pairs, title=name)


@dataclass
class ReportTable:
    """A titled table accumulated row by row."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (must match the header count)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table {self.title!r} has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """The table as aligned text."""
        return format_table(self.headers, self.rows, title=self.title)


@dataclass
class Report:
    """A named collection of tables and scalar results."""

    name: str
    tables: List[ReportTable] = field(default_factory=list)
    scalars: Dict[str, object] = field(default_factory=dict)

    def table(self, title: str, headers: Sequence[str]) -> ReportTable:
        """Create, register and return a new table."""
        table = ReportTable(title=title, headers=list(headers))
        self.tables.append(table)
        return table

    def set(self, key: str, value: object) -> None:
        """Record a scalar result."""
        self.scalars[key] = value

    def render(self) -> str:
        """The whole report as text."""
        parts: List[str] = [f"== {self.name} =="]
        if self.scalars:
            parts.append(
                format_table(
                    ["metric", "value"],
                    [[key, value] for key, value in self.scalars.items()],
                )
            )
        for table in self.tables:
            parts.append(table.render())
        return "\n\n".join(parts)
