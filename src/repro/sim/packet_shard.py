"""Spatially-sharded packet engine: disjoint fabric regions in parallel.

:class:`ShardedPacketCore` is the ``engine="sharded"`` implementation
behind :class:`repro.fabric.packetsim.PacketBackend`.  It partitions the
workload by *traffic closure* -- flows are unioned over the undirected
links their routes visit, so two flows land in the same shard exactly
when any packet of one can ever contend with a packet of the other --
and runs one :class:`~repro.sim.packet_batch.BatchedPacketCore` per
shard, each advancing its per-port FIFO trains independently between
synchronisation points.

Why it is bit-exact
-------------------
The event engine's global order is ``(time, seq)`` with ``seq`` assigned
at scheduling time.  Restricting a monolithic execution to one closure
component renumbers that component's seqs monotonically (events of
disjoint components never interact, so the component's scheduling order
-- and hence its tie resolution and every float it computes -- is
unchanged).  Each shard is therefore bitwise-identical to the monolithic
engine on the ports, flows and statistics streams it owns, for any shard
count.  The only global state is the pair of left folds over delivery
order (``bits_delivered`` and the ``queueing_samples`` list) and the
fold over retransmit order (``retransmitted_bits``): each shard keeps an
append-log of its ``(time, size)`` contributions, and the coordinator
re-folds them in merged event order.  Cross-shard ties in those merges
are resolved by checking that every colliding contribution is bitwise
identical -- then any interleaving yields the same fold -- and, when
they are not, by *demoting*: replaying the run's full operation journal
on a fresh monolithic core, which is always exact (see below).

Epoch barriers and lookahead
----------------------------
The general sharded-engine recipe bounds how far a shard may run ahead
by the *conservative lookahead* -- the minimum link latency, i.e. the
earliest a boundary packet could arrive from another shard -- and
exchanges boundary packets at epoch barriers.  Traffic-closure
partitioning makes the boundary traffic provably empty (no route crosses
shards), so every epoch safely extends to the full drive horizon: each
``drive()`` is one epoch, and the barrier at its end is where the
coordinator re-merges the global folds and (in process mode) adopts the
worker cores.  :attr:`ShardedPacketCore.conservative_lookahead` exposes
the bound for introspection and tests.

Demotion
--------
Operations the disjoint-shard execution cannot honour -- external
``schedule_at``/``schedule`` callbacks (controllers, failure injectors),
a reroute whose new path collides with another shard, or an ambiguous
cross-shard merge tie -- fall back to one monolithic
:class:`BatchedPacketCore`.  The coordinator journals every externally
visible operation (drives, capacity syncs, enable/disable toggles,
reroutes) from construction on; demotion resets the flows to their
construction snapshots, rebuilds a monolithic core and replays the
journal, which reproduces the monolithic execution bit for bit.  After
demotion every call passes straight through.  Replay assumes the run's
fabric mutations all went through the backend facade (direct fabric
edits between runs are re-read live and cannot be replayed); a truncated
(``max_events``) sharded drive cannot be replayed faithfully either, so
demoting after one raises :class:`SimulationError`.

Process fan-out
---------------
With more than one shard and no demotion triggers, ``drive()`` can fan
the shard cores out across ``multiprocessing`` workers (the spawn-safe
pattern of :func:`repro.experiments.sweep._worker_init`: spawn context,
explicit ``sys.path`` hand-off, order-preserving ``map``).  Workers
return their cores by value; the coordinator *adopts* them -- rebinding
the shared fabric, the facade's flow objects and the shared
disabled-links set back onto the returned object graph -- so subsequent
in-process operation is seamless.  Dispatch is controlled by the
``REPRO_SHARD_DISPATCH`` environment variable (``auto`` | ``process`` |
``inline``); ``auto`` uses processes only when the host has more than
one CPU, and any pickling failure falls back to the bit-identical
inline path.
"""

from __future__ import annotations

import os
import sys
from heapq import heappush, heappop
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import SimulationError
from repro.sim.flow import Flow
from repro.sim.packet_batch import BatchedPacketCore
from repro.sim.trace import NullTrace, TraceRecorder
from repro.sim.transport import FlowTransportState, TransportConfig

DirectedKey = Tuple[str, str]

#: Dispatch override: ``auto`` (default), ``process`` or ``inline``.
_DISPATCH_ENV = "REPRO_SHARD_DISPATCH"


class _RouteTable:
    """Picklable route resolver over paths pre-resolved by the coordinator.

    The coordinator resolves every flow's route once, in flow order --
    the same router calls, in the same order, the monolithic core would
    make -- so shard cores (and demotion replays, and spawned workers)
    all see identical paths without re-running the router.
    """

    __slots__ = ("_routes",)

    def __init__(self, routes: Dict[int, List[str]]) -> None:
        self._routes = routes

    def __call__(self, flow: Flow) -> List[str]:
        return self._routes[flow.flow_id]


class _JournaledSet(set):
    """The shared disabled-links set, with journal hooks on mutation.

    The backend facade toggles links by mutating ``disabled_links``
    directly; every shard core shares this one object, and the hooks
    record the toggle order so a demotion replay can reproduce it.
    Pickles as a plain :class:`set` (workers never mutate it, and the
    coordinator rebinds the shared object on adoption).
    """

    __slots__ = ("_journal",)

    def __init__(self, journal: list) -> None:
        super().__init__()
        self._journal = journal

    def add(self, key) -> None:
        self._journal.append(("disable", key))
        set.add(self, key)

    def discard(self, key) -> None:
        self._journal.append(("enable", key))
        set.discard(self, key)

    def __reduce__(self):
        return (set, (list(self),))


def _worker_init(path_entries: List[str]) -> None:
    """Mirror of ``repro.experiments.sweep._worker_init`` (spawn-safe).

    Replicated rather than imported: the simulation kernel never imports
    ``repro.experiments``.
    """
    for entry in reversed(path_entries):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _drive_shard(payload):
    """Worker body: drive one shard core and return it by value."""
    core, until, max_events = payload
    truncated = core.drive(until, max_events)
    return core, truncated


def _partition(flows: Sequence[Flow], routes: Dict[int, List[str]],
               shards: int) -> List[List[Flow]]:
    """Group flows into at most *shards* traffic-closure bins.

    Union-find over the undirected links each route visits (undirected
    because ``Fabric.stats_for`` canonicalises statistics streams across
    both directions -- directed disjointness is not enough).  Components
    are packed greedily by descending total size into the emptiest bin;
    everything is keyed on flow order and sizes, never on hash order, so
    the partition is deterministic under any ``PYTHONHASHSEED``.
    """
    parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(x):
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    flow_root: Dict[int, Tuple[str, str]] = {}
    for flow in flows:
        path = routes[flow.flow_id]
        keys = [
            (a, b) if a <= b else (b, a)
            for a, b in zip(path[:-1], path[1:])
        ]
        for key in keys:
            if key not in parent:
                parent[key] = key
        first = find(keys[0])
        for key in keys[1:]:
            root = find(key)
            if root != first:
                parent[root] = first
        flow_root[flow.flow_id] = first

    components: Dict[Tuple[str, str], List[Flow]] = {}
    for flow in flows:
        components.setdefault(find(flow_root[flow.flow_id]), []).append(flow)
    # Deterministic greedy packing: components by descending work (total
    # bits, first-flow order as the tie-break), each into the least-loaded
    # bin (lowest index on ties).
    comps = sorted(
        components.values(),
        key=lambda fl: (-sum(f.size_bits for f in fl), fl[0].flow_id),
    )
    bins: List[List[Flow]] = [[] for _ in range(min(shards, len(comps)))]
    loads = [0.0] * len(bins)
    for comp in comps:
        idx = loads.index(min(loads))
        bins[idx].extend(comp)
        loads[idx] += sum(f.size_bits for f in comp)
    for flows_in_bin in bins:
        flows_in_bin.sort(key=lambda f: f.flow_id)
    bins.sort(key=lambda fl: fl[0].flow_id)
    return bins


class ShardedPacketCore:
    """Coordinator over per-shard :class:`BatchedPacketCore` instances.

    Exposes the same fused simulator/network/transport surface, so
    :class:`~repro.fabric.packetsim.PacketBackend` points all three roles
    at one object exactly as it does for ``engine="batched"``.
    """

    def __init__(
        self,
        fabric,
        flows: Sequence[Flow],
        route_fn: Callable[[Flow], Sequence[str]],
        config: Optional[TransportConfig] = None,
        trace: Optional[TraceRecorder] = None,
        ecn_threshold: float = 0.65,
        record_hops: bool = False,
        retain_packets: bool = False,
        port_factory=None,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.fabric = fabric
        self.trace = trace if trace is not None else NullTrace()
        self.config = config if config is not None else TransportConfig()
        self._flows = list(flows)
        self._flow_by_id = {flow.flow_id: flow for flow in self._flows}
        # Construction snapshot of every mutable Flow field, for demotion
        # replays (the journal replay needs pristine flows).
        self._flow_snapshots = [
            (f.state, f.completion_time, f.bits_remaining, dict(f.metadata))
            for f in self._flows
        ]
        # Resolve every route once, in flow order (same router calls the
        # monolithic core would make).
        routes = {f.flow_id: list(route_fn(f)) for f in self._flows}
        self._route_table = _RouteTable(routes)
        self._core_kwargs = dict(
            config=self.config,
            trace=self.trace,
            ecn_threshold=ecn_threshold,
            record_hops=record_hops,
            retain_packets=retain_packets,
            port_factory=port_factory,
        )
        self._journal: list = []
        self._disabled = _JournaledSet(self._journal)
        self._truncation_journaled = False
        self._merged: Optional[dict] = None
        self._mono: Optional[BatchedPacketCore] = None

        rich = bool(
            record_hops or retain_packets or not isinstance(self.trace, NullTrace)
        )
        if rich or shards == 1 or len(self._flows) == 0:
            # Rich mode materialises global Packet/trace order; run it
            # (and the trivial cases) on a single monolithic core.
            bin_flows = [self._flows]
        else:
            bin_flows = _partition(self._flows, routes, shards)
        self._bins: List[BatchedPacketCore] = []
        self._flow_bin: Dict[int, int] = {}
        self._bin_ukeys: List[set] = []
        self._owner: Dict[DirectedKey, int] = {}
        for idx, members in enumerate(bin_flows):
            core = BatchedPacketCore(
                fabric, members, route_fn=self._route_table, **self._core_kwargs
            )
            core.disabled_links = self._disabled
            self._bins.append(core)
            for f in members:
                self._flow_bin[f.flow_id] = idx
            ukeys = set()
            for f in members:
                path = routes[f.flow_id]
                for a, b in zip(path[:-1], path[1:]):
                    self._owner[(a, b)] = idx
                    ukeys.add((a, b) if a <= b else (b, a))
            self._bin_ukeys.append(ukeys)
        if len(self._bins) == 1:
            self._mono = self._bins[0]
        else:
            for core in self._bins:
                core.delivery_log = []
                core.retransmit_log = []
        # Conservative lookahead of the general sharded protocol: the
        # minimum latency of any link -- the soonest a boundary packet
        # could cross shards.  Traffic-closure partitioning has no
        # boundary packets, so epochs extend to the full drive horizon.
        latencies = [
            link.propagation_delay + link.phy_latency
            for link in fabric.topology.links()
        ]
        self.conservative_lookahead = min(latencies) if latencies else 0.0

    # ------------------------------------------------------------------ #
    # Sharding introspection
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self) -> int:
        """Number of live shards (1 after demotion)."""
        return 1 if self._mono is not None else len(self._bins)

    def shard_of(self, flow_id: int) -> int:
        """Index of the shard that owns *flow_id*."""
        if self._mono is not None:
            return 0
        return self._flow_bin[flow_id]

    # ------------------------------------------------------------------ #
    # Demotion: journal replay onto a monolithic core
    # ------------------------------------------------------------------ #
    def _demote(self, reason: str) -> BatchedPacketCore:
        mono = self._mono
        if mono is not None:
            return mono
        if self._truncation_journaled:
            raise SimulationError(
                "cannot fall back to the monolithic engine after a "
                f"max_events-truncated sharded drive ({reason}); "
                "use engine='batched' for this run"
            )
        for flow, snap in zip(self._flows, self._flow_snapshots):
            flow.state, flow.completion_time, flow.bits_remaining = snap[:3]
            flow.metadata.clear()
            flow.metadata.update(snap[3])
        core = BatchedPacketCore(
            self.fabric, self._flows, route_fn=self._route_table,
            **self._core_kwargs,
        )
        for op in self._journal:
            kind = op[0]
            if kind == "drive":
                core.drive(op[1], op[2])
            elif kind == "run":
                core.run(until=op[1], max_events=op[2])
            elif kind == "sync":
                core.sync_port_capacity(op[1], op[2])
            elif kind == "disable":
                core.disabled_links.add(op[1])
            elif kind == "enable":
                core.disabled_links.discard(op[1])
            elif kind == "reroute":
                core.reroute(op[1], op[2])
            elif kind == "touch":
                core.touch()
        # Keep the facade's shared set identity (plain set ops: the
        # replay already journalled these contents).
        set.clear(self._disabled)
        set.update(self._disabled, core.disabled_links)
        core.disabled_links = self._disabled
        self._mono = core
        self._bins = [core]
        self._merged = None
        return core

    # ------------------------------------------------------------------ #
    # Global folds: merged delivery / retransmit order
    # ------------------------------------------------------------------ #
    def _merge(self) -> dict:
        """Merge the shards' per-event logs into the global folds.

        K-way merge by time (shard index breaks ties *only after* proving
        every colliding contribution bitwise identical -- then any
        interleaving folds to the same value).  An ambiguous cross-shard
        tie demotes to the journal replay, which is always exact.
        """
        merged = self._merged
        if merged is not None:
            return merged
        mono = self._mono
        if mono is not None:
            merged = {
                "samples": mono.queueing_samples,
                "bits_delivered": mono.bits_delivered,
                "retransmitted_bits": mono.retransmitted_bits,
            }
            self._merged = merged
            return merged
        try:
            samples: List[float] = []
            bits_delivered = 0.0
            deliveries = [
                (core.delivery_log, core.queueing_samples)
                for core in self._bins
            ]
            for _, size, sample in self._merge_logs(
                [log for log, _ in deliveries],
                [(sam,) for _, sam in deliveries],
            ):
                bits_delivered += size
                samples.append(sample[0])
            retransmitted = 0.0
            for _, size, _ in self._merge_logs(
                [core.retransmit_log for core in self._bins], None
            ):
                retransmitted += size
        except _AmbiguousTie as tie:
            core = self._demote(str(tie))
            merged = {
                "samples": core.queueing_samples,
                "bits_delivered": core.bits_delivered,
                "retransmitted_bits": core.retransmitted_bits,
            }
            self._merged = merged
            return merged
        merged = {
            "samples": samples,
            "bits_delivered": bits_delivered,
            "retransmitted_bits": retransmitted,
        }
        self._merged = merged
        return merged

    @staticmethod
    def _merge_logs(logs: List[List[Tuple[float, float]]],
                    extras: Optional[List[Tuple[List[float]]]]):
        """Yield ``(time, size, extra-row)`` across shards in event order.

        Within a shard the log is already in event order; across shards,
        strictly increasing times interleave uniquely.  Equal times across
        shards are sound only when every colliding row is bitwise equal;
        otherwise the monolithic interleaving is unknowable from the logs
        and :class:`_AmbiguousTie` is raised.
        """
        heads: List[Tuple[float, int]] = []
        cursors = [0] * len(logs)
        for idx, log in enumerate(logs):
            if log:
                heappush(heads, (log[0][0], idx))
        while heads:
            t, idx = heads[0]
            # Collect every shard whose head shares this instant.
            tied = [item for item in heads if item[0] == t]
            if len(tied) > 1:
                rows = set()
                for _, j in tied:
                    entry = logs[j][cursors[j]]
                    extra = (
                        tuple(col[cursors[j]] for col in extras[j])
                        if extras is not None else ()
                    )
                    rows.add((entry[1],) + extra)
                if len(rows) > 1:
                    raise _AmbiguousTie(
                        f"cross-shard event tie at t={t!r} with differing "
                        "contributions"
                    )
            heappop(heads)
            entry = logs[idx][cursors[idx]]
            extra = (
                tuple(col[cursors[idx]] for col in extras[idx])
                if extras is not None else ()
            )
            cursors[idx] += 1
            if cursors[idx] < len(logs[idx]):
                heappush(heads, (logs[idx][cursors[idx]][0], idx))
            yield entry[0], entry[1], extra

    # ------------------------------------------------------------------ #
    # Simulator surface
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        mono = self._mono
        if mono is not None:
            return mono.now
        return max(core.now for core in self._bins)

    @property
    def events_executed(self) -> int:
        return sum(core.events_executed for core in self._bins)

    @property
    def pending(self) -> int:
        return sum(core.pending for core in self._bins)

    def peek(self) -> Optional[float]:
        times = [t for t in (core.peek() for core in self._bins)
                 if t is not None]
        return min(times) if times else None

    def touch(self) -> None:
        self._journal.append(("touch",))
        for core in self._bins:
            core.touch()

    def schedule(self, delay: float, fn: Callable, *args, priority: int = 0,
                 **kwargs) -> None:
        """External callback: needs the global calendar, so demote."""
        return self._demote("external schedule()").schedule(
            delay, fn, *args, priority=priority, **kwargs)

    def schedule_at(self, time: float, fn: Callable, *args, priority: int = 0,
                    **kwargs) -> None:
        """External callback: needs the global calendar, so demote."""
        return self._demote("external schedule_at()").schedule_at(
            time, fn, *args, priority=priority, **kwargs)

    def step(self, until: Optional[float] = None) -> bool:
        return self._demote("single-step execution").step(until)

    def drive(self, until: Optional[float], max_events: int) -> bool:
        self._merged = None
        mono = self._mono
        if mono is not None:
            self._journal.append(("drive", until, max_events))
            return mono.drive(until, max_events)
        self._journal.append(("drive", until, max_events))
        if self._dispatch_processes():
            result = self._drive_processes(until, max_events)
            if result is not None:
                if result:
                    self._truncation_journaled = True
                return result
        # The event budget is a cumulative per-engine cap; the sharded
        # engine applies it per shard (inline and process dispatch agree).
        truncated = False
        for core in self._bins:
            if core.drive(until, max_events):
                truncated = True
        if truncated:
            self._truncation_journaled = True
        return truncated

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        self._merged = None
        self._journal.append(("run", until, max_events))
        executed = 0
        for core in self._bins:
            executed += core.run(until=until, max_events=max_events)
        return executed

    def drain(self, max_events: int = 10_000_000) -> int:
        return self.run(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Process fan-out
    # ------------------------------------------------------------------ #
    def _dispatch_processes(self) -> bool:
        # Dispatch selects workers, never results: inline and process
        # execution are bit-identical, so this env read cannot make
        # behaviour depend on the launching environment.
        mode = os.environ.get(_DISPATCH_ENV, "auto")  # repro: ignore[D001]
        if mode == "inline" or len(self._bins) < 2:
            return False
        if mode == "process":
            return True
        return (os.cpu_count() or 1) > 1

    def _drive_processes(self, until: Optional[float],
                         max_events: int) -> Optional[bool]:
        """Fan the shard drives out across spawned workers.

        Returns ``None`` when dispatch is unavailable (pickling or pool
        failure): the caller falls through to the bit-identical inline
        path.  Each shard gets the full event budget -- budgets are
        engine-specific truncation points, and the sharded engine's
        documented behaviour is per-shard budgeting.
        """
        payloads = [(core, until, max_events) for core in self._bins]
        try:
            with get_context().Pool(
                processes=min(len(self._bins), os.cpu_count() or 1),
                initializer=_worker_init,
                initargs=(list(sys.path),),
            ) as pool:
                results = pool.map(_drive_shard, payloads)
        except Exception:
            return None
        truncated = False
        for idx, (core, shard_truncated) in enumerate(results):
            self._adopt(idx, core)
            truncated = truncated or shard_truncated
        return truncated

    def _adopt(self, idx: int, core: BatchedPacketCore) -> None:
        """Make a worker-returned core the authoritative shard state.

        The returned object graph is self-consistent but points at
        *copies* of the objects shared with the coordinator; rebind those
        edges -- the fabric (adopting the worker's statistics streams for
        the links this shard owns), the facade's flow objects (copying
        the worker's progress into them), and the shared disabled-links
        set.  Port/context caches reference objects inside the adopted
        graph and stay valid; epoch-guarded link properties re-read from
        the rebound fabric on the next drive.
        """
        for ukey in self._bin_ukeys[idx]:
            stream = core.fabric.link_stats.get(ukey)
            if stream is not None:
                self.fabric.link_stats[ukey] = stream
        core.fabric = self.fabric
        for fid, state in core._states.items():
            parent_flow = self._flow_by_id[fid]
            worker_flow = state.flow
            if worker_flow is not parent_flow:
                parent_flow.state = worker_flow.state
                parent_flow.completion_time = worker_flow.completion_time
                parent_flow.bits_remaining = worker_flow.bits_remaining
                parent_flow.metadata.clear()
                parent_flow.metadata.update(worker_flow.metadata)
                state.flow = parent_flow
        core.disabled_links = self._disabled
        self._bins[idx] = core

    # ------------------------------------------------------------------ #
    # Network surface
    # ------------------------------------------------------------------ #
    @property
    def disabled_links(self):
        return self._disabled

    @disabled_links.setter
    def disabled_links(self, value) -> None:
        raise AttributeError(
            "the sharded engine's disabled_links set is shared across "
            "shards; mutate it in place"
        )

    @property
    def _ports(self) -> Dict[DirectedKey, object]:
        mono = self._mono
        if mono is not None:
            return mono._ports
        merged: Dict[DirectedKey, object] = {}
        for core in self._bins:
            merged.update(core._ports)
        return merged

    def sync_port_capacity(self, key: DirectedKey, capacity_bps: float) -> None:
        self._journal.append(("sync", key, capacity_bps))
        mono = self._mono
        if mono is not None:
            return mono.sync_port_capacity(key, capacity_bps)
        idx = self._owner.get(key, 0)
        return self._bins[idx].sync_port_capacity(key, capacity_bps)

    def port_drain_time(self, key: DirectedKey) -> float:
        mono = self._mono
        if mono is not None:
            return mono.port_drain_time(key)
        return self._bins[self._owner.get(key, 0)].port_drain_time(key)

    def port_stats(self) -> Dict[DirectedKey, object]:
        merged: Dict[DirectedKey, object] = {}
        for core in self._bins:
            merged.update(core.port_stats())
        return merged

    def latencies(self) -> List[float]:
        out: List[float] = []
        for core in self._bins:
            out.extend(core.latencies())
        return out

    def delivery_fraction(self) -> float:
        total = self.delivered_count + self.dropped_count
        if total == 0:
            return 0.0
        return self.delivered_count / total

    @property
    def delivered(self):
        mono = self._mono
        if mono is not None:
            return mono.delivered
        out = []
        for core in self._bins:
            out.extend(core.delivered)
        return out

    @property
    def dropped(self):
        mono = self._mono
        if mono is not None:
            return mono.dropped
        out = []
        for core in self._bins:
            out.extend(core.dropped)
        return out

    @property
    def queueing_samples(self) -> List[float]:
        return self._merge()["samples"]

    @property
    def bits_delivered(self) -> float:
        return self._merge()["bits_delivered"]

    @property
    def packets_injected(self) -> int:
        return sum(core.packets_injected for core in self._bins)

    @property
    def packets_entered(self) -> int:
        return sum(core.packets_entered for core in self._bins)

    @property
    def in_flight(self) -> int:
        return sum(core.in_flight for core in self._bins)

    @property
    def delivered_count(self) -> int:
        return sum(core.delivered_count for core in self._bins)

    @property
    def dropped_count(self) -> int:
        return sum(core.dropped_count for core in self._bins)

    # ------------------------------------------------------------------ #
    # Transport surface
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        return all(core.finished for core in self._bins)

    @property
    def retransmissions(self) -> int:
        return sum(core.retransmissions for core in self._bins)

    @property
    def retransmitted_bits(self) -> float:
        return self._merge()["retransmitted_bits"]

    @property
    def segments_abandoned(self) -> int:
        return sum(core.segments_abandoned for core in self._bins)

    def state_of(self, flow_id: int) -> FlowTransportState:
        mono = self._mono
        if mono is not None:
            return mono.state_of(flow_id)
        return self._bins[self.shard_of(flow_id)].state_of(flow_id)

    def active_flows(self) -> List[Flow]:
        mono = self._mono
        if mono is not None:
            return mono.active_flows()
        # Original flow order, exactly like the monolithic dict's
        # insertion order.
        out: List[Flow] = []
        for flow in self._flows:
            state = self._bins[self.shard_of(flow.flow_id)].state_of(
                flow.flow_id)
            if state.started and not state.finished:
                out.append(state.flow)
        return out

    @property
    def unstarted_count(self) -> int:
        return sum(core.unstarted_count for core in self._bins)

    def pending_demand_bits(self) -> float:
        mono = self._mono
        if mono is not None:
            return mono.pending_demand_bits()
        # One left fold in original flow order (bit-compatible with the
        # monolithic sum over insertion-ordered states).
        return sum(
            state.flow.size_bits - state.delivered_bits
            for state in (
                self._bins[self.shard_of(flow.flow_id)].state_of(flow.flow_id)
                for flow in self._flows
            )
            if state.started and not state.finished
        )

    def reroute(self, flow_id: int, path: Sequence[str]) -> None:
        self._journal.append(("reroute", flow_id, list(path)))
        mono = self._mono
        if mono is not None:
            return mono.reroute(flow_id, path)
        idx = self.shard_of(flow_id)
        claims: List[DirectedKey] = []
        for key in zip(path[:-1], path[1:]):
            owner = self._owner.get(key)
            if owner is None:
                claims.append(key)
            elif owner != idx:
                # The new path enters another shard's closure: the
                # journal pops this reroute back in its recorded order.
                self._journal.pop()
                self._demote(
                    f"reroute of flow {flow_id} crosses shards")
                self._journal.append(("reroute", flow_id, list(path)))
                return self._mono.reroute(flow_id, path)
        for key in claims:
            a, b = key
            ukey = (a, b) if a <= b else (b, a)
            for other_idx, other in enumerate(self._bins):
                if other_idx != idx and (
                    key in other._ports or ukey in self._bin_ukeys[other_idx]
                ):
                    self._journal.pop()
                    self._demote(
                        f"reroute of flow {flow_id} touches a port "
                        "materialised in another shard")
                    self._journal.append(("reroute", flow_id, list(path)))
                    return self._mono.reroute(flow_id, path)
        for key in claims:
            a, b = key
            self._owner[key] = idx
            self._bin_ukeys[idx].add((a, b) if a <= b else (b, a))
        return self._bins[idx].reroute(flow_id, path)

    def summary(self) -> Dict[str, float]:
        return {
            "packets_sent": float(
                sum(core._packet_counter for core in self._bins)),
            "retransmissions": float(self.retransmissions),
            "retransmitted_bits": self.retransmitted_bits,
            "segments_abandoned": float(self.segments_abandoned),
        }


class _AmbiguousTie(Exception):
    """A cross-shard event tie whose fold order cannot be reconstructed."""
