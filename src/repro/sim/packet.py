"""Packet representation for packet-level simulation.

Packets carry a per-hop record so that latency experiments (Figure 1 of the
paper) can attribute the end-to-end delay to its components: serialization,
propagation through the media, switching logic, and queueing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.units import bits_from_bytes

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet id counter (used by tests for determinism)."""
    global _packet_ids
    _packet_ids = itertools.count()


@dataclass
class HopRecord:
    """Timing record for one hop of a packet's journey.

    Attributes
    ----------
    element:
        Name of the node/switch the packet traversed.
    arrival:
        Time the first bit arrived at the element.
    departure:
        Time the first bit left the element towards the next hop.
    queueing:
        Time spent waiting in an output queue at this element.
    switching:
        Time spent in the element's switching/forwarding logic.
    serialization:
        Time spent clocking the packet onto the outgoing link.
    propagation:
        Time spent on the wire to the next element.
    """

    element: str
    arrival: float
    departure: float = 0.0
    queueing: float = 0.0
    switching: float = 0.0
    serialization: float = 0.0
    propagation: float = 0.0

    def total(self) -> float:
        """Total delay contributed by this hop."""
        return self.queueing + self.switching + self.serialization + self.propagation


@dataclass
class Packet:
    """A single packet travelling through the fabric.

    The constructor assigns a globally unique ``packet_id`` unless one is
    supplied explicitly, which tests do when they need stable ids.
    """

    src: str
    dst: str
    size_bits: float
    created_at: float = 0.0
    flow_id: Optional[int] = None
    priority: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: List[HopRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    delivered_at: Optional[float] = None
    dropped: bool = False
    drop_reason: Optional[str] = None
    #: Total time spent in output queues, accumulated hop by hop.  Kept as
    #: a plain running sum (independent of the optional per-hop records) so
    #: large packetised runs can report queueing percentiles without
    #: retaining a :class:`HopRecord` list per packet.
    queueing_seconds: float = 0.0

    @classmethod
    def of_bytes(
        cls,
        src: str,
        dst: str,
        size_bytes: float,
        created_at: float = 0.0,
        flow_id: Optional[int] = None,
        priority: int = 0,
    ) -> "Packet":
        """Build a packet whose size is given in bytes (the usual MTU units)."""
        return cls(
            src=src,
            dst=dst,
            size_bits=bits_from_bytes(size_bytes),
            created_at=created_at,
            flow_id=flow_id,
            priority=priority,
        )

    # ------------------------------------------------------------------ #
    # Journey bookkeeping
    # ------------------------------------------------------------------ #
    def record_hop(self, record: HopRecord) -> None:
        """Append a hop record to the packet's journey."""
        self.hops.append(record)

    def mark_delivered(self, time: float) -> None:
        """Mark the packet as delivered at *time*."""
        self.delivered_at = time

    def mark_dropped(self, reason: str) -> None:
        """Mark the packet as dropped with a human-readable reason."""
        self.dropped = True
        self.drop_reason = reason

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency if delivered, else ``None``."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    @property
    def hop_count(self) -> int:
        """Number of elements traversed so far."""
        return len(self.hops)

    def delay_breakdown(self) -> Dict[str, float]:
        """Aggregate the per-hop records into delay components.

        Returns a dictionary with keys ``queueing``, ``switching``,
        ``serialization`` and ``propagation``; values sum (up to floating
        point error) to the end-to-end latency for delivered packets that
        were fully recorded.
        """
        breakdown = {
            "queueing": 0.0,
            "switching": 0.0,
            "serialization": 0.0,
            "propagation": 0.0,
        }
        for hop in self.hops:
            breakdown["queueing"] += hop.queueing
            breakdown["switching"] += hop.switching
            breakdown["serialization"] += hop.serialization
            breakdown["propagation"] += hop.propagation
        return breakdown

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "delivered" if self.delivered_at is not None else (
            "dropped" if self.dropped else "in-flight"
        )
        return (
            f"Packet(id={self.packet_id}, {self.src}->{self.dst}, "
            f"{self.size_bits:.0f}b, {status})"
        )
