"""Structured event tracing.

Traces serve two audiences: tests assert on them (e.g. "a reconfiguration
started before the hot flow completed"), and the benchmark harness converts
them into the CSV series reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: a time, a category string, and free-form fields."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with a default."""
        return self.fields.get(key, default)


class TraceRecorder:
    """Accumulates :class:`TraceRecord` instances in memory.

    The recorder is intentionally simple -- a list plus filter helpers --
    because experiment runs at rack scale produce at most a few hundred
    thousand records, which fits comfortably in memory.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        self.dropped_records = 0

    def record(self, time: float, category: str, **fields: Any) -> None:
        """Append a record (no-op when disabled or over capacity)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped_records += 1
            return
        self._records.append(TraceRecord(time=time, category=category, fields=fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All records in insertion (and therefore time) order."""
        return self._records

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def by_category(self, category: str) -> List[TraceRecord]:
        """All records with the given category."""
        return [record for record in self._records if record.category == category]

    def categories(self) -> List[str]:
        """Sorted list of distinct categories seen."""
        return sorted({record.category for record in self._records})

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """Records satisfying an arbitrary predicate."""
        return [record for record in self._records if predicate(record)]

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time <= end``."""
        return [record for record in self._records if start <= record.time <= end]

    def first(self, category: str) -> Optional[TraceRecord]:
        """Earliest record of *category*, or ``None``."""
        matching = self.by_category(category)
        return matching[0] if matching else None

    def last(self, category: str) -> Optional[TraceRecord]:
        """Latest record of *category*, or ``None``."""
        matching = self.by_category(category)
        return matching[-1] if matching else None

    def count(self, category: str) -> int:
        """Number of records of *category*."""
        return len(self.by_category(category))

    def clear(self) -> None:
        """Discard all records."""
        self._records.clear()
        self.dropped_records = 0

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_csv(self, columns: Optional[Iterable[str]] = None) -> str:
        """Render the trace as CSV text.

        When *columns* is omitted, the union of all field names is used, in
        first-seen order, after the mandatory ``time`` and ``category``.
        """
        if columns is None:
            seen: List[str] = []
            for record in self._records:
                for key in record.fields:
                    if key not in seen:
                        seen.append(key)
            columns = seen
        columns = list(columns)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time", "category", *columns])
        for record in self._records:
            writer.writerow(
                [record.time, record.category]
                + [record.fields.get(column, "") for column in columns]
            )
        return buffer.getvalue()


class NullTrace(TraceRecorder):
    """A recorder that silently discards everything (for large sweeps)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(self, time: float, category: str, **fields: Any) -> None:  # noqa: D102
        return None
