"""Structured event payloads shared across the simulator and telemetry.

The engine itself only cares about callables; these dataclasses give the
higher layers (switch models, the CRC controller, the telemetry collector)
a common vocabulary to record in traces and to pass between components.
Every payload carries the simulation time at which it occurred so trace
consumers never need access to the simulator clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class PacketSent:
    """A packet finished serialising onto a link at ``time``."""

    time: float
    packet_id: int
    flow_id: Optional[int]
    src: str
    dst: str
    link: Tuple[str, str]
    size_bits: float


@dataclass(frozen=True)
class PacketReceived:
    """A packet was fully received by its destination node at ``time``."""

    time: float
    packet_id: int
    flow_id: Optional[int]
    src: str
    dst: str
    latency: float
    hops: int


@dataclass(frozen=True)
class PacketDropped:
    """A packet was dropped (queue overflow or dead link) at ``time``."""

    time: float
    packet_id: int
    flow_id: Optional[int]
    at: str
    reason: str


@dataclass(frozen=True)
class FlowStarted:
    """A flow was admitted into the fabric at ``time``."""

    time: float
    flow_id: int
    src: str
    dst: str
    size_bits: float


@dataclass(frozen=True)
class FlowCompleted:
    """A flow delivered its last bit at ``time``."""

    time: float
    flow_id: int
    src: str
    dst: str
    size_bits: float
    completion_time: float


@dataclass(frozen=True)
class ReconfigurationStarted:
    """The CRC began applying a batch of PLP commands at ``time``."""

    time: float
    commands: int
    reason: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ReconfigurationCompleted:
    """A reconfiguration finished and the fabric is stable again at ``time``."""

    time: float
    commands: int
    duration: float
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ControlTick:
    """One iteration of the CRC closed loop executed at ``time``."""

    time: float
    iteration: int
    links_observed: int
    commands_issued: int
