"""Flow transport: run whole flow workloads over the packet-level network.

The fluid simulator treats a :class:`~repro.sim.flow.Flow` as a continuous
stream; the packet-level network forwards individual packets.  This module
is the bridge that makes the packet path a *backend* rather than a
side-channel: it segments each flow into MTU-sized packets, injects them
under a per-flow sliding window, retransmits segments the network drops,
and completes the flow when every segment has been delivered.

The model is deliberately minimal -- a go-back-nothing, selective-repeat
transport with an omniscient drop signal:

* **Segmentation** -- a flow of ``size_bits`` becomes
  ``ceil(size / mtu)`` segments; every segment is a full MTU except the
  last, so delivered bits sum exactly to the flow size.
* **Windowed injection** -- at most ``window_packets`` segments of a flow
  occupy the window at once, counting both packets in flight and dropped
  segments waiting out their retransmission backoff (a retry keeps its
  slot, so refills cannot overdrive a path exactly when it is dropping).
  The initial window is injected in one batch at the flow's start time;
  each delivery refills the window inline (no extra scheduling round-trip
  through the event calendar).
* **Drop-triggered retransmission** -- the simulator knows the instant a
  packet is dropped, so the transport reacts to the drop event itself (a
  perfect, zero-cost NACK) and re-injects the segment after a linear
  backoff of ``retransmit_delay * attempts``.  A segment dropped
  ``max_attempts`` times is abandoned and its flow never completes --
  mirroring a fluid flow stalled forever on a dead link.

The module lives in the simulation kernel and is fabric-agnostic: the
network is any object with ``inject(packet, path)`` plus ``on_delivered``/
``on_dropped`` hooks (duck-typed to
:class:`repro.fabric.packetsim.PacketLevelNetwork`), and routing is an
injected ``route_fn(flow) -> [node names]`` callable.  Paths are resolved
for *all* flows up front -- the same "route at load time" contract the
fluid backend applies -- and a controller can repoint the remaining
segments of an active flow with :meth:`PacketTransport.reroute`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.flow import Flow
from repro.sim.packet import Packet
from repro.sim.units import bits_from_bytes


@dataclass(frozen=True)
class TransportConfig:
    """Knobs of the packetising transport.

    Attributes
    ----------
    mtu_bytes:
        Segment payload size; flows are cut into packets of this size
        (the last segment carries the remainder).
    window_packets:
        Maximum segments of one flow in flight at once.
    retransmit_delay:
        Base backoff before re-injecting a dropped segment; the n-th
        retry of a segment waits ``n * retransmit_delay`` (deterministic
        linear backoff -- no randomness, so runs stay bit-reproducible).
    max_attempts:
        Injection attempts per segment before the transport gives up on
        the flow (it then stays incomplete, like a permanently stalled
        fluid flow).
    """

    mtu_bytes: float = 1500.0
    window_packets: int = 64
    retransmit_delay: float = 20e-6
    max_attempts: int = 100

    def __post_init__(self) -> None:
        if self.mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {self.mtu_bytes!r}")
        if self.window_packets < 1:
            raise ValueError(
                f"window_packets must be >= 1, got {self.window_packets!r}"
            )
        if self.retransmit_delay <= 0:
            raise ValueError(
                f"retransmit_delay must be positive, got {self.retransmit_delay!r}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")

    @property
    def mtu_bits(self) -> float:
        """Segment size in bits."""
        return bits_from_bytes(self.mtu_bytes)


def segment_layout(size_bits: float, mtu_bits: float) -> Tuple[int, float]:
    """Segment count and last-segment payload of a *size_bits* flow.

    ``ceil(size / mtu)`` full-MTU segments with the remainder in the last
    (the ``- 1e-12`` guards exact multiples against float ratio error),
    so delivered bits sum exactly to the flow size.  Shared by every
    packet engine -- the segment grid is part of the bit-exact parity
    contract, so it must be computed by exactly one spelling.
    """
    total = max(1, int(math.ceil(size_bits / mtu_bits - 1e-12)))
    last = size_bits - (total - 1) * mtu_bits
    return total, last


@dataclass
class FlowTransportState:
    """Per-flow progress of the packetising transport."""

    flow: Flow
    path: List[str]
    total_segments: int
    segment_bits: float
    last_segment_bits: float
    next_segment: int = 0
    outstanding: int = 0
    delivered_segments: int = 0
    delivered_bits: float = 0.0
    #: Retries scheduled but not yet re-injected.
    pending_retransmits: int = 0
    #: Drop count per segment index (only segments that were ever dropped).
    attempts: Dict[int, int] = field(default_factory=dict)
    abandoned: bool = False
    started: bool = False
    #: Set once the transport's finished-flow counter saw this state settle.
    settled: bool = False

    @property
    def finished(self) -> bool:
        """Nothing left to do for this flow (delivered fully, or given up)."""
        if self.abandoned:
            return self.outstanding == 0 and self.pending_retransmits == 0
        return self.delivered_segments >= self.total_segments

    @property
    def in_window(self) -> int:
        """Window occupancy: segments in flight plus retries awaiting their
        backoff (a dropped segment keeps its window slot until it is either
        redelivered or abandoned)."""
        return self.outstanding + self.pending_retransmits

    def size_of(self, segment: int) -> float:
        """Payload bits of one segment (the last one carries the remainder)."""
        if segment == self.total_segments - 1:
            return self.last_segment_bits
        return self.segment_bits


class PacketTransport:
    """Segment, window, inject and retransmit a set of flows.

    Parameters
    ----------
    simulator:
        The event engine the packet network runs on.
    network:
        Packet forwarding plane; the transport takes over its
        ``on_delivered``/``on_dropped`` hooks.
    flows:
        The workload.  Every flow is routed immediately via *route_fn*
        (matching the fluid backend's route-at-load-time contract) and
        scheduled to start at its ``start_time``.
    route_fn:
        ``flow -> [node names]`` path resolver.
    config:
        Transport knobs; defaults are :class:`TransportConfig`'s.
    """

    def __init__(
        self,
        simulator,
        network,
        flows: Sequence[Flow],
        route_fn: Callable[[Flow], Sequence[str]],
        config: Optional[TransportConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.config = config if config is not None else TransportConfig()
        self.route_fn = route_fn
        network.on_delivered = self._on_delivered
        network.on_dropped = self._on_dropped
        #: Local, per-run packet id counter: packet identity must be a
        #: function of the run alone (never of what ran before in the same
        #: process) for sweep rows to be bit-identical at any worker count.
        self._packet_counter = 0
        self.retransmissions = 0
        self.retransmitted_bits = 0.0
        self.segments_abandoned = 0
        self._states: Dict[int, FlowTransportState] = {}
        self._unfinished = 0
        mtu = self.config.mtu_bits
        for flow in flows:
            total, last = segment_layout(flow.size_bits, mtu)
            state = FlowTransportState(
                flow=flow,
                path=list(route_fn(flow)),
                total_segments=total,
                segment_bits=mtu,
                last_segment_bits=last,
            )
            if flow.flow_id in self._states:
                raise ValueError(f"duplicate flow id {flow.flow_id}")
            self._states[flow.flow_id] = state
            self._unfinished += 1
            simulator.schedule_at(flow.start_time, self._start_flow, state)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """Every flow has either fully delivered or been abandoned.

        O(1): the backend's run loop consults this before every event, so
        it reads a counter settled on each delivery/drop rather than
        scanning every flow state.
        """
        return self._unfinished == 0

    def _settle(self, state: FlowTransportState) -> None:
        """Fold a possibly-just-finished state into the finished counter."""
        if not state.settled and state.finished:
            state.settled = True
            self._unfinished -= 1

    def state_of(self, flow_id: int) -> FlowTransportState:
        """Transport state of one flow."""
        return self._states[flow_id]

    def active_flows(self) -> List[Flow]:
        """Flows that have started and are not yet finished."""
        return [
            state.flow
            for state in self._states.values()
            if state.started and not state.finished
        ]

    @property
    def unstarted_count(self) -> int:
        """Flows whose start event has not fired yet."""
        return sum(1 for state in self._states.values() if not state.started)

    def pending_demand_bits(self) -> float:
        """Undelivered bits of the started, unfinished flows."""
        return sum(
            state.flow.size_bits - state.delivered_bits
            for state in self._states.values()
            if state.started and not state.finished
        )

    def reroute(self, flow_id: int, path: Sequence[str]) -> None:
        """Point the remaining segments of a flow at a new path.

        Segments already in flight finish their journey on the old path;
        new injections and retransmissions use the new one.
        """
        state = self._states[flow_id]
        path = list(path)
        if len(path) < 2:
            raise ValueError("a path needs at least a source and a destination")
        if path[0] != state.flow.src or path[-1] != state.flow.dst:
            raise ValueError(
                f"path {path} does not connect {state.flow.src!r} "
                f"to {state.flow.dst!r}"
            )
        state.path = path

    def summary(self) -> Dict[str, float]:
        """Headline transport counters."""
        return {
            "packets_sent": float(self._packet_counter),
            "retransmissions": float(self.retransmissions),
            "retransmitted_bits": self.retransmitted_bits,
            "segments_abandoned": float(self.segments_abandoned),
        }

    # ------------------------------------------------------------------ #
    # Injection machinery
    # ------------------------------------------------------------------ #
    def _start_flow(self, state: FlowTransportState) -> None:
        state.started = True
        state.flow.activate(self.simulator.now)
        self._fill_window(state)

    def _fill_window(self, state: FlowTransportState) -> None:
        """Inject fresh segments until the window is full (batched).

        A dropped segment's retry keeps its window slot while it waits out
        its backoff (``in_window`` counts it), so refills cannot overdrive
        the window exactly when the path is dropping.
        """
        if state.abandoned:
            return  # the flow cannot complete; stop feeding the fabric
        while (
            state.in_window < self.config.window_packets
            and state.next_segment < state.total_segments
        ):
            self._inject_segment(state, state.next_segment)
            state.next_segment += 1

    def _inject_segment(self, state: FlowTransportState, segment: int) -> None:
        flow = state.flow
        packet = Packet(
            src=flow.src,
            dst=flow.dst,
            size_bits=state.size_of(segment),
            created_at=self.simulator.now,
            flow_id=flow.flow_id,
            packet_id=self._packet_counter,
        )
        packet.metadata["segment"] = segment
        self._packet_counter += 1
        state.outstanding += 1
        self.network.inject(packet, path=state.path)

    # ------------------------------------------------------------------ #
    # Network callbacks
    # ------------------------------------------------------------------ #
    def _on_delivered(self, packet: Packet) -> None:
        state = self._states.get(packet.flow_id)  # type: ignore[arg-type]
        if state is None:
            return
        state.outstanding -= 1
        state.delivered_segments += 1
        state.delivered_bits += packet.size_bits
        state.flow.sync_remaining(state.flow.size_bits - state.delivered_bits)
        if state.delivered_segments >= state.total_segments:
            state.flow.complete(self.simulator.now)
        else:
            self._fill_window(state)
        self._settle(state)

    def _on_dropped(self, packet: Packet) -> None:
        state = self._states.get(packet.flow_id)  # type: ignore[arg-type]
        if state is None:
            return
        state.outstanding -= 1
        if state.abandoned:
            self._settle(state)
            return  # already given up on this flow; let it drain
        segment = int(packet.metadata.get("segment", 0))
        attempts = state.attempts.get(segment, 0) + 1
        state.attempts[segment] = attempts
        if attempts >= self.config.max_attempts:
            state.abandoned = True
            self.segments_abandoned += 1
            self._settle(state)
            return
        state.pending_retransmits += 1
        delay = attempts * self.config.retransmit_delay
        self.simulator.schedule(delay, self._retransmit, state, segment)

    def _retransmit(self, state: FlowTransportState, segment: int) -> None:
        state.pending_retransmits -= 1
        if state.abandoned:
            # Another segment exhausted its attempts while this retry sat
            # on the calendar; the flow cannot complete, so do not keep
            # feeding the fabric (or inflating the retransmit counters).
            self._settle(state)
            return
        self.retransmissions += 1
        self.retransmitted_bits += state.size_of(segment)
        self._inject_segment(state, segment)
