"""Bounded queues with drop accounting.

Switch and NIC models use these to model output-queued contention.  The
queue capacity is expressed in bits (buffer memory) and optionally in
packets; exceeding either bound drops the arriving packet (drop-tail), which
the telemetry layer counts as a congestion indication feeding the CRC.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.packet import Packet


@dataclass
class QueueStats:
    """Counters exported by every queue."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    enqueued_bits: float = 0.0
    dequeued_bits: float = 0.0
    dropped_bits: float = 0.0
    max_occupancy_bits: float = 0.0
    max_occupancy_packets: int = 0

    def drop_fraction(self) -> float:
        """Fraction of arriving packets that were dropped."""
        arrivals = self.enqueued + self.dropped
        if arrivals == 0:
            return 0.0
        return self.dropped / arrivals


class DropTailQueue:
    """A FIFO queue bounded by buffer bits and (optionally) packet count."""

    def __init__(
        self,
        capacity_bits: float = float("inf"),
        capacity_packets: Optional[int] = None,
        name: str = "queue",
    ) -> None:
        if capacity_bits <= 0:
            raise ValueError(f"capacity_bits must be positive, got {capacity_bits!r}")
        if capacity_packets is not None and capacity_packets <= 0:
            raise ValueError(
                f"capacity_packets must be positive, got {capacity_packets!r}"
            )
        self.name = name
        self.capacity_bits = capacity_bits
        self.capacity_packets = capacity_packets
        self.stats = QueueStats()
        self._items: List[Packet] = []
        self._occupancy_bits = 0.0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def occupancy_bits(self) -> float:
        """Bits currently buffered."""
        return self._occupancy_bits

    @property
    def occupancy_packets(self) -> int:
        """Packets currently buffered."""
        return len(self._items)

    @property
    def empty(self) -> bool:
        """Whether the queue holds no packets."""
        return not self._items

    def occupancy_fraction(self) -> float:
        """Buffer occupancy as a fraction of the bit capacity (0..1)."""
        if self.capacity_bits == float("inf"):
            return 0.0
        return self._occupancy_bits / self.capacity_bits

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def would_accept(self, packet: Packet) -> bool:
        """Whether enqueueing *packet* would fit in the buffer."""
        if self._occupancy_bits + packet.size_bits > self.capacity_bits:
            return False
        if (
            self.capacity_packets is not None
            and len(self._items) + 1 > self.capacity_packets
        ):
            return False
        return True

    def enqueue(self, packet: Packet) -> bool:
        """Try to append *packet*; returns ``False`` (and counts a drop) on overflow."""
        if not self.would_accept(packet):
            self.stats.dropped += 1
            self.stats.dropped_bits += packet.size_bits
            return False
        self._items.append(packet)
        self._occupancy_bits += packet.size_bits
        self.stats.enqueued += 1
        self.stats.enqueued_bits += packet.size_bits
        self.stats.max_occupancy_bits = max(
            self.stats.max_occupancy_bits, self._occupancy_bits
        )
        self.stats.max_occupancy_packets = max(
            self.stats.max_occupancy_packets, len(self._items)
        )
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head-of-line packet, or ``None`` if the queue is empty."""
        if not self._items:
            return None
        packet = self._items.pop(0)
        self._occupancy_bits -= packet.size_bits
        self.stats.dequeued += 1
        self.stats.dequeued_bits += packet.size_bits
        return packet

    def peek(self) -> Optional[Packet]:
        """Return (without removing) the head-of-line packet."""
        return self._items[0] if self._items else None

    def clear(self) -> int:
        """Remove all packets; returns how many were discarded."""
        discarded = len(self._items)
        self._items.clear()
        self._occupancy_bits = 0.0
        return discarded


class PriorityDropTailQueue:
    """A strict-priority queue of drop-tail sub-queues.

    Lower ``priority`` values are served first.  Packets are mapped to
    sub-queues by their ``priority`` attribute; unknown priorities go to the
    lowest-priority class.
    """

    def __init__(
        self,
        levels: int = 2,
        capacity_bits_per_level: float = float("inf"),
        name: str = "pqueue",
    ) -> None:
        if levels <= 0:
            raise ValueError(f"levels must be positive, got {levels!r}")
        self.name = name
        self.levels = levels
        self._queues = [
            DropTailQueue(capacity_bits=capacity_bits_per_level, name=f"{name}.{level}")
            for level in range(levels)
        ]

    @property
    def stats(self) -> QueueStats:
        """Aggregate stats across all priority levels."""
        total = QueueStats()
        for queue in self._queues:
            total.enqueued += queue.stats.enqueued
            total.dequeued += queue.stats.dequeued
            total.dropped += queue.stats.dropped
            total.enqueued_bits += queue.stats.enqueued_bits
            total.dequeued_bits += queue.stats.dequeued_bits
            total.dropped_bits += queue.stats.dropped_bits
            total.max_occupancy_bits += queue.stats.max_occupancy_bits
            total.max_occupancy_packets += queue.stats.max_occupancy_packets
        return total

    @property
    def occupancy_bits(self) -> float:
        """Bits currently buffered across all levels."""
        return sum(queue.occupancy_bits for queue in self._queues)

    @property
    def occupancy_packets(self) -> int:
        """Packets currently buffered across all levels."""
        return sum(queue.occupancy_packets for queue in self._queues)

    @property
    def empty(self) -> bool:
        """Whether no packets are buffered at any level."""
        return all(queue.empty for queue in self._queues)

    def level_for(self, packet: Packet) -> int:
        """Map a packet priority to a sub-queue index."""
        priority = packet.priority
        if priority < 0:
            return 0
        return min(priority, self.levels - 1)

    def enqueue(self, packet: Packet) -> bool:
        """Enqueue *packet* into its priority class."""
        return self._queues[self.level_for(packet)].enqueue(packet)

    def dequeue(self) -> Optional[Packet]:
        """Pop from the highest-priority non-empty class."""
        for queue in self._queues:
            if not queue.empty:
                return queue.dequeue()
        return None

    def peek(self) -> Optional[Packet]:
        """Return the packet that :meth:`dequeue` would pop next."""
        for queue in self._queues:
            if not queue.empty:
                return queue.peek()
        return None


class CalendarQueue:
    """A time-ordered queue of ``(time, item)`` pairs.

    Used by traffic generators to hold future arrivals without putting one
    engine event per packet on the calendar up front.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, object]] = []
        self._seq = 0

    def push(self, time: float, item: object) -> None:
        """Insert *item* keyed by *time*."""
        heapq.heappush(self._heap, (time, self._seq, item))
        self._seq += 1

    def pop_until(self, time: float) -> List[Tuple[float, object]]:
        """Remove and return all items with key <= *time* in order."""
        ready: List[Tuple[float, object]] = []
        while self._heap and self._heap[0][0] <= time:
            item_time, _, item = heapq.heappop(self._heap)
            ready.append((item_time, item))
        return ready

    def peek_time(self) -> Optional[float]:
        """Key of the earliest item, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)
