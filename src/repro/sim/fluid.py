"""Flow-level (fluid) simulation with max-min fair bandwidth sharing.

Packet-level simulation of a rack with hundreds of nodes and thousands of
flows is possible but needlessly slow for the experiments that only care
about flow completion times and link utilisation (the MapReduce shuffle and
grid-to-torus experiments).  The fluid model treats each flow as a fluid
stream whose instantaneous rate is the max-min fair allocation over the
links on its path; rates only change at *events* (flow arrival, flow
completion, capacity change, reroute, control tick), so the simulation can
jump from event to event analytically.

This is the standard flow-level abstraction used by reconfigurable-network
papers when comparing topologies, and it composes naturally with the Closed
Ring Control: the controller registers a periodic callback, observes link
utilisation, and mutates capacities/routes to model PLP commands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.flow import Flow, FlowSet
from repro.sim.trace import NullTrace, TraceRecorder

LinkKey = Hashable

#: Numerical tolerance for "no bits remaining" and rate comparisons.
_EPSILON = 1e-9


@dataclass
class FluidLink:
    """A unidirectional capacity-constrained resource in the fluid model."""

    key: LinkKey
    capacity_bps: float
    #: Bits carried so far (integrated over time), for utilisation reports.
    bits_carried: float = 0.0
    #: Whether the link currently accepts traffic.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.capacity_bps < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity_bps!r}")

    @property
    def effective_capacity(self) -> float:
        """Capacity available for allocation (zero when disabled)."""
        return self.capacity_bps if self.enabled else 0.0


@dataclass
class FluidResult:
    """Outcome of a fluid simulation run."""

    flows: FlowSet
    end_time: float
    events_processed: int
    link_bits_carried: Dict[LinkKey, float]
    link_capacities: Dict[LinkKey, float]
    trace: TraceRecorder

    def link_utilisation(self, duration: Optional[float] = None) -> Dict[LinkKey, float]:
        """Average utilisation of each link over *duration* (defaults to ``end_time``)."""
        horizon = duration if duration is not None else self.end_time
        if horizon <= 0:
            return {key: 0.0 for key in self.link_bits_carried}
        utilisation = {}
        for key, bits in self.link_bits_carried.items():
            capacity = self.link_capacities.get(key, 0.0)
            utilisation[key] = bits / (capacity * horizon) if capacity > 0 else 0.0
        return utilisation


class FluidFlowSimulator:
    """Event-driven fluid simulator.

    Parameters
    ----------
    trace:
        Optional :class:`TraceRecorder`; pass :class:`NullTrace` (the
        default) for large sweeps.
    flow_rate_limit_bps:
        Optional per-flow cap modelling the sender NIC line rate.
    """

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        flow_rate_limit_bps: Optional[float] = None,
    ) -> None:
        self.trace = trace if trace is not None else NullTrace()
        self.flow_rate_limit_bps = flow_rate_limit_bps
        self._links: Dict[LinkKey, FluidLink] = {}
        self._pending: List[Tuple[float, Flow, List[LinkKey]]] = []
        #: Index of the first not-yet-admitted entry of ``_pending``; kept as
        #: instance state so :meth:`run` is resumable (run-to-a-time, mutate,
        #: run again) without re-admitting flows.
        self._pending_cursor = 0
        self._active: Dict[int, Flow] = {}
        self._routes: Dict[int, List[LinkKey]] = {}
        self._rates: Dict[int, float] = {}
        self._all_flows = FlowSet()
        self._now = 0.0
        self._events = 0
        self._controllers: List[Tuple[float, Callable[["FluidFlowSimulator", float], None], float]] = []
        #: Next absolute fire time of each registered controller (parallel to
        #: ``_controllers``); instance state for the same resumability reason.
        self._controller_next: List[float] = []

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def add_link(self, key: LinkKey, capacity_bps: float) -> FluidLink:
        """Register (or replace) a link with the given capacity."""
        link = FluidLink(key=key, capacity_bps=capacity_bps)
        self._links[key] = link
        return link

    def has_link(self, key: LinkKey) -> bool:
        """Whether a link with *key* is registered."""
        return key in self._links

    def link(self, key: LinkKey) -> FluidLink:
        """Return the registered link for *key* (KeyError if missing)."""
        return self._links[key]

    def links(self) -> Dict[LinkKey, FluidLink]:
        """All registered links keyed by their key."""
        return dict(self._links)

    def set_capacity(self, key: LinkKey, capacity_bps: float) -> None:
        """Change a link's capacity (takes effect at the next rate computation)."""
        if capacity_bps < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bps!r}")
        self._links[key].capacity_bps = capacity_bps

    def set_enabled(self, key: LinkKey, enabled: bool) -> None:
        """Enable or disable a link."""
        self._links[key].enabled = enabled

    def add_flow(self, flow: Flow, path: Sequence[LinkKey]) -> None:
        """Register *flow* to start at ``flow.start_time`` along *path*.

        Every link key on the path must already be registered.  A flow with
        an empty path (source and destination co-located on one sled) is
        rejected at registration time because the fluid model cannot assign
        it a rate.
        """
        if not path:
            raise ValueError(f"flow {flow.flow_id} has an empty path")
        missing = [key for key in path if key not in self._links]
        if missing:
            raise KeyError(f"flow {flow.flow_id} uses unknown links: {missing}")
        self._pending.append((flow.start_time, flow, list(path)))
        self._all_flows.add(flow)

    def add_controller(
        self,
        period: float,
        callback: Callable[["FluidFlowSimulator", float], None],
        start_offset: float = 0.0,
    ) -> None:
        """Register a periodic controller callback (the CRC hook).

        The callback receives the simulator and the current time; it may call
        :meth:`set_capacity`, :meth:`set_enabled`, :meth:`add_link`,
        :meth:`reroute` and :meth:`active_flow_rates`.
        """
        if period <= 0:
            raise ValueError(f"controller period must be positive, got {period!r}")
        self._controllers.append((period, callback, start_offset))
        # First fire at the offset, or immediately if registered mid-run with
        # an offset already in the past.
        self._controller_next.append(max(start_offset, self._now))

    # ------------------------------------------------------------------ #
    # Controller-facing runtime API
    # ------------------------------------------------------------------ #
    def reroute(self, flow_id: int, new_path: Sequence[LinkKey]) -> None:
        """Move an active flow onto a new path."""
        if flow_id not in self._active:
            raise KeyError(f"flow {flow_id} is not active")
        if not new_path:
            raise ValueError("new path must not be empty")
        missing = [key for key in new_path if key not in self._links]
        if missing:
            raise KeyError(f"reroute of flow {flow_id} uses unknown links: {missing}")
        self._routes[flow_id] = list(new_path)
        self._active[flow_id].path = [str(key) for key in new_path]

    def active_flows(self) -> List[Flow]:
        """Currently active flows."""
        return list(self._active.values())

    @property
    def pending_flow_count(self) -> int:
        """Registered flows that have not yet been admitted."""
        return len(self._pending) - self._pending_cursor

    def active_flow_rates(self) -> Dict[int, float]:
        """Current max-min fair rate of each active flow."""
        return dict(self._rates)

    def route_of(self, flow_id: int) -> List[LinkKey]:
        """Path of an active flow."""
        return list(self._routes[flow_id])

    def instantaneous_link_load(self) -> Dict[LinkKey, float]:
        """Sum of current flow rates crossing each link (bps)."""
        load: Dict[LinkKey, float] = {key: 0.0 for key in self._links}
        for flow_id, rate in self._rates.items():
            for key in self._routes.get(flow_id, []):
                load[key] += rate
        return load

    def instantaneous_link_utilisation(self) -> Dict[LinkKey, float]:
        """Current load divided by capacity for each enabled link."""
        load = self.instantaneous_link_load()
        utilisation: Dict[LinkKey, float] = {}
        for key, link in self._links.items():
            capacity = link.effective_capacity
            utilisation[key] = load[key] / capacity if capacity > 0 else 0.0
        return utilisation

    # ------------------------------------------------------------------ #
    # Rate allocation
    # ------------------------------------------------------------------ #
    def _compute_rates(self) -> Dict[int, float]:
        """Max-min fair allocation by progressive filling.

        Flows crossing a disabled or zero-capacity link receive rate zero
        (they stall until the controller restores capacity or reroutes them).
        """
        unassigned = set(self._active.keys())
        rates: Dict[int, float] = {}
        # Stalled flows: any link on the path has zero effective capacity.
        for flow_id in list(unassigned):
            path = self._routes[flow_id]
            if any(self._links[key].effective_capacity <= _EPSILON for key in path):
                rates[flow_id] = 0.0
                unassigned.discard(flow_id)

        remaining_capacity: Dict[LinkKey, float] = {
            key: link.effective_capacity for key, link in self._links.items()
        }
        flows_on_link: Dict[LinkKey, set] = {key: set() for key in self._links}
        for flow_id in unassigned:
            for key in self._routes[flow_id]:
                flows_on_link[key].add(flow_id)

        limit = self.flow_rate_limit_bps
        while unassigned:
            # Fair share on each link still carrying unassigned flows.
            bottleneck_key = None
            bottleneck_share = math.inf
            for key, flow_ids in flows_on_link.items():
                active_here = flow_ids & unassigned
                if not active_here:
                    continue
                share = remaining_capacity[key] / len(active_here)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck_key = key
            if bottleneck_key is None:
                # Remaining flows cross no constrained link; cap by NIC limit.
                for flow_id in unassigned:
                    rates[flow_id] = limit if limit is not None else math.inf
                break
            if limit is not None and limit < bottleneck_share:
                # NIC limit binds before the network bottleneck: fix every
                # remaining flow at the limit and release capacity.
                for flow_id in list(unassigned):
                    rates[flow_id] = limit
                    for key in self._routes[flow_id]:
                        remaining_capacity[key] = max(
                            0.0, remaining_capacity[key] - limit
                        )
                    unassigned.discard(flow_id)
                break
            saturated = flows_on_link[bottleneck_key] & unassigned
            for flow_id in saturated:
                rates[flow_id] = bottleneck_share
                for key in self._routes[flow_id]:
                    remaining_capacity[key] = max(
                        0.0, remaining_capacity[key] - bottleneck_share
                    )
                unassigned.discard(flow_id)
            remaining_capacity[bottleneck_key] = 0.0
        return rates

    # ------------------------------------------------------------------ #
    # Simulation loop
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> FluidResult:
        """Run the simulation to completion (or *until*).

        The loop advances between events, integrating flow progress at the
        current rates.  Events are: the next pending flow arrival, the next
        predicted flow completion, and the next controller tick.

        The call is **resumable**: ``run(until=t)`` may be followed by link or
        route mutations and another ``run(until=t2)`` call, and the simulation
        continues from where it stopped (flows are never re-admitted, and
        controller schedules carry across calls).  This is what lets the
        :class:`~repro.core.control.ControlLoop` drive the fluid model in
        lock-step with the discrete-event engine.
        """
        tail = sorted(self._pending[self._pending_cursor :], key=lambda item: item[0])
        self._pending[self._pending_cursor :] = tail
        # Controllers registered for a time now in the past fire immediately.
        self._controller_next = [max(t, self._now) for t in self._controller_next]

        def next_arrival_time() -> float:
            if self._pending_cursor < len(self._pending):
                return self._pending[self._pending_cursor][0]
            return math.inf

        def next_controller_time() -> float:
            return min(self._controller_next) if self._controller_next else math.inf

        self._rates = self._compute_rates()

        while self._events < max_events:
            completion_time, completing_id = self._predict_next_completion()
            arrival_time = next_arrival_time()
            control_time = next_controller_time()
            next_time = min(completion_time, arrival_time, control_time)

            if math.isinf(next_time):
                break
            if (
                until is None
                and not self._active
                and self._pending_cursor >= len(self._pending)
                and next_time == control_time
            ):
                # Only controller ticks remain and there is no traffic left
                # for them to act on: the run is complete.
                break
            if until is not None and next_time > until:
                self._advance_to(until)
                break

            self._advance_to(next_time)
            self._events += 1

            if next_time == completion_time and completing_id is not None:
                self._complete_flow(completing_id)
            elif next_time == arrival_time:
                while (
                    self._pending_cursor < len(self._pending)
                    and self._pending[self._pending_cursor][0] <= self._now + _EPSILON
                ):
                    _, flow, path = self._pending[self._pending_cursor]
                    self._pending_cursor += 1
                    self._admit(flow, path)
            else:
                for index, (period, callback, _) in enumerate(self._controllers):
                    if abs(self._controller_next[index] - next_time) <= _EPSILON:
                        callback(self, self._now)
                        self._controller_next[index] = next_time + period
            self._rates = self._compute_rates()

        end_time = self._now if until is None else max(self._now, until if until is not None else 0.0)
        return FluidResult(
            flows=self._all_flows,
            end_time=end_time,
            events_processed=self._events,
            link_bits_carried={key: link.bits_carried for key, link in self._links.items()},
            link_capacities={key: link.capacity_bps for key, link in self._links.items()},
            trace=self.trace,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _admit(self, flow: Flow, path: List[LinkKey]) -> None:
        flow.activate(self._now)
        self._active[flow.flow_id] = flow
        self._routes[flow.flow_id] = path
        flow.path = [str(key) for key in path]
        self.trace.record(
            self._now,
            "flow_started",
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            size_bits=flow.size_bits,
        )

    def _complete_flow(self, flow_id: int) -> None:
        flow = self._active.pop(flow_id)
        self._routes.pop(flow_id, None)
        self._rates.pop(flow_id, None)
        flow.complete(self._now)
        self.trace.record(
            self._now,
            "flow_completed",
            flow_id=flow.flow_id,
            fct=flow.fct,
            size_bits=flow.size_bits,
        )

    def _predict_next_completion(self) -> Tuple[float, Optional[int]]:
        best_time = math.inf
        best_flow: Optional[int] = None
        for flow_id, flow in self._active.items():
            rate = self._rates.get(flow_id, 0.0)
            if rate <= _EPSILON:
                continue
            eta = self._now + flow.bits_remaining / rate
            if eta < best_time:
                best_time = eta
                best_flow = flow_id
        return best_time, best_flow

    def _advance_to(self, time: float) -> None:
        elapsed = time - self._now
        if elapsed < -_EPSILON:
            raise ValueError(f"fluid simulator cannot move backwards ({elapsed})")
        if elapsed > 0:
            for flow_id, flow in self._active.items():
                rate = self._rates.get(flow_id, 0.0)
                transferred = flow.transfer(rate * elapsed)
                if transferred > 0:
                    for key in self._routes[flow_id]:
                        self._links[key].bits_carried += transferred
        self._now = time


def simulate_static_flows(
    link_capacities: Dict[LinkKey, float],
    flows_and_paths: Iterable[Tuple[Flow, Sequence[LinkKey]]],
    flow_rate_limit_bps: Optional[float] = None,
) -> FluidResult:
    """Convenience wrapper: build a simulator, add everything, run to completion."""
    simulator = FluidFlowSimulator(flow_rate_limit_bps=flow_rate_limit_bps)
    for key, capacity in link_capacities.items():
        simulator.add_link(key, capacity)
    for flow, path in flows_and_paths:
        simulator.add_flow(flow, path)
    return simulator.run()
