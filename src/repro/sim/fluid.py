"""Flow-level (fluid) simulation with max-min fair bandwidth sharing.

Packet-level simulation of a rack with hundreds of nodes and thousands of
flows is possible but needlessly slow for the experiments that only care
about flow completion times and link utilisation (the MapReduce shuffle and
grid-to-torus experiments).  The fluid model treats each flow as a fluid
stream whose instantaneous rate is the max-min fair allocation over the
links on its path; rates only change at *events* (flow arrival, flow
completion, capacity change, reroute, control tick), so the simulation can
jump from event to event analytically.

Allocators
----------
The simulator ships two interchangeable allocation engines selected by the
``allocator`` constructor argument:

``"incremental"`` (the default)
    Tracks a *dirty set* of mutated links and flows.  At each event only
    the flows reachable from the dirty set through shared links (their
    *bottleneck component closure*) are re-solved; every other flow keeps
    its rate, its predicted completion time, and its position in the
    completion heap.  The closure is re-solved with a share-heap
    progressive-filling pass that is bit-identical to the reference
    algorithm restricted to the same sub-problem, so the two allocators
    produce byte-for-byte equal results -- the parity tests pin this for
    every registered scenario and controller.

``"reference"``
    The original full recompute: a progressive-filling pass over *all*
    links and *all* active flows at every event, plus a linear scan for
    the next completion.  O(links x flows) per event; kept as the oracle
    the incremental allocator is pinned against, and as the baseline the
    ``benchmarks/bench_fluid_scale.py`` speedup guard measures.

Both allocators share one event-loop chassis: flow progress is *anchored*
(each flow stores the remaining volume at the instant its rate last
changed, so advancing time is O(1) per flow-rate change rather than
O(active flows) per event), link byte counters and capacity integrals are
integrated lazily (only when a link's load or capacity actually changes),
and same-timestamp arrivals are admitted in one batch followed by a single
allocation pass.

This is the standard flow-level abstraction used by reconfigurable-network
papers when comparing topologies, and it composes naturally with the Closed
Ring Control: the controller registers a periodic callback, observes link
utilisation, and mutates capacities/routes to model PLP commands.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.flow import Flow, FlowSet
from repro.sim.trace import NullTrace, TraceRecorder

LinkKey = Hashable

#: Numerical tolerance for "no bits remaining" and rate comparisons.
_EPSILON = 1e-9

#: Valid ``allocator`` constructor arguments.
ALLOCATORS = ("incremental", "reference")


@dataclass
class FluidLink:
    """A unidirectional capacity-constrained resource in the fluid model."""

    key: LinkKey
    capacity_bps: float
    #: Bits carried so far (integrated over time), for utilisation reports.
    bits_carried: float = 0.0
    #: Whether the link currently accepts traffic.
    enabled: bool = True
    #: Integral of the *effective* capacity over time (bit-seconds/second,
    #: i.e. bits); the honest utilisation denominator when capacity changed
    #: mid-run.
    capacity_seconds: float = 0.0
    #: Sum of the current rates of the flows crossing the link.
    load_bps: float = 0.0
    #: Simulation time up to which ``bits_carried``/``capacity_seconds``
    #: have been integrated (integration is lazy: it only runs when the
    #: link's load or capacity is about to change).
    integrated_until: float = 0.0
    #: Registration index; progressive filling breaks share ties in favour
    #: of the earliest-registered link, in both allocators.
    order: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bps < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity_bps!r}")

    @property
    def effective_capacity(self) -> float:
        """Capacity available for allocation (zero when disabled)."""
        return self.capacity_bps if self.enabled else 0.0


@dataclass
class FluidResult:
    """Outcome of a fluid simulation run."""

    flows: FlowSet
    end_time: float
    events_processed: int
    link_bits_carried: Dict[LinkKey, float]
    link_capacities: Dict[LinkKey, float]
    trace: TraceRecorder
    #: Per-link integral of effective capacity over [0, end_time] (bits).
    link_capacity_seconds: Dict[LinkKey, float] = field(default_factory=dict)
    #: True when any ``run()`` call on the producing simulator exhausted its
    #: ``max_events`` budget with traffic still in flight -- the metrics
    #: then describe a *prefix* of the workload, not the workload.
    truncated: bool = False
    #: Which allocation engine produced this result.
    allocator: str = "incremental"

    def link_utilisation(self, duration: Optional[float] = None) -> Dict[LinkKey, float]:
        """Average utilisation of each link.

        With the default ``duration=None`` the denominator is the per-link
        *time-weighted capacity integral*, so runs whose controller changed
        capacities mid-flight (``set_capacity``/``set_enabled``) report
        honest averages -- dividing by the final capacity, as the pre-1.x
        implementation did, over- or under-stated utilisation after every
        reconfiguration.  Passing an explicit *duration* keeps the legacy
        fixed-horizon semantics (bits over final capacity times duration)
        for callers that want a like-for-like window comparison.
        """
        if duration is not None:
            if duration <= 0:
                return {key: 0.0 for key in self.link_bits_carried}
            utilisation = {}
            for key, bits in self.link_bits_carried.items():
                capacity = self.link_capacities.get(key, 0.0)
                utilisation[key] = bits / (capacity * duration) if capacity > 0 else 0.0
            return utilisation
        utilisation = {}
        for key, bits in self.link_bits_carried.items():
            integral = self.link_capacity_seconds.get(key)
            if integral is None:
                # Result built without integrals (hand-constructed): fall
                # back to the fixed-capacity denominator.
                capacity = self.link_capacities.get(key, 0.0)
                integral = capacity * self.end_time
            utilisation[key] = bits / integral if integral > 0 else 0.0
        return utilisation


class FluidFlowSimulator:
    """Event-driven fluid simulator.

    Parameters
    ----------
    trace:
        Optional :class:`TraceRecorder`; pass :class:`NullTrace` (the
        default) for large sweeps.
    flow_rate_limit_bps:
        Optional per-flow cap modelling the sender NIC line rate.
    allocator:
        ``"incremental"`` (dirty-set max-min with a completion heap, the
        default) or ``"reference"`` (full recompute every event; the
        oracle the incremental engine is pinned against).  Both produce
        bit-identical results; see the module docstring.
    max_events:
        Default lifetime event budget, counted cumulatively across
        (resumed) :meth:`run` calls -- the historical semantics.  A run
        call that exhausts it with traffic still in flight sets
        :attr:`FluidResult.truncated` and reports the honest ``end_time``
        actually reached.
    """

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        flow_rate_limit_bps: Optional[float] = None,
        allocator: str = "incremental",
        max_events: int = 10_000_000,
    ) -> None:
        if allocator not in ALLOCATORS:
            raise ValueError(
                f"allocator must be one of {ALLOCATORS}, got {allocator!r}"
            )
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events!r}")
        self.trace = trace if trace is not None else NullTrace()
        self.flow_rate_limit_bps = flow_rate_limit_bps
        self.allocator = allocator
        self.default_max_events = max_events
        self._links: Dict[LinkKey, FluidLink] = {}
        self._link_counter = 0
        self._pending: List[Tuple[float, Flow, List[LinkKey]]] = []
        #: Index of the first not-yet-admitted entry of ``_pending``; kept as
        #: instance state so :meth:`run` is resumable (run-to-a-time, mutate,
        #: run again) without re-admitting flows.
        self._pending_cursor = 0
        self._active: Dict[int, Flow] = {}
        self._routes: Dict[int, List[LinkKey]] = {}
        self._rates: Dict[int, float] = {}
        self._all_flows = FlowSet()
        self._now = 0.0
        self._events = 0
        self._truncated = False
        self._controllers: List[Tuple[float, Callable[["FluidFlowSimulator", float], None], float]] = []
        #: Next absolute fire time of each registered controller (parallel to
        #: ``_controllers``); instance state for the same resumability reason.
        self._controller_next: List[float] = []
        # --- shared allocation chassis ---------------------------------- #
        #: Active flows crossing each link (maintained on admit, complete
        #: and reroute); the graph the dirty-set closure walks.
        self._flows_on_link: Dict[LinkKey, Set[int]] = {}
        #: Links/flows mutated since the last allocation pass.
        self._dirty_links: Set[LinkKey] = set()
        self._dirty_flows: Set[int] = set()
        #: Links with no effective capacity (disabled or zero), maintained
        #: under the same predicate the reference's stall check applies --
        #: lets the closure solver skip the per-flow stall scan entirely
        #: when every link is up (the common case).
        self._zero_capacity_links: Set[LinkKey] = set()
        #: Anchored progress: remaining volume at the instant the flow's
        #: rate last changed, and that instant.  ``remaining(t) =
        #: anchor_rem - rate * (t - anchor_time)`` -- no per-event flow
        #: advancement needed.
        self._anchor_time: Dict[int, float] = {}
        self._anchor_rem: Dict[int, float] = {}
        #: Predicted absolute completion time per active flow (inf when
        #: stalled), computed once per rate change.
        self._eta: Dict[int, float] = {}
        #: Admission sequence numbers -- the deterministic completion
        #: tie-break shared by the heap and the reference linear scan.
        self._seq: Dict[int, int] = {}
        self._admit_counter = 0
        #: Lazy-invalidation completion heap of ``(eta, seq, flow_id)``;
        #: entries go stale when a flow's rate changes or it completes and
        #: are discarded at peek time.
        self._completion_heap: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def add_link(self, key: LinkKey, capacity_bps: float) -> FluidLink:
        """Register (or replace) a link with the given capacity."""
        previous = self._links.get(key)
        link = FluidLink(key=key, capacity_bps=capacity_bps)
        link.integrated_until = self._now
        if previous is not None:
            # Replacement keeps the registration order (tie-breaks must not
            # shift under a controller that re-adds a link) and the load of
            # the flows still routed over the key.
            link.order = previous.order
            link.load_bps = previous.load_bps
        else:
            link.order = self._link_counter
            self._link_counter += 1
        self._links[key] = link
        self._flows_on_link.setdefault(key, set())
        self._dirty_links.add(key)
        self._sync_zero_capacity(link)
        return link

    def _sync_zero_capacity(self, link: FluidLink) -> None:
        if link.effective_capacity <= _EPSILON:
            self._zero_capacity_links.add(link.key)
        else:
            self._zero_capacity_links.discard(link.key)

    def has_link(self, key: LinkKey) -> bool:
        """Whether a link with *key* is registered."""
        return key in self._links

    def link(self, key: LinkKey) -> FluidLink:
        """Return the registered link for *key* (KeyError if missing)."""
        return self._links[key]

    def links(self) -> Dict[LinkKey, FluidLink]:
        """All registered links keyed by their key."""
        return dict(self._links)

    def set_capacity(self, key: LinkKey, capacity_bps: float) -> None:
        """Change a link's capacity (takes effect at the next rate computation)."""
        if capacity_bps < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bps!r}")
        link = self._links[key]
        if link.capacity_bps == capacity_bps:
            return
        self._integrate_link(link)
        link.capacity_bps = capacity_bps
        self._dirty_links.add(key)
        self._sync_zero_capacity(link)

    def set_enabled(self, key: LinkKey, enabled: bool) -> None:
        """Enable or disable a link."""
        link = self._links[key]
        if link.enabled == bool(enabled):
            return
        self._integrate_link(link)
        link.enabled = bool(enabled)
        self._dirty_links.add(key)
        self._sync_zero_capacity(link)

    def add_flow(self, flow: Flow, path: Sequence[LinkKey]) -> None:
        """Register *flow* to start at ``flow.start_time`` along *path*.

        Every link key on the path must already be registered.  A flow with
        an empty path (source and destination co-located on one sled) is
        rejected at registration time because the fluid model cannot assign
        it a rate.
        """
        if not path:
            raise ValueError(f"flow {flow.flow_id} has an empty path")
        missing = [key for key in path if key not in self._links]
        if missing:
            raise KeyError(f"flow {flow.flow_id} uses unknown links: {missing}")
        self._pending.append((flow.start_time, flow, list(path)))
        self._all_flows.add(flow)

    def add_controller(
        self,
        period: float,
        callback: Callable[["FluidFlowSimulator", float], None],
        start_offset: float = 0.0,
    ) -> None:
        """Register a periodic controller callback (the CRC hook).

        The callback receives the simulator and the current time; it may call
        :meth:`set_capacity`, :meth:`set_enabled`, :meth:`add_link`,
        :meth:`reroute` and :meth:`active_flow_rates`.
        """
        if period <= 0:
            raise ValueError(f"controller period must be positive, got {period!r}")
        self._controllers.append((period, callback, start_offset))
        # First fire at the offset, or immediately if registered mid-run with
        # an offset already in the past.
        self._controller_next.append(max(start_offset, self._now))

    # ------------------------------------------------------------------ #
    # Controller-facing runtime API
    # ------------------------------------------------------------------ #
    def reroute(self, flow_id: int, new_path: Sequence[LinkKey]) -> None:
        """Move an active flow onto a new path.

        The flow's current rate moves with it immediately (link load
        accounting stays exact); the next allocation pass re-solves every
        flow sharing a link with either the old or the new path.
        """
        if flow_id not in self._active:
            raise KeyError(f"flow {flow_id} is not active")
        if not new_path:
            raise ValueError("new path must not be empty")
        missing = [key for key in new_path if key not in self._links]
        if missing:
            raise KeyError(f"reroute of flow {flow_id} uses unknown links: {missing}")
        old_path = self._routes[flow_id]
        rate = self._rates.get(flow_id, 0.0)
        for key in old_path:
            link = self._links[key]
            self._integrate_link(link)
            link.load_bps -= rate
            members = self._flows_on_link[key]
            members.discard(flow_id)
            if not members:
                link.load_bps = 0.0
            self._dirty_links.add(key)
        self._routes[flow_id] = list(new_path)
        for key in new_path:
            link = self._links[key]
            self._integrate_link(link)
            link.load_bps += rate
            self._flows_on_link[key].add(flow_id)
            self._dirty_links.add(key)
        self._dirty_flows.add(flow_id)
        self._active[flow_id].path = [str(key) for key in new_path]

    def active_flows(self) -> List[Flow]:
        """Currently active flows."""
        return list(self._active.values())

    @property
    def pending_flow_count(self) -> int:
        """Registered flows that have not yet been admitted."""
        return len(self._pending) - self._pending_cursor

    def active_flow_rates(self) -> Dict[int, float]:
        """Current max-min fair rate of each active flow."""
        return dict(self._rates)

    def route_of(self, flow_id: int) -> List[LinkKey]:
        """Path of an active flow."""
        return list(self._routes[flow_id])

    def pending_demand_bits(self) -> float:
        """Total remaining volume of the active flows, at the current time."""
        return sum(self._remaining_now(flow_id) for flow_id in self._active)

    def _remaining_now(self, flow_id: int) -> float:
        """A flow's exact remaining volume at the current clock.

        The single evaluation point of the anchor invariant
        ``remaining(t) = anchor_rem - rate * (t - anchor_time)`` (clamped
        at zero against sub-ulp overshoot right at completion); the parity
        between allocators rests on every reader deriving progress from
        this one formula.
        """
        rate = self._rates.get(flow_id, 0.0)
        rem = self._anchor_rem[flow_id] - rate * (self._now - self._anchor_time[flow_id])
        return rem if rem > 0.0 else 0.0

    def instantaneous_link_load(self) -> Dict[LinkKey, float]:
        """Sum of current flow rates crossing each link (bps)."""
        return {
            key: (link.load_bps if link.load_bps > 0.0 else 0.0)
            for key, link in self._links.items()
        }

    def instantaneous_link_utilisation(self) -> Dict[LinkKey, float]:
        """Current load divided by capacity for each enabled link."""
        utilisation: Dict[LinkKey, float] = {}
        for key, link in self._links.items():
            capacity = link.effective_capacity
            load = link.load_bps if link.load_bps > 0.0 else 0.0
            utilisation[key] = load / capacity if capacity > 0 else 0.0
        return utilisation

    # ------------------------------------------------------------------ #
    # Reference allocator (the oracle: full recompute, O(links x flows))
    # ------------------------------------------------------------------ #
    def _compute_rates_reference(self) -> Dict[int, float]:
        """Max-min fair allocation by progressive filling, from scratch.

        Flows crossing a disabled or zero-capacity link receive rate zero
        (they stall until the controller restores capacity or reroutes them).
        This is the pre-incremental algorithm, preserved verbatim as the
        parity oracle.
        """
        unassigned = set(self._active.keys())
        rates: Dict[int, float] = {}
        # Stalled flows: any link on the path has zero effective capacity.
        for flow_id in list(unassigned):
            path = self._routes[flow_id]
            if any(self._links[key].effective_capacity <= _EPSILON for key in path):
                rates[flow_id] = 0.0
                unassigned.discard(flow_id)

        remaining_capacity: Dict[LinkKey, float] = {
            key: link.effective_capacity for key, link in self._links.items()
        }
        flows_on_link: Dict[LinkKey, set] = {key: set() for key in self._links}
        for flow_id in unassigned:
            for key in self._routes[flow_id]:
                flows_on_link[key].add(flow_id)

        limit = self.flow_rate_limit_bps
        while unassigned:
            # Fair share on each link still carrying unassigned flows.
            bottleneck_key = None
            bottleneck_share = math.inf
            for key, flow_ids in flows_on_link.items():
                active_here = flow_ids & unassigned
                if not active_here:
                    continue
                share = remaining_capacity[key] / len(active_here)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck_key = key
            if bottleneck_key is None:
                # Remaining flows cross no constrained link; cap by NIC limit.
                for flow_id in unassigned:
                    rates[flow_id] = limit if limit is not None else math.inf
                break
            if limit is not None and limit < bottleneck_share:
                # NIC limit binds before the network bottleneck: fix every
                # remaining flow at the limit and release capacity.  Sorted
                # so the per-link capacity subtractions happen in a
                # hash-layout-independent order (each subtracts the same
                # `limit`, so the floats are unchanged by the ordering).
                for flow_id in sorted(unassigned):
                    rates[flow_id] = limit
                    for key in self._routes[flow_id]:
                        remaining_capacity[key] = max(
                            0.0, remaining_capacity[key] - limit
                        )
                    unassigned.discard(flow_id)
                break
            # Sorted for order stability: every member subtracts the same
            # share from its links, so the capacity floats are identical
            # under any iteration order -- but the order must not depend
            # on set hash layout.
            saturated = sorted(flows_on_link[bottleneck_key] & unassigned)
            for flow_id in saturated:
                rates[flow_id] = bottleneck_share
                for key in self._routes[flow_id]:
                    remaining_capacity[key] = max(
                        0.0, remaining_capacity[key] - bottleneck_share
                    )
                unassigned.discard(flow_id)
            remaining_capacity[bottleneck_key] = 0.0
        return rates

    # ------------------------------------------------------------------ #
    # Incremental allocator (dirty-set closure + share-heap filling)
    # ------------------------------------------------------------------ #
    def _dirty_closure(self) -> Set[int]:
        """Flows reachable from the dirty set through shared links.

        The closure is closed in both directions -- every flow on a dirty
        or closure link and every flow sharing a link with such a flow is
        included -- so the restricted filling sub-problem is
        self-contained: no capacity on a closure flow's link is consumed
        by a flow outside the closure.  Rates of flows outside the closure
        are provably unchanged (the allocation of a bottleneck component
        is a deterministic function of that component alone), which is the
        dirty-set invariant the docs state.
        """
        routes = self._routes
        flows_on_link = self._flows_on_link
        flow_stack = [fid for fid in self._dirty_flows if fid in self._active]
        seen_flows: Set[int] = set(flow_stack)
        link_stack = [key for key in self._dirty_links if key in self._links]
        seen_links: Set[LinkKey] = set(link_stack)
        while flow_stack or link_stack:
            while flow_stack:
                fid = flow_stack.pop()
                for key in routes[fid]:
                    if key not in seen_links:
                        seen_links.add(key)
                        link_stack.append(key)
            while link_stack:
                key = link_stack.pop()
                for fid in flows_on_link[key]:
                    if fid not in seen_flows:
                        seen_flows.add(fid)
                        flow_stack.append(fid)
        return seen_flows

    def _solve_closure(self, flow_ids: Set[int]) -> Dict[int, float]:
        """Progressive filling over one closed sub-problem.

        Bit-identical to :meth:`_compute_rates_reference` restricted to
        *flow_ids* and the links they cross: the bottleneck each round is the minimum
        ``remaining / count`` share with ties broken by link registration
        order (the reference's dict-iteration order), and every arithmetic
        operation -- share division, ``max(0, remaining - share)``
        subtraction, the NIC-limit short-circuit -- mirrors the reference's
        operand-for-operand.  Implemented with a lazy-invalidation heap of
        link shares so a full pass costs O(sum of path lengths x log links)
        instead of O(rounds x links x set-intersections).
        """
        routes = self._routes
        links = self._links
        rates: Dict[int, float] = {}
        zero_caps = self._zero_capacity_links
        if zero_caps:
            unassigned: Set[int] = set()
            for fid in flow_ids:
                if zero_caps.isdisjoint(routes[fid]):
                    unassigned.add(fid)
                else:
                    rates[fid] = 0.0
        else:
            unassigned = set(flow_ids)

        members: Dict[LinkKey, Set[int]] = {}
        for fid in unassigned:
            for key in routes[fid]:
                live = members.get(key)
                if live is None:
                    members[key] = {fid}
                else:
                    live.add(fid)
        remaining: Dict[LinkKey, float] = {}
        version: Dict[LinkKey, int] = {}
        order: Dict[LinkKey, int] = {}
        share_heap: List[Tuple[float, int, int, LinkKey]] = []
        for key, live in members.items():
            link = links[key]
            remaining[key] = link.effective_capacity
            version[key] = 0
            order[key] = link.order
            share_heap.append((remaining[key] / len(live), link.order, 0, key))
        heapq.heapify(share_heap)

        limit = self.flow_rate_limit_bps
        heappush, heappop = heapq.heappush, heapq.heappop
        while unassigned:
            bottleneck_key = None
            bottleneck_share = math.inf
            while share_heap:
                share, _order, ver, key = heappop(share_heap)
                if version[key] != ver or not members[key]:
                    continue
                bottleneck_key, bottleneck_share = key, share
                break
            if bottleneck_key is None:
                for fid in unassigned:
                    rates[fid] = limit if limit is not None else math.inf
                break
            if limit is not None and limit < bottleneck_share:
                for fid in unassigned:
                    rates[fid] = limit
                break
            # Sorted mirrors the reference's saturated pass (same constant
            # subtrahend per link => same floats under any order) without
            # inheriting set hash layout; sorted() also snapshots, so the
            # discard below cannot perturb the iteration.
            saturated = sorted(members[bottleneck_key])
            touched: Set[LinkKey] = set()
            for fid in saturated:
                rates[fid] = bottleneck_share
                unassigned.discard(fid)
                for key in routes[fid]:
                    # Same arithmetic as the reference's max(0.0, x - share):
                    # equal operands, equal rounding, minus the call.
                    value = remaining[key] - bottleneck_share
                    remaining[key] = value if value > 0.0 else 0.0
                    members[key].discard(fid)
                    touched.add(key)
            remaining[bottleneck_key] = 0.0
            # Registration order, not set order: link keys are strings, so
            # iterating the set raw would vary with PYTHONHASHSEED.  Heap
            # entries carry totally ordered keys, so push order never
            # changes pop order -- this is hygiene, pinned by the parity
            # suite.
            for key in sorted(touched, key=order.__getitem__):
                version[key] += 1
                live = members[key]
                if live:
                    heappush(
                        share_heap,
                        (remaining[key] / len(live), order[key], version[key], key),
                    )
        return rates

    # ------------------------------------------------------------------ #
    # Shared allocation chassis
    # ------------------------------------------------------------------ #
    def _reallocate(self) -> None:
        """Bring ``_rates`` up to date after this event's mutations.

        Reference mode recomputes everything; incremental mode solves only
        the dirty closure.  Either way, updates are applied through
        :meth:`_set_rate` in admission-sequence order for flows whose rate
        *value* actually changed -- so anchors, completion predictions and
        link-load floats evolve identically under both allocators.
        """
        if self.allocator == "reference":
            solved = self._compute_rates_reference()
        else:
            if not self._dirty_links and not self._dirty_flows:
                return
            solved = self._solve_closure(self._dirty_closure())
        self._dirty_links.clear()
        self._dirty_flows.clear()
        changed = [
            (self._seq[fid], fid, rate)
            for fid, rate in solved.items()
            if rate != self._rates.get(fid, 0.0)
        ]
        changed.sort()
        for _seq, fid, rate in changed:
            self._set_rate(fid, rate)

    def _set_rate(self, flow_id: int, new_rate: float) -> None:
        """Re-anchor one flow at a new rate and refresh its prediction."""
        now = self._now
        old_rate = self._rates.get(flow_id, 0.0)
        rem = self._remaining_now(flow_id)
        self._anchor_rem[flow_id] = rem
        self._anchor_time[flow_id] = now
        self._active[flow_id].sync_remaining(rem)
        delta = new_rate - old_rate
        for key in self._routes[flow_id]:
            link = self._links[key]
            self._integrate_link(link)
            link.load_bps += delta
        self._rates[flow_id] = new_rate
        if new_rate > _EPSILON:
            eta = now + rem / new_rate
            self._eta[flow_id] = eta
            if self.allocator != "reference":
                # The reference scan reads _eta directly; pushing here would
                # grow a heap nothing ever drains.
                heapq.heappush(self._completion_heap, (eta, self._seq[flow_id], flow_id))
        else:
            self._eta[flow_id] = math.inf

    def _integrate_link(self, link: FluidLink) -> None:
        """Accumulate a link's byte and capacity integrals up to now."""
        elapsed = self._now - link.integrated_until
        if elapsed > 0.0:
            if link.load_bps > 0.0:
                link.bits_carried += link.load_bps * elapsed
            capacity = link.effective_capacity
            if capacity > 0.0:
                link.capacity_seconds += capacity * elapsed
        link.integrated_until = self._now

    def _integrate_all_links(self) -> None:
        for link in self._links.values():
            self._integrate_link(link)

    def _materialize_active(self) -> None:
        """Refresh ``flow.bits_remaining`` of every active flow to now.

        Called before controller callbacks fire and when :meth:`run`
        returns, so external observers always see exact progress even
        though the simulator itself advances flows lazily.
        """
        for flow_id, flow in self._active.items():
            flow.sync_remaining(self._remaining_now(flow_id))

    def _peek_completion(self) -> Tuple[float, Optional[int]]:
        """Earliest predicted completion: ``(eta, flow_id)`` or ``(inf, None)``.

        Reference mode keeps the historical linear scan (first-admitted
        flow wins ties via the strict comparison over insertion order);
        incremental mode reads the lazy heap, discarding entries whose flow
        completed or was re-predicted since they were pushed.  Both see the
        same ``(eta, admission-sequence)`` ordering.
        """
        if self.allocator == "reference":
            best_time = math.inf
            best_flow: Optional[int] = None
            for flow_id in self._active:
                eta = self._eta[flow_id]
                if eta < best_time:
                    best_time = eta
                    best_flow = flow_id
            return best_time, best_flow
        heap = self._completion_heap
        while heap:
            eta, _seq, flow_id = heap[0]
            if flow_id in self._active and self._eta.get(flow_id) == eta:
                return eta, flow_id
            heapq.heappop(heap)
        return math.inf, None

    # ------------------------------------------------------------------ #
    # Simulation loop
    # ------------------------------------------------------------------ #
    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> FluidResult:
        """Run the simulation to completion (or *until*).

        The loop advances between events, integrating flow progress at the
        current rates.  Events are: the next pending flow arrival batch,
        the next predicted flow completion, and the next controller tick.
        Same-timestamp arrivals are admitted together and trigger a single
        allocation pass.

        The call is **resumable**: ``run(until=t)`` may be followed by link or
        route mutations and another ``run(until=t2)`` call, and the simulation
        continues from where it stopped (flows are never re-admitted, and
        controller schedules carry across calls).  This is what lets the
        :class:`~repro.core.control.ControlLoop` drive the fluid model in
        lock-step with the discrete-event engine.

        A run call that exhausts *max_events* (a cumulative budget: the
        event counter carries across resumed calls) with traffic still in
        flight is **truncated**: the returned result says so explicitly
        and reports the time actually reached rather than pretending
        *until* was hit.
        """
        if max_events is None:
            max_events = self.default_max_events
        tail = sorted(self._pending[self._pending_cursor :], key=lambda item: item[0])
        self._pending[self._pending_cursor :] = tail
        # Controllers registered for a time now in the past fire immediately.
        self._controller_next = [max(t, self._now) for t in self._controller_next]

        def next_arrival_time() -> float:
            if self._pending_cursor < len(self._pending):
                return self._pending[self._pending_cursor][0]
            return math.inf

        def next_controller_time() -> float:
            return min(self._controller_next) if self._controller_next else math.inf

        self._reallocate()

        while True:
            completion_time, completing_id = self._peek_completion()
            arrival_time = next_arrival_time()
            control_time = next_controller_time()
            next_time = min(completion_time, arrival_time, control_time)

            if math.isinf(next_time):
                break
            if (
                until is None
                and not self._active
                and self._pending_cursor >= len(self._pending)
                and next_time == control_time
            ):
                # Only controller ticks remain and there is no traffic left
                # for them to act on: the run is complete.
                break
            if until is not None and next_time > until:
                self._advance_to(until)
                break
            if self._events >= max_events:
                # The budget check runs *after* the clean-stop checks: a
                # run whose next event lies beyond `until` anyway stops
                # cleanly; only a run with genuinely unsimulated events in
                # its window is a truncated prefix.
                self._truncated = True
                break

            self._advance_to(next_time)
            self._events += 1

            if next_time == completion_time and completing_id is not None:
                self._complete_flow(completing_id)
            elif next_time == arrival_time:
                while (
                    self._pending_cursor < len(self._pending)
                    and self._pending[self._pending_cursor][0] <= self._now + _EPSILON
                ):
                    _, flow, path = self._pending[self._pending_cursor]
                    self._pending_cursor += 1
                    self._admit(flow, path)
            else:
                self._materialize_active()
                for index, (period, callback, _) in enumerate(self._controllers):
                    if abs(self._controller_next[index] - next_time) <= _EPSILON:
                        callback(self, self._now)
                        self._controller_next[index] = next_time + period
            self._reallocate()

        self._materialize_active()
        self._integrate_all_links()
        if self._truncated:
            end_time = self._now
        else:
            end_time = self._now if until is None else max(self._now, until)
        # A drained (or fully stalled) simulation leaves the internal clock
        # at its last event even when *until* lies beyond it; every flow
        # then carries rate zero, so the [now, end_time] gap adds idle
        # capacity to the utilisation denominator and nothing to the
        # numerator.  Extend the reported integral without touching link
        # state -- the clock itself stays put (resumable-run semantics).
        idle_gap = end_time - self._now
        return FluidResult(
            flows=self._all_flows,
            end_time=end_time,
            events_processed=self._events,
            link_bits_carried={key: link.bits_carried for key, link in self._links.items()},
            link_capacities={key: link.capacity_bps for key, link in self._links.items()},
            trace=self.trace,
            link_capacity_seconds={
                key: link.capacity_seconds
                + (link.effective_capacity * idle_gap if idle_gap > 0 else 0.0)
                for key, link in self._links.items()
            },
            truncated=self._truncated,
            allocator=self.allocator,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _admit(self, flow: Flow, path: List[LinkKey]) -> None:
        flow.activate(self._now)
        flow_id = flow.flow_id
        self._active[flow_id] = flow
        self._routes[flow_id] = path
        flow.path = [str(key) for key in path]
        self._seq[flow_id] = self._admit_counter
        self._admit_counter += 1
        self._rates[flow_id] = 0.0
        self._anchor_time[flow_id] = self._now
        self._anchor_rem[flow_id] = flow.bits_remaining
        self._eta[flow_id] = math.inf
        for key in path:
            self._flows_on_link[key].add(flow_id)
        self._dirty_flows.add(flow_id)
        self.trace.record(
            self._now,
            "flow_started",
            flow_id=flow_id,
            src=flow.src,
            dst=flow.dst,
            size_bits=flow.size_bits,
        )

    def _complete_flow(self, flow_id: int) -> None:
        flow = self._active.pop(flow_id)
        rate = self._rates.pop(flow_id, 0.0)
        route = self._routes.pop(flow_id, [])
        for key in route:
            link = self._links[key]
            self._integrate_link(link)
            link.load_bps -= rate
            members = self._flows_on_link[key]
            members.discard(flow_id)
            if not members:
                link.load_bps = 0.0
            self._dirty_links.add(key)
        self._anchor_time.pop(flow_id, None)
        self._anchor_rem.pop(flow_id, None)
        self._eta.pop(flow_id, None)
        self._seq.pop(flow_id, None)
        flow.complete(self._now)
        self.trace.record(
            self._now,
            "flow_completed",
            flow_id=flow.flow_id,
            fct=flow.fct,
            size_bits=flow.size_bits,
        )

    def _advance_to(self, time: float) -> None:
        elapsed = time - self._now
        if elapsed < -_EPSILON:
            raise ValueError(f"fluid simulator cannot move backwards ({elapsed})")
        # Flow progress is anchored and link integrals are lazy, so moving
        # the clock is O(1); see _set_rate/_integrate_link.
        self._now = time


def simulate_static_flows(
    link_capacities: Dict[LinkKey, float],
    flows_and_paths: Iterable[Tuple[Flow, Sequence[LinkKey]]],
    flow_rate_limit_bps: Optional[float] = None,
    allocator: str = "incremental",
) -> FluidResult:
    """Convenience wrapper: build a simulator, add everything, run to completion."""
    simulator = FluidFlowSimulator(
        flow_rate_limit_bps=flow_rate_limit_bps, allocator=allocator
    )
    for key, capacity in link_capacities.items():
        simulator.add_link(key, capacity)
    for flow, path in flows_and_paths:
        simulator.add_flow(flow, path)
    return simulator.run()
