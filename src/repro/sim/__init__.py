"""Discrete-event simulation engine for rack-scale fabric experiments.

This package is the reproduction's substitute for the OMNeT++ framework the
paper uses in its evaluation section.  It provides:

* :mod:`repro.sim.engine` -- the event calendar and simulation clock,
* :mod:`repro.sim.process` -- process abstractions (callback and generator
  style) layered on top of the engine,
* :mod:`repro.sim.packet` / :mod:`repro.sim.flow` -- the units of traffic,
* :mod:`repro.sim.queues` -- bounded FIFO / priority queues with drop
  accounting, used by switch and NIC models,
* :mod:`repro.sim.fluid` -- a flow-level (fluid) simulator with max-min fair
  bandwidth sharing, used for the larger rack-scale experiments where
  packet-level simulation would be needlessly slow,
* :mod:`repro.sim.transport` -- the packetising flow transport (MTU
  segmentation, windowed injection, drop-triggered retransmission) behind
  the packet simulation backend,
* :mod:`repro.sim.random` -- reproducible, named random-number streams,
* :mod:`repro.sim.trace` -- structured event tracing.

All times are expressed in **seconds** (floats), all data quantities in
**bits**, and all rates in **bits per second**.  The constants in
:mod:`repro.sim.units` convert to and from the more convenient engineering
units used throughout the code base and the paper (nanoseconds, gigabits).
"""

from repro.sim.engine import Event, EventHandle, Simulator, SimulationError
from repro.sim.events import (
    ControlTick,
    FlowCompleted,
    FlowStarted,
    PacketDropped,
    PacketReceived,
    PacketSent,
    ReconfigurationCompleted,
    ReconfigurationStarted,
)
from repro.sim.flow import Flow, FlowSet, FlowState
from repro.sim.fluid import FluidFlowSimulator, FluidLink, FluidResult
from repro.sim.packet import HopRecord, Packet
from repro.sim.process import GeneratorProcess, PeriodicProcess, Process
from repro.sim.queues import DropTailQueue, PriorityDropTailQueue, QueueStats
from repro.sim.random import RandomStreams
from repro.sim.trace import NullTrace, TraceRecord, TraceRecorder
from repro.sim.transport import FlowTransportState, PacketTransport, TransportConfig
from repro.sim.units import (
    GBPS,
    GIGA,
    KILO,
    MEGA,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    SECONDS,
    bits_from_bytes,
    bytes_from_bits,
    gbps,
    microseconds,
    milliseconds,
    nanoseconds,
)

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimulationError",
    "ControlTick",
    "FlowCompleted",
    "FlowStarted",
    "PacketDropped",
    "PacketReceived",
    "PacketSent",
    "ReconfigurationCompleted",
    "ReconfigurationStarted",
    "Flow",
    "FlowSet",
    "FlowState",
    "FluidFlowSimulator",
    "FluidLink",
    "FluidResult",
    "HopRecord",
    "Packet",
    "GeneratorProcess",
    "PeriodicProcess",
    "Process",
    "DropTailQueue",
    "PriorityDropTailQueue",
    "QueueStats",
    "RandomStreams",
    "NullTrace",
    "TraceRecord",
    "TraceRecorder",
    "FlowTransportState",
    "PacketTransport",
    "TransportConfig",
    "GBPS",
    "GIGA",
    "KILO",
    "MEGA",
    "MICROSECONDS",
    "MILLISECONDS",
    "NANOSECONDS",
    "SECONDS",
    "bits_from_bytes",
    "bytes_from_bits",
    "gbps",
    "microseconds",
    "milliseconds",
    "nanoseconds",
]
