"""Process abstractions layered on the event engine.

Two styles are provided:

* :class:`Process` -- a plain callback-driven component that owns a
  reference to the simulator and schedules its own events.  Most fabric
  models (switches, NICs, the CRC) use this style.
* :class:`GeneratorProcess` -- an OMNeT++/SimPy-like coroutine style where a
  generator yields delays; convenient for scripted scenarios in tests and
  examples.
* :class:`PeriodicProcess` -- a fixed-interval callback, used for the CRC
  control loop and telemetry sampling.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import EventHandle, Simulator


class Process:
    """Base class for simulation components.

    Subclasses override :meth:`start` to schedule their first events.  The
    base class provides a tiny convenience API (``self.schedule``) and keeps
    a name so traces are readable.
    """

    def __init__(self, simulator: Simulator, name: str) -> None:
        self.simulator = simulator
        self.name = name

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.simulator.now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule *fn* relative to now."""
        return self.simulator.schedule(delay, fn, *args, **kwargs)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule *fn* at an absolute time."""
        return self.simulator.schedule_at(time, fn, *args, **kwargs)

    def start(self) -> None:
        """Hook for subclasses to schedule their initial events."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class GeneratorProcess(Process):
    """Run a generator that yields delays (in seconds) between steps.

    Example
    -------
    ::

        def behaviour(proc):
            yield 1e-6            # wait 1 us
            do_something(proc.now)
            yield 2e-6            # wait 2 us more

        GeneratorProcess(sim, "script", behaviour).start()

    The generator receives the process instance so it can read the clock and
    schedule further events.  Yielding a negative delay raises
    :class:`ValueError`; returning (StopIteration) ends the process.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        behaviour: Callable[["GeneratorProcess"], Generator[float, None, None]],
    ) -> None:
        super().__init__(simulator, name)
        self._behaviour_factory = behaviour
        self._generator: Optional[Generator[float, None, None]] = None
        self.finished = False
        self.steps = 0

    def start(self) -> None:
        """Instantiate the generator and schedule its first step immediately."""
        self._generator = self._behaviour_factory(self)
        self.simulator.schedule(0.0, self._step)

    def _step(self) -> None:
        if self._generator is None or self.finished:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        self.steps += 1
        if delay is None:
            delay = 0.0
        if delay < 0:
            raise ValueError(f"generator process {self.name!r} yielded negative delay {delay!r}")
        self.simulator.schedule(delay, self._step)


class PeriodicProcess(Process):
    """Invoke a callback every ``period`` seconds until stopped.

    The CRC control loop and the telemetry sampler are both periodic
    processes; keeping the scheduling logic here means their tests only need
    to exercise the callback bodies.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        period: float,
        callback: Callable[[float], Any],
        start_offset: float = 0.0,
        max_iterations: Optional[int] = None,
    ) -> None:
        super().__init__(simulator, name)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if start_offset < 0:
            raise ValueError(f"start_offset must be >= 0, got {start_offset!r}")
        self.period = period
        self.callback = callback
        self.start_offset = start_offset
        self.max_iterations = max_iterations
        self.iterations = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None

    def start(self) -> None:
        """Schedule the first tick."""
        self._stopped = False
        self._handle = self.simulator.schedule(self.start_offset, self._tick)

    def stop(self) -> None:
        """Cancel future ticks."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _tick(self) -> None:
        if self._stopped:
            return
        if self.max_iterations is not None and self.iterations >= self.max_iterations:
            return
        self.iterations += 1
        self.callback(self.now)
        if self.max_iterations is not None and self.iterations >= self.max_iterations:
            return
        if not self._stopped:
            self._handle = self.simulator.schedule(self.period, self._tick)
