"""Flow representation and flow-set statistics.

A *flow* is the unit of work the Closed Ring Control reasons about: it has a
source, destination and size, and the CRC decides whether it is large enough
to justify a physical-layer reconfiguration (the break-even question posed
in section 3.2 of the paper).
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

_flow_ids = itertools.count()


def reset_flow_ids() -> None:
    """Reset the global flow-id counter (used by tests for determinism)."""
    global _flow_ids
    _flow_ids = itertools.count()


class FlowState(enum.Enum):
    """Lifecycle of a flow inside the simulator."""

    PENDING = "pending"
    ACTIVE = "active"
    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass
class Flow:
    """A transfer of ``size_bits`` from ``src`` to ``dst`` starting at ``start_time``."""

    src: str
    dst: str
    size_bits: float
    start_time: float = 0.0
    flow_id: int = field(default_factory=lambda: next(_flow_ids))
    priority: int = 0
    deadline: Optional[float] = None
    tag: Optional[str] = None
    state: FlowState = FlowState.PENDING
    completion_time: Optional[float] = None
    bits_remaining: float = field(init=False)
    path: Optional[List[str]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"flow size must be positive, got {self.size_bits!r}")
        if self.start_time < 0:
            raise ValueError(f"start_time must be >= 0, got {self.start_time!r}")
        if self.src == self.dst:
            raise ValueError(f"flow source and destination are identical: {self.src!r}")
        self.bits_remaining = float(self.size_bits)

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def activate(self, time: float) -> None:
        """Mark the flow active (admitted into the fabric) at *time*."""
        if self.state not in (FlowState.PENDING, FlowState.ACTIVE):
            raise ValueError(f"cannot activate flow in state {self.state}")
        self.state = FlowState.ACTIVE
        self.metadata.setdefault("activated_at", time)

    def transfer(self, bits: float) -> float:
        """Account *bits* of progress; returns the bits actually consumed."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits!r}")
        consumed = min(bits, self.bits_remaining)
        self.bits_remaining -= consumed
        return consumed

    def sync_remaining(self, bits_remaining: float) -> None:
        """Set the remaining volume directly (fluid-simulator bookkeeping).

        The fluid simulator advances flows analytically from a rate-change
        anchor instead of calling :meth:`transfer` per event; this setter is
        how it publishes the exact progress, clamping the sub-ulp overshoot
        a ``rate * elapsed`` product can produce right at completion time.
        """
        if bits_remaining < 0.0:
            bits_remaining = 0.0
        self.bits_remaining = bits_remaining

    def complete(self, time: float) -> None:
        """Mark the flow completed at *time*."""
        if time < self.start_time:
            raise ValueError("completion cannot precede the flow start")
        self.state = FlowState.COMPLETED
        self.completion_time = time
        self.bits_remaining = 0.0

    def reject(self, reason: str) -> None:
        """Mark the flow rejected (never admitted)."""
        self.state = FlowState.REJECTED
        self.metadata["reject_reason"] = reason

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> bool:
        """Whether the flow has delivered all of its bits."""
        return self.state is FlowState.COMPLETED

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time (seconds), or ``None`` if not yet complete."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the flow met its deadline (``None`` when no deadline set)."""
        if self.deadline is None or self.fct is None:
            return None
        return self.fct <= self.deadline

    def ideal_fct(self, rate_bps: float) -> float:
        """Completion time if the flow had the full *rate_bps* to itself."""
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps!r}")
        return self.size_bits / rate_bps

    def slowdown(self, rate_bps: float) -> Optional[float]:
        """FCT normalised by the ideal FCT at *rate_bps* (>= 1 in a sane sim)."""
        if self.fct is None:
            return None
        ideal = self.ideal_fct(rate_bps)
        if ideal == 0:
            return math.inf
        return self.fct / ideal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow(id={self.flow_id}, {self.src}->{self.dst}, "
            f"{self.size_bits:.0f}b, {self.state.value})"
        )


class FlowSet:
    """A collection of flows with aggregate statistics.

    The benchmark harness reports FCT percentiles, shuffle completion time
    and straggler metrics from instances of this class.
    """

    def __init__(self, flows: Optional[Iterable[Flow]] = None) -> None:
        self._flows: List[Flow] = list(flows) if flows is not None else []

    def add(self, flow: Flow) -> None:
        """Append a flow to the set."""
        self._flows.append(flow)

    def extend(self, flows: Iterable[Flow]) -> None:
        """Append many flows to the set."""
        self._flows.extend(flows)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows)

    def __getitem__(self, index: int) -> Flow:
        return self._flows[index]

    @property
    def flows(self) -> List[Flow]:
        """The underlying list of flows (not copied)."""
        return self._flows

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def completed_flows(self) -> List[Flow]:
        """Flows that finished."""
        return [flow for flow in self._flows if flow.completed]

    def completion_times(self) -> List[float]:
        """FCTs of all completed flows."""
        return [flow.fct for flow in self.completed_flows() if flow.fct is not None]

    def completion_fraction(self) -> float:
        """Fraction of flows that completed."""
        if not self._flows:
            return 0.0
        return len(self.completed_flows()) / len(self._flows)

    def total_bits(self) -> float:
        """Sum of flow sizes in the set."""
        return sum(flow.size_bits for flow in self._flows)

    def makespan(self) -> Optional[float]:
        """Time between the earliest start and the latest completion.

        This is the metric that matters for the paper's MapReduce example:
        the reducer cannot start before the *last* mapper transfer finishes.
        Returns ``None`` unless every flow completed.
        """
        if not self._flows or not all(flow.completed for flow in self._flows):
            return None
        start = min(flow.start_time for flow in self._flows)
        end = max(flow.completion_time for flow in self._flows)  # type: ignore[arg-type]
        return end - start

    def fct_percentile(self, percentile: float) -> Optional[float]:
        """FCT percentile over completed flows (``None`` if none completed)."""
        times = self.completion_times()
        if not times:
            return None
        return float(np.percentile(times, percentile))

    def mean_fct(self) -> Optional[float]:
        """Mean FCT over completed flows."""
        times = self.completion_times()
        if not times:
            return None
        return float(np.mean(times))

    def max_fct(self) -> Optional[float]:
        """Maximum FCT (the straggler) over completed flows."""
        times = self.completion_times()
        if not times:
            return None
        return float(max(times))

    def summary(self) -> Dict[str, Optional[float]]:
        """A dictionary of the headline statistics for reports."""
        return {
            "flows": float(len(self._flows)),
            "completed": float(len(self.completed_flows())),
            "total_bits": self.total_bits(),
            "mean_fct": self.mean_fct(),
            "p50_fct": self.fct_percentile(50.0),
            "p99_fct": self.fct_percentile(99.0),
            "max_fct": self.max_fct(),
            "makespan": self.makespan(),
        }
