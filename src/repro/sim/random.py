"""Reproducible named random streams.

Every stochastic component (traffic generators, BER noise, jitter models)
draws from its own named stream derived from a single experiment seed.  Two
consequences matter for the reproduction:

* re-running an experiment with the same seed produces bit-identical
  results regardless of the order in which components were constructed,
* changing one component's draws (say, a workload) does not perturb the
  draws seen by another (say, the BER model), so ablations compare
  like-for-like noise.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, name)`` via SHA-256.

    Hashing keeps the derivation independent of Python's per-process hash
    randomisation and of the order streams are requested in.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A factory of named :class:`numpy.random.Generator` instances."""

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(_derive_seed(self.seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child ``RandomStreams`` whose root seed is derived from *name*.

        Useful when a sub-experiment (e.g. one point of a parameter sweep)
        needs its own family of independent streams.
        """
        return RandomStreams(_derive_seed(self.seed, f"spawn:{name}") % (2**63))

    # ------------------------------------------------------------------ #
    # Convenience draws used across workloads
    # ------------------------------------------------------------------ #
    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given *mean* from stream *name*."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw in ``[low, high)`` from stream *name*."""
        if high < low:
            raise ValueError(f"high ({high!r}) must be >= low ({low!r})")
        return float(self.stream(name).uniform(low, high))

    def pareto(self, name: str, shape: float, scale: float) -> float:
        """One (Lomax-style) Pareto draw: ``scale * (1 + Pareto(shape))``.

        Heavy-tailed flow sizes in the workload generators use this; shape
        values near 1.1-1.5 reproduce the mice/elephants mix reported for
        datacenter traffic.
        """
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return float(scale * (1.0 + self.stream(name).pareto(shape)))

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Uniformly choose one element of *options* from stream *name*."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        index = int(self.stream(name).integers(0, len(options)))
        return options[index]

    def shuffled(self, name: str, items: Iterable[T]) -> List[T]:
        """Return a new list with *items* in a random order from stream *name*."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result

    def permutation(self, name: str, n: int) -> List[int]:
        """A random permutation of ``range(n)`` from stream *name*."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n!r}")
        return [int(x) for x in self.stream(name).permutation(n)]

    def derangement(self, name: str, n: int, max_attempts: int = 1000) -> List[int]:
        """A permutation of ``range(n)`` with no fixed points.

        Permutation-traffic workloads need every node to send to a *different*
        node; rejection sampling converges quickly (probability of success per
        attempt tends to 1/e).
        """
        if n < 2:
            raise ValueError(f"a derangement needs n >= 2, got {n!r}")
        for _ in range(max_attempts):
            candidate = self.permutation(name, n)
            if all(candidate[i] != i for i in range(n)):
                return candidate
        # Deterministic fallback: rotate by one, always a valid derangement.
        return [(i + 1) % n for i in range(n)]
