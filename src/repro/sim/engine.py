"""The discrete-event simulation engine.

The engine is a classic event-calendar design: callables are scheduled at
absolute simulation times, stored in a binary heap, and executed in
non-decreasing time order.  Ties are broken first by an explicit integer
priority (lower runs first) and then by insertion order, which makes runs
fully deterministic for a given seed and schedule sequence.

The engine deliberately knows nothing about networks -- links, switches and
controllers are modelled by higher layers that schedule events on it.  This
mirrors the separation in OMNeT++ between the simulation kernel and the
model library, and keeps the kernel small enough to test exhaustively.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for scheduling in the past, running a finished simulator, etc."""


@dataclass(order=True)
class Event:
    """A single scheduled occurrence.

    Events compare by ``(time, priority, seq)`` so the heap pops them in a
    deterministic order.  The callback and its arguments are excluded from
    comparison.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Event(t={self.time:.9f}, prio={self.priority}, seq={self.seq}, fn={name})"


class EventHandle:
    """A cancellable reference to a scheduled :class:`Event`.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the head.  This keeps cancellation O(1) and the heap intact.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """Event calendar plus simulation clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-6, my_callback, arg1, arg2)
        sim.run(until=1.0)

    The simulator may be reused for multiple :meth:`run` calls; each call
    continues from the current clock.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time) or start_time < 0:
            raise ValueError(f"start_time must be finite and >= 0, got {start_time!r}")
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stop_requested = False
        self._events_executed = 0
        self._events_scheduled = 0
        self._events_cancelled_skipped = 0

    # ------------------------------------------------------------------ #
    # Clock and introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_executed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled (including cancelled ones)."""
        return self._events_scheduled

    @property
    def pending(self) -> int:
        """Number of events currently in the calendar (including cancelled)."""
        return len(self._heap)

    def peek(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if the calendar is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule *fn(*args, **kwargs)* to run *delay* seconds from now."""
        return self.schedule_at(self._now + delay, fn, *args, priority=priority, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule *fn* at absolute simulation *time*.

        Scheduling strictly in the past raises :class:`SimulationError`;
        scheduling exactly at ``now`` is allowed and runs after the current
        event completes.
        """
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {fn!r}")
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: now={self._now:.9f}, requested={time:.9f}"
            )
        event = Event(
            time=float(time),
            priority=int(priority),
            seq=self._seq,
            fn=fn,
            args=args,
            kwargs=kwargs,
        )
        self._seq += 1
        self._events_scheduled += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event ran, ``False`` if the calendar was empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._events_executed += 1
        event.fn(*event.args, **event.kwargs)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the calendar drains, *until* is reached, or
        *max_events* have executed in this call.

        Returns the number of events executed by this call.  When *until* is
        given, the clock is advanced to *until* at the end of the call even
        if the calendar drained earlier, so back-to-back ``run(until=...)``
        calls behave like a continuous timeline.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until!r}: clock already at {self._now!r}"
            )
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self._drop_cancelled_head()
                if not self._heap:
                    break
                next_time = self._heap[0].time
                if until is not None and next_time > until:
                    break
                event = heapq.heappop(self._heap)
                self._now = event.time
                self._events_executed += 1
                executed += 1
                event.fn(*event.args, **event.kwargs)
        finally:
            self._running = False
        if until is not None and not self._stop_requested and self._now < until:
            self._now = until
        return executed

    def stop(self) -> None:
        """Request that the current :meth:`run` call return after the
        currently executing event finishes."""
        self._stop_requested = True

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run until the calendar is empty (bounded by *max_events*)."""
        return self.run(max_events=max_events)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._events_cancelled_skipped += 1

    def snapshot(self) -> dict:
        """Return a dictionary of counters, useful for test assertions."""
        return {
            "now": self._now,
            "pending": self.pending,
            "events_executed": self._events_executed,
            "events_scheduled": self._events_scheduled,
            "events_cancelled_skipped": self._events_cancelled_skipped,
        }


def run_callbacks_at(simulator: Simulator, times_and_callbacks: Iterable[Tuple[float, Callable[[], Any]]]) -> None:
    """Convenience helper: schedule many ``(time, zero-arg callback)`` pairs."""
    for time, callback in times_and_callbacks:
        simulator.schedule_at(time, callback)
